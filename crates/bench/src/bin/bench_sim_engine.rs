//! Simulation-engine throughput tracker: sharded engine vs per-trial
//! loops.
//!
//! Measures Monte-Carlo **trials/sec** on two rateless workloads —
//! AWGN (24-bit messages, k = 8, c = 10, B = 16, 0 dB) and BSC
//! (24-bit messages, k = 8, B = 16, p = 0.10) — for three
//! implementations running the *same* trials (identical per-trial seed
//! streams):
//!
//! * **engine** — [`spinal_sim::engine::SimEngine`], at 1 worker and at
//!   the machine's worker count: long-lived per-worker encoder /
//!   decoder scratch / observation buffers, batched-hash encoding and
//!   expansion, XOR/popcount level costing on the bit channel, zero
//!   steady-state allocation;
//! * **pre-engine loop** — a faithful copy of the pre-engine
//!   `run_awgn`/`run_bsc` trial loop: per-trial
//!   encoder/decoder/observation construction and allocating sub-pass
//!   expansion, but the optimized scratch-reusing beam decoder;
//! * **seed-style loop** — the seed repository's style: per-trial
//!   construction *and* a fresh decode allocation per attempt through
//!   the straightforward baseline decoder preserved in
//!   [`spinal_core::decode::reference`].
//!
//! Also records single-thread **hash throughput**, scalar `hash` loop
//! vs `hash_batch`, for every spine-hash family (the core batching layer
//! the engine rides on).
//!
//! Writes `BENCH_sim_engine.json` into the working directory and prints
//! the same numbers as a table. Options: `--trials N` (default 60, the
//! AWGN count; BSC runs 2×), `--seed S`, `--threads T`, `--quick`.

use spinal_bench::{banner, best_time, measure_hash_families, RunArgs};
use spinal_channel::{AwgnChannel, BscChannel, Channel, Rng};
use spinal_core::decode::{
    reference_decode, AwgnCost, BeamConfig, BeamDecoder, BscCost, CostModel, DecoderScratch,
    Observations,
};
use spinal_core::hash::{AnyHash, HashFamily};
use spinal_core::map::{AnyIqMapper, BinaryMapper, Mapper};
use spinal_core::params::CodeParams;
use spinal_core::puncture::{AnySchedule, PunctureSchedule};
use spinal_core::{BitVec, DecodeResult, Encoder};
use spinal_sim::engine::SimEngine;
use spinal_sim::rateless::{
    run_awgn_with, run_bsc_with, BscRatelessConfig, RatelessConfig, Termination,
};
use spinal_sim::stats::derive_seed;
use std::hint::black_box;

const AWGN_SNR_DB: f64 = 0.0;
const BSC_P: f64 = 0.10;

fn awgn_workload() -> RatelessConfig {
    RatelessConfig {
        message_bits: 24,
        k: 8,
        tail_segments: 0,
        hash: HashFamily::Lookup3,
        mapper: AnyIqMapper::linear(10),
        schedule: AnySchedule::none(),
        beam: BeamConfig::paper_default(),
        adc_bits: None,
        max_passes: 60,
        attempt_growth: 1.0,
        termination: Termination::Genie,
    }
}

fn bsc_workload() -> BscRatelessConfig {
    BscRatelessConfig {
        message_bits: 24,
        k: 8,
        tail_segments: 0,
        hash: HashFamily::Lookup3,
        schedule: AnySchedule::none(),
        beam: BeamConfig::paper_default(),
        max_passes: 200,
        attempt_growth: 1.0,
        termination: Termination::Genie,
    }
}

/// The generic shape of both baseline loops: per-trial construction,
/// allocating sub-pass expansion, decode per pass until the genie
/// accepts. `decode` is the per-attempt decode implementation the
/// variant under test supplies.
#[allow(clippy::too_many_arguments)]
fn baseline_loop<M, Ch>(
    message_bits: u32,
    k: u32,
    hash_family: HashFamily,
    mapper: &M,
    schedule: &AnySchedule,
    max_passes: u32,
    streams: [u64; 3],
    make_channel: impl Fn(u64) -> Ch,
    trials: u32,
    seed: u64,
    mut decode: impl FnMut(&CodeParams, AnyHash, &Observations<M::Symbol>, &BitVec) -> bool,
) -> u32
where
    M: Mapper,
    Ch: Channel<M::Symbol>,
{
    let mut successes = 0;
    for trial in 0..trials {
        let code_seed = derive_seed(seed, streams[0], u64::from(trial));
        let noise_seed = derive_seed(seed, streams[1], u64::from(trial));
        let msg_seed = derive_seed(seed, streams[2], u64::from(trial));
        let params = CodeParams::builder()
            .message_bits(message_bits)
            .k(k)
            .seed(code_seed)
            .build()
            .expect("valid config");
        let hash = AnyHash::new(hash_family, code_seed);
        let mut rng = Rng::seed_from(msg_seed);
        let message: BitVec = (0..message_bits).map(|_| rng.bit()).collect();
        let mut channel = make_channel(noise_seed);
        let encoder = Encoder::new(&params, hash, mapper.clone(), &message).expect("valid");
        let mut obs = Observations::new(params.n_segments());
        let total = max_passes * schedule.subpasses_per_pass();
        'trial: for g in 0..total {
            let sub = encoder.subpass(schedule, g);
            if sub.is_empty() {
                continue;
            }
            for (slot, x) in sub {
                obs.push(slot, channel.transmit(x));
            }
            if decode(&params, hash, &obs, &message) {
                successes += 1;
                break 'trial;
            }
        }
    }
    successes
}

struct LoopTimes {
    seed_style: f64,
    pre_engine: f64,
    engine_1w: f64,
    engine_nw: f64,
}

/// Measures one channel workload's four implementations, first checking
/// that all of them decode the identical trials with identical success
/// counts.
#[allow(clippy::too_many_arguments)]
fn measure<M, C, Ch>(
    label: &str,
    message_bits: u32,
    k: u32,
    hash_family: HashFamily,
    mapper: M,
    cost: C,
    beam: BeamConfig,
    schedule: &AnySchedule,
    max_passes: u32,
    streams: [u64; 3],
    make_channel: impl Fn(u64) -> Ch + Copy,
    engine_run: impl Fn(&SimEngine) -> u32,
    trials: u32,
    seed: u64,
    threads: usize,
    rounds: u32,
) -> LoopTimes
where
    M: Mapper,
    C: CostModel<M::Symbol>,
    Ch: Channel<M::Symbol>,
{
    let seed_style = || {
        baseline_loop(
            message_bits,
            k,
            hash_family,
            &mapper,
            schedule,
            max_passes,
            streams,
            make_channel,
            trials,
            seed,
            |params, hash, obs, message| {
                reference_decode(params, &hash, &mapper, &cost, &beam, obs).message == *message
            },
        )
    };
    let pre_engine = || {
        let mut scratch = DecoderScratch::new();
        let mut result = DecodeResult::default();
        baseline_loop(
            message_bits,
            k,
            hash_family,
            &mapper,
            schedule,
            max_passes,
            streams,
            make_channel,
            trials,
            seed,
            |params, hash, obs, message| {
                let decoder = BeamDecoder::new(params, hash, mapper.clone(), cost.clone(), beam)
                    .expect("valid decoder config");
                decoder.decode_into(obs, &mut scratch, &mut result);
                result.message == *message
            },
        )
    };
    let engine_successes = engine_run(&SimEngine::serial());
    assert_eq!(
        engine_successes,
        seed_style(),
        "{label}: engine vs seed-style"
    );
    assert_eq!(
        engine_successes,
        pre_engine(),
        "{label}: engine vs pre-engine"
    );
    let nt_engine = SimEngine::with_workers(threads);
    LoopTimes {
        seed_style: best_time(rounds, || {
            black_box(seed_style());
        }),
        pre_engine: best_time(rounds, || {
            black_box(pre_engine());
        }),
        engine_1w: best_time(rounds, || {
            black_box(engine_run(&SimEngine::serial()));
        }),
        engine_nw: best_time(rounds, || {
            black_box(engine_run(&nt_engine));
        }),
    }
}

fn print_section(title: &str, trials: u32, threads: usize, t: &LoopTimes) {
    let tps = |secs: f64| f64::from(trials) / secs;
    println!(
        "\n[{title}]\n{:<34} {:>14} {:>12}",
        "implementation", "trials/sec", "vs seed-style"
    );
    for (label, secs) in [
        ("seed-style loop (1t)".to_string(), t.seed_style),
        ("pre-engine loop (1t)".to_string(), t.pre_engine),
        ("engine (1 worker)".to_string(), t.engine_1w),
        (format!("engine ({threads} workers)"), t.engine_nw),
    ] {
        println!(
            "{label:<34} {:>14.0} {:>11.2}x",
            tps(secs),
            t.seed_style / secs
        );
    }
}

fn main() {
    let args = RunArgs::parse(60);
    let awgn = awgn_workload();
    let bsc = bsc_workload();
    banner(
        "sim_engine: sharded engine vs per-trial loops",
        &args,
        &format!(
            "awgn {AWGN_SNR_DB} dB + bsc p={BSC_P}, message_bits=24 k=8 B={} schedule=none genie",
            awgn.beam.beam_width
        ),
    );
    let trials = args.trials;
    let bsc_trials = trials * 2; // BSC trials are cheaper
    let threads = args.threads.max(1);
    let rounds = if args.quick { 2 } else { 3 };

    let t_awgn = measure(
        "awgn",
        awgn.message_bits,
        awgn.k,
        awgn.hash,
        awgn.mapper.clone(),
        AwgnCost,
        awgn.beam,
        &awgn.schedule,
        awgn.max_passes,
        [0, 1, 2],
        |s| AwgnChannel::from_snr_db(AWGN_SNR_DB, s),
        |engine| {
            run_awgn_with(&awgn, AWGN_SNR_DB, trials, args.seed, engine)
                .expect("valid experiment config")
                .successes
        },
        trials,
        args.seed,
        threads,
        rounds,
    );
    let t_bsc = measure(
        "bsc",
        bsc.message_bits,
        bsc.k,
        bsc.hash,
        BinaryMapper::new(),
        BscCost,
        bsc.beam,
        &bsc.schedule,
        bsc.max_passes,
        [10, 11, 12],
        |s| BscChannel::new(BSC_P, s),
        |engine| {
            run_bsc_with(&bsc, BSC_P, bsc_trials, args.seed, engine)
                .expect("valid experiment config")
                .successes
        },
        bsc_trials,
        args.seed,
        threads,
        rounds,
    );
    print_section("awgn", trials, threads, &t_awgn);
    print_section("bsc", bsc_trials, threads, &t_bsc);

    let hashes = measure_hash_families(args.seed);
    println!(
        "\n{:<16} {:>12} {:>12} {:>9}",
        "hash family", "scalar ns", "batch ns", "speedup"
    );
    for p in &hashes {
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>8.2}x",
            p.name,
            p.scalar_ns,
            p.batch_ns,
            p.batch_speedup()
        );
    }

    let channel_json = |name: &str, trials: u32, t: &LoopTimes| {
        let tps = |secs: f64| f64::from(trials) / secs;
        format!(
            "  \"{name}\": {{\n    \"trials\": {trials},\n    \"trials_per_sec\": {{\"seed_style_loop_1t\": {:.1}, \"pre_engine_loop_1t\": {:.1}, \"engine_1_worker\": {:.1}, \"engine_machine_workers\": {:.1}}},\n    \"machine_workers\": {threads},\n    \"speedup_vs_seed_style_loop_equal_threads\": {:.2},\n    \"speedup_vs_pre_engine_loop_equal_threads\": {:.2}\n  }}",
            tps(t.seed_style),
            tps(t.pre_engine),
            tps(t.engine_1w),
            tps(t.engine_nw),
            t.seed_style / t.engine_1w,
            t.pre_engine / t.engine_1w,
            threads = threads,
        )
    };
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sim_engine\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"message_bits\": 24, \"k\": 8, \"beam\": {}, \"schedule\": \"none\", \"termination\": \"genie\", \"awgn_snr_db\": {AWGN_SNR_DB}, \"bsc_p\": {BSC_P}}},\n",
        awgn.beam.beam_width
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"threads\": {threads},\n",
        args.seed
    ));
    json.push_str(&channel_json("awgn", trials, &t_awgn));
    json.push_str(",\n");
    json.push_str(&channel_json("bsc", bsc_trials, &t_bsc));
    json.push_str(",\n");
    json.push_str(&format!(
        "  \"headline_speedup_vs_seed_style_loop\": {:.2},\n",
        t_bsc.seed_style / t_bsc.engine_1w
    ));
    json.push_str("  \"hash_batch\": {\n");
    for (i, p) in hashes.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"scalar_ns\": {:.3}, \"batch_ns\": {:.3}, \"speedup\": {:.2}}}{}\n",
            p.name,
            p.scalar_ns,
            p.batch_ns,
            p.batch_speedup(),
            if i + 1 < hashes.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_sim_engine.json", &json).expect("write BENCH_sim_engine.json");
    println!("\n# wrote BENCH_sim_engine.json");
}
