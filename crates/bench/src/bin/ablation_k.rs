//! **Segment-size ablation**: achieved rate vs `k`.
//!
//! §3.1: "the computational complexity of the decoder grows exponentially
//! with k, while the maximum rate achievable by the code grows linearly
//! with k." This sweep shows both sides: the unpunctured rate ceiling is
//! `k` bits/symbol (visible at high SNR), while at low SNR all `k`
//! perform alike — the choice of `k` trades decoder work for headroom.
//!
//! ```text
//! cargo run -p spinal-bench --release --bin ablation_k [-- --quick]
//! ```

use spinal_bench::{banner, f3, RunArgs};
use spinal_core::decode::BeamConfig;
use spinal_core::hash::HashFamily;
use spinal_core::map::AnyIqMapper;
use spinal_core::puncture::AnySchedule;
use spinal_info::awgn_capacity_db;
use spinal_sim::rateless::{run_awgn, RatelessConfig, Termination};
use spinal_sim::{derive_seed, parallel_map};

fn main() {
    let args = RunArgs::parse(60);
    let ks: &[u32] = &[2, 4, 6, 8];
    let snrs = [0.0, 10.0, 25.0];
    banner(
        "Ablation: rate vs segment size k (§3.1 rate/complexity trade)",
        &args,
        "m=24, c=10, B=16, unpunctured so the ceiling k is visible",
    );

    print!("{:>4}", "k");
    for &snr in &snrs {
        print!(" {:>8}", format!("{snr}dB"));
    }
    println!(
        "   (capacity: {})",
        snrs.iter()
            .map(|&s| format!("{:.2}", awgn_capacity_db(s)))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let jobs: Vec<(u32, f64)> = ks
        .iter()
        .flat_map(|&k| snrs.iter().map(move |&s| (k, s)))
        .collect();
    let rates = parallel_map(&jobs, args.threads, |&(k, snr)| {
        let cfg = RatelessConfig {
            message_bits: 24,
            k,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(10),
            schedule: AnySchedule::none(),
            beam: BeamConfig::paper_default(),
            adc_bits: Some(14),
            max_passes: 400,
            attempt_growth: 1.05,
            termination: Termination::Genie,
        };
        run_awgn(
            &cfg,
            snr,
            args.trials,
            derive_seed(args.seed, 7, u64::from(k) ^ snr.to_bits()),
        )
        .expect("valid experiment config")
        .rate_mean()
    });

    for (ki, &k) in ks.iter().enumerate() {
        print!("{k:>4}");
        for si in 0..snrs.len() {
            print!(" {}", f3(rates[ki * snrs.len() + si]));
        }
        println!();
    }
    println!("\nExpected shape: at 25 dB the rate ceiling tracks k; at 0 dB k barely matters.");
}
