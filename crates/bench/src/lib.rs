//! Shared plumbing for the figure/ablation regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one experiment from the paper
//! (see DESIGN.md §3 for the index). They share a tiny argument parser —
//! `--trials N`, `--seed S`, `--threads T`, `--quick` — and a few table
//! helpers. All binaries print their full configuration first, so any
//! number in a report can be traced to a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Common command-line arguments for experiment binaries.
#[derive(Clone, Debug)]
pub struct RunArgs {
    /// Monte-Carlo trials per point.
    pub trials: u32,
    /// Master experiment seed.
    pub seed: u64,
    /// Worker threads for point-parallel sweeps.
    pub threads: usize,
    /// Reduced-size run for smoke testing.
    pub quick: bool,
}

impl RunArgs {
    /// Parses `std::env::args`, with `default_trials` when `--trials` is
    /// absent. `--quick` divides the trial count by 4 (min 10) and is
    /// also exposed so binaries can thin their grids.
    pub fn parse(default_trials: u32) -> Self {
        let mut trials = default_trials;
        let mut seed = 0xC0DE_2011_u64;
        let mut threads = spinal_sim::default_threads();
        let mut quick = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trials" => {
                    trials = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--trials needs an integer");
                }
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--threads" => {
                    threads = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads needs an integer");
                }
                "--quick" => quick = true,
                "--help" | "-h" => {
                    eprintln!("options: --trials N  --seed S  --threads T  --quick");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        if quick {
            trials = (trials / 4).max(10);
        }
        Self {
            trials,
            seed,
            threads,
            quick,
        }
    }
}

/// Prints the experiment banner (configuration echo, for traceability).
pub fn banner(title: &str, args: &RunArgs, extra: &str) {
    println!("# {title}");
    println!(
        "# trials={} seed={:#x} threads={} quick={}",
        args.trials, args.seed, args.threads, args.quick
    );
    if !extra.is_empty() {
        println!("# {extra}");
    }
}

/// Formats a rate/probability with sensible width for the tables.
pub fn f3(x: f64) -> String {
    format!("{x:7.3}")
}

/// Formats a BER in scientific notation.
pub fn ber_fmt(x: f64) -> String {
    if x == 0.0 {
        format!("{:>9}", "0")
    } else {
        format!("{x:>9.1e}")
    }
}
