//! Shared plumbing for the figure/ablation regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one experiment from the paper
//! (see DESIGN.md §3 for the index). They share a tiny argument parser —
//! `--trials N`, `--seed S`, `--threads T`, `--quick` — and a few table
//! helpers. All binaries print their full configuration first, so any
//! number in a report can be traced to a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Common command-line arguments for experiment binaries.
#[derive(Clone, Debug)]
pub struct RunArgs {
    /// Monte-Carlo trials per point.
    pub trials: u32,
    /// Master experiment seed.
    pub seed: u64,
    /// Worker threads for point-parallel sweeps.
    pub threads: usize,
    /// Reduced-size run for smoke testing.
    pub quick: bool,
}

impl RunArgs {
    /// Parses `std::env::args`, with `default_trials` when `--trials` is
    /// absent. `--quick` divides the trial count by 4 (min 10) and is
    /// also exposed so binaries can thin their grids.
    pub fn parse(default_trials: u32) -> Self {
        let mut trials = default_trials;
        let mut seed = 0xC0DE_2011_u64;
        let mut threads = spinal_sim::default_threads();
        let mut quick = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trials" => {
                    trials = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--trials needs an integer");
                }
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--threads" => {
                    threads = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads needs an integer");
                }
                "--quick" => quick = true,
                "--help" | "-h" => {
                    eprintln!("options: --trials N  --seed S  --threads T  --quick");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        if quick {
            trials = (trials / 4).max(10);
        }
        Self {
            trials,
            seed,
            threads,
            quick,
        }
    }
}

/// Prints the experiment banner (configuration echo, for traceability).
pub fn banner(title: &str, args: &RunArgs, extra: &str) {
    println!("# {title}");
    println!(
        "# trials={} seed={:#x} threads={} quick={}",
        args.trials, args.seed, args.threads, args.quick
    );
    if !extra.is_empty() {
        println!("# {extra}");
    }
}

/// Formats a rate/probability with sensible width for the tables.
pub fn f3(x: f64) -> String {
    format!("{x:7.3}")
}

/// Formats a BER in scientific notation.
pub fn ber_fmt(x: f64) -> String {
    if x == 0.0 {
        format!("{:>9}", "0")
    } else {
        format!("{x:>9.1e}")
    }
}

/// Best-of-`rounds` wall time of `f`, in seconds — the noise-robust
/// point statistic all the perf trackers use.
pub fn best_time(rounds: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// One spine-hash family's measured call-shape timings (ns per hash).
pub struct HashMeasurement {
    /// Family name (`SpineHash::name`).
    pub name: &'static str,
    /// Serially dependent scalar calls (the spine-chain shape).
    pub chain_ns: f64,
    /// Independent scalar calls over a slab (pre-batching expansion).
    pub scalar_ns: f64,
    /// [`spinal_core::hash::SpineHash::hash_batch`] over the same slab.
    pub batch_ns: f64,
}

impl HashMeasurement {
    /// Scalar-loop over batch ratio.
    pub fn batch_speedup(&self) -> f64 {
        self.scalar_ns / self.batch_ns
    }
}

/// Measures chain / scalar-loop / batch throughput for every hash
/// family over one fixed 4096-element slab. `BENCH_hash.json` and
/// `BENCH_sim_engine.json` both render from this single definition, so
/// their hash numbers can never drift apart.
pub fn measure_hash_families(seed: u64) -> Vec<HashMeasurement> {
    use spinal_core::hash::{AnyHash, HashFamily, SpineHash};
    use std::hint::black_box;
    const N: usize = 4096;
    const ROUNDS: u32 = 60;
    let states: Vec<u64> = (0..N as u64)
        .map(|i| spinal_sim::derive_seed(seed, 90, i))
        .collect();
    let segments: Vec<u64> = (0..N as u64)
        .map(|i| spinal_sim::derive_seed(seed, 91, i))
        .collect();
    let mut out = vec![0u64; N];
    [
        HashFamily::Lookup3,
        HashFamily::OneAtATime,
        HashFamily::SipHash24,
        HashFamily::SplitMix,
    ]
    .into_iter()
    .map(|family| {
        let h = AnyHash::new(family, seed);
        let chain = {
            let mut state = 0x1234_5678_u64;
            best_time(ROUNDS, || {
                for _ in 0..N {
                    state = h.hash(state, state & 0xff);
                }
                black_box(state);
            }) / N as f64
                * 1e9
        };
        let scalar = best_time(ROUNDS, || {
            for ((o, &s), &g) in out.iter_mut().zip(&states).zip(&segments) {
                *o = h.hash(s, g);
            }
            black_box(&out);
        }) / N as f64
            * 1e9;
        let batch = best_time(ROUNDS, || {
            h.hash_batch(&states, &segments, &mut out);
            black_box(&out);
        }) / N as f64
            * 1e9;
        HashMeasurement {
            name: h.name(),
            chain_ns: chain,
            scalar_ns: scalar,
            batch_ns: batch,
        }
    })
    .collect()
}
