//! Shared plumbing for the figure/ablation regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one experiment from the paper
//! (see DESIGN.md §3 for the index). They share a tiny argument parser —
//! `--trials N`, `--seed S`, `--threads T`, `--quick` — and a few table
//! helpers. All binaries print their full configuration first, so any
//! number in a report can be traced to a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Common command-line arguments for experiment binaries.
#[derive(Clone, Debug)]
pub struct RunArgs {
    /// Monte-Carlo trials per point.
    pub trials: u32,
    /// Master experiment seed.
    pub seed: u64,
    /// Worker threads for point-parallel sweeps.
    pub threads: usize,
    /// Reduced-size run for smoke testing.
    pub quick: bool,
}

impl RunArgs {
    /// Parses `std::env::args`, with `default_trials` when `--trials` is
    /// absent. `--quick` divides the trial count by 4 (min 10) and is
    /// also exposed so binaries can thin their grids.
    pub fn parse(default_trials: u32) -> Self {
        let mut trials = default_trials;
        let mut seed = 0xC0DE_2011_u64;
        let mut threads = spinal_sim::default_threads();
        let mut quick = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trials" => {
                    trials = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--trials needs an integer");
                }
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--threads" => {
                    threads = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads needs an integer");
                }
                "--quick" => quick = true,
                "--help" | "-h" => {
                    eprintln!("options: --trials N  --seed S  --threads T  --quick");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        if quick {
            trials = (trials / 4).max(10);
        }
        Self {
            trials,
            seed,
            threads,
            quick,
        }
    }
}

/// Prints the experiment banner (configuration echo, for traceability).
pub fn banner(title: &str, args: &RunArgs, extra: &str) {
    println!("# {title}");
    println!(
        "# trials={} seed={:#x} threads={} quick={}",
        args.trials, args.seed, args.threads, args.quick
    );
    if !extra.is_empty() {
        println!("# {extra}");
    }
}

/// Formats a rate/probability with sensible width for the tables.
pub fn f3(x: f64) -> String {
    format!("{x:7.3}")
}

/// Formats a BER in scientific notation.
pub fn ber_fmt(x: f64) -> String {
    if x == 0.0 {
        format!("{:>9}", "0")
    } else {
        format!("{x:>9.1e}")
    }
}

/// Best-of-`rounds` wall time of `f`, in seconds — the noise-robust
/// point statistic all the perf trackers use.
pub fn best_time(rounds: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// The shared metadata header every `BENCH_*.json` artifact carries —
/// benchmark name plus a `config` block with at least `seed` and
/// `iters`. One definition so the artifacts cannot drift apart in
/// schema (they used to: `BENCH_hash.json` lacked the block entirely).
pub struct BenchSummary {
    benchmark: &'static str,
    entries: Vec<(String, String)>,
}

impl BenchSummary {
    /// Starts a summary for `benchmark`, pre-populating the `seed` and
    /// `iters` config keys every artifact must carry.
    pub fn new(benchmark: &'static str, seed: u64, iters: u32) -> Self {
        Self {
            benchmark,
            entries: vec![
                ("seed".into(), seed.to_string()),
                ("iters".into(), iters.to_string()),
            ],
        }
    }

    /// Adds a config entry whose value is already valid JSON (numbers,
    /// booleans, pre-quoted strings).
    pub fn config(mut self, key: &str, value_json: impl std::fmt::Display) -> Self {
        self.entries.push((key.into(), value_json.to_string()));
        self
    }

    /// Adds a string config entry (quoted for JSON).
    pub fn config_str(mut self, key: &str, value: &str) -> Self {
        self.entries.push((key.into(), format!("\"{value}\"")));
        self
    }

    /// Renders `{ "benchmark": ..., "config": {...},` — the caller
    /// appends its own sections and the closing brace.
    pub fn render_header(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"benchmark\": \"{}\",\n", self.benchmark));
        s.push_str("  \"config\": {\n");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "    \"{k}\": {v}{}\n",
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        s.push_str("  },\n");
        s
    }
}

/// One spine-hash family's measured call-shape timings (ns per hash).
pub struct HashMeasurement {
    /// Family name (`SpineHash::name`).
    pub name: &'static str,
    /// Serially dependent scalar calls (the spine-chain shape).
    pub chain_ns: f64,
    /// Independent scalar calls over a slab (pre-batching expansion).
    pub scalar_ns: f64,
    /// [`spinal_core::hash::SpineHash::hash_batch`] over the same slab,
    /// on the machine's detected SIMD tier.
    pub batch_ns: f64,
    /// The same batch pinned to the scalar 4-lane ILP kernel — the
    /// denominator of the SIMD-kernel win.
    pub batch_scalar_ns: f64,
}

impl HashMeasurement {
    /// Scalar-loop over batch ratio.
    pub fn batch_speedup(&self) -> f64 {
        self.scalar_ns / self.batch_ns
    }

    /// Scalar-kernel batch over SIMD-kernel batch ratio (1.0 for
    /// families without a SIMD kernel on this machine).
    pub fn kernel_speedup(&self) -> f64 {
        self.batch_scalar_ns / self.batch_ns
    }
}

/// One cell of the deep-first coverage-validation grid (the ROADMAP
/// item gating any promotion of `SubpassOrder::DeepFirst`): mean
/// achieved rate of both sub-pass orderings at one (SNR, message
/// length) operating point. Higher rate = fewer symbols to decode.
pub struct DeepFirstPoint {
    /// Channel SNR in dB.
    pub snr_db: f64,
    /// Message length in bits.
    pub message_bits: u32,
    /// Mean rate under the paper's bit-reversed ordering.
    pub bit_reversed_rate: f64,
    /// Mean rate under the checkpoint-friendly deep-first ordering.
    pub deep_first_rate: f64,
}

/// Runs the deep-first SNR × message-length coverage sweep at the
/// puncturing probe's operating point (k = 4, c = 8, B = 16, stride-8;
/// see `bench_session`'s probe). Shared by `ablation_puncturing` (the
/// ablation narrative) and `bench_session` (which records the grid in
/// `BENCH_session.json`).
pub fn deep_first_grid(args: &RunArgs, trials: u32) -> Vec<DeepFirstPoint> {
    deep_first_grid_shaped(args, trials, 4, 8, 23)
}

/// [`deep_first_grid`] at an arbitrary code shape: the same SNR ×
/// message-length sweep with segment size `k` and `c` mapper bits per
/// symbol. `stream` decorrelates the trial seeds from other shapes so
/// two grids in one report never share noise realisations.
/// `bench_session` runs this at the paper's Figure 2 shape (k = 8,
/// c = 10) — the verdict that gates promoting `SubpassOrder::DeepFirst`
/// beyond the opt-in `ServeProfile::deep_first()` serving profile.
pub fn deep_first_grid_shaped(
    args: &RunArgs,
    trials: u32,
    k: u32,
    c: u32,
    stream: u64,
) -> Vec<DeepFirstPoint> {
    use spinal_core::map::AnyIqMapper;
    use spinal_core::puncture::{AnySchedule, SubpassOrder};
    use spinal_sim::rateless::{run_awgn, RatelessConfig};
    let snrs: &[f64] = if args.quick {
        &[8.0, 20.0]
    } else {
        &[6.0, 8.0, 12.0, 20.0, 30.0]
    };
    let lens: &[u32] = if args.quick {
        &[32, 128]
    } else {
        &[32, 96, 256]
    };
    let orderings = [SubpassOrder::BitReversed, SubpassOrder::DeepFirst];
    let jobs: Vec<(f64, u32, usize)> = snrs
        .iter()
        .flat_map(|&snr| {
            lens.iter()
                .flat_map(move |&m| (0..orderings.len()).map(move |o| (snr, m, o)))
        })
        .collect();
    let rates = spinal_sim::parallel_map(&jobs, args.threads, |&(snr, m, o)| {
        let mut cfg = RatelessConfig::fig2();
        cfg.message_bits = m;
        cfg.k = k;
        cfg.mapper = AnyIqMapper::linear(c);
        cfg.schedule = AnySchedule::strided_with(8, orderings[o]).expect("valid stride");
        cfg.max_passes = 300;
        run_awgn(
            &cfg,
            snr,
            trials,
            spinal_sim::derive_seed(
                args.seed,
                stream,
                ((m as u64) << 40) ^ (o as u64) << 32 ^ snr.to_bits() >> 16,
            ),
        )
        .expect("valid experiment config")
        .rate_mean()
    });
    jobs.chunks(2)
        .zip(rates.chunks(2))
        .map(|(j, r)| DeepFirstPoint {
            snr_db: j[0].0,
            message_bits: j[0].1,
            bit_reversed_rate: r[0],
            deep_first_rate: r[1],
        })
        .collect()
}

/// Prints the deep-first grid as a table and returns the fraction of
/// cells where deep-first matches or beats bit-reversed coverage.
pub fn print_deep_first_grid(points: &[DeepFirstPoint]) -> f64 {
    println!(
        "{:>7} {:>7} {:>14} {:>12} {:>8}",
        "SNR", "bits", "bit-reversed", "deep-first", "ratio"
    );
    let mut wins = 0usize;
    for p in points {
        let ratio = p.deep_first_rate / p.bit_reversed_rate;
        if ratio >= 0.995 {
            wins += 1;
        }
        println!(
            "{:>7.1} {:>7} {:>14.3} {:>12.3} {:>8.3}",
            p.snr_db, p.message_bits, p.bit_reversed_rate, p.deep_first_rate, ratio
        );
    }
    wins as f64 / points.len().max(1) as f64
}

/// Slab size [`measure_hash_families`] measures over — exported so the
/// `BENCH_hash.json` config block records the value actually measured.
pub const HASH_BENCH_SLAB: usize = 4096;
/// Best-of rounds [`measure_hash_families`] takes per shape.
pub const HASH_BENCH_ROUNDS: u32 = 60;

/// Measures chain / scalar-loop / batch throughput for every hash
/// family over one fixed [`HASH_BENCH_SLAB`]-element slab.
/// `BENCH_hash.json` and `BENCH_sim_engine.json` both render from this
/// single definition, so their hash numbers can never drift apart.
pub fn measure_hash_families(seed: u64) -> Vec<HashMeasurement> {
    use spinal_core::hash::{AnyHash, HashFamily, SpineHash};
    use std::hint::black_box;
    const N: usize = HASH_BENCH_SLAB;
    const ROUNDS: u32 = HASH_BENCH_ROUNDS;
    let states: Vec<u64> = (0..N as u64)
        .map(|i| spinal_sim::derive_seed(seed, 90, i))
        .collect();
    let segments: Vec<u64> = (0..N as u64)
        .map(|i| spinal_sim::derive_seed(seed, 91, i))
        .collect();
    let mut out = vec![0u64; N];
    [
        HashFamily::Lookup3,
        HashFamily::OneAtATime,
        HashFamily::SipHash24,
        HashFamily::SplitMix,
    ]
    .into_iter()
    .map(|family| {
        let h = AnyHash::new(family, seed);
        let chain = {
            let mut state = 0x1234_5678_u64;
            best_time(ROUNDS, || {
                for _ in 0..N {
                    state = h.hash(state, state & 0xff);
                }
                black_box(state);
            }) / N as f64
                * 1e9
        };
        let scalar = best_time(ROUNDS, || {
            for ((o, &s), &g) in out.iter_mut().zip(&states).zip(&segments) {
                *o = h.hash(s, g);
            }
            black_box(&out);
        }) / N as f64
            * 1e9;
        let batch = best_time(ROUNDS, || {
            h.hash_batch(&states, &segments, &mut out);
            black_box(&out);
        }) / N as f64
            * 1e9;
        let h_scalar = h.with_dispatch(spinal_core::kernels::KernelDispatch::Scalar);
        let batch_scalar = best_time(ROUNDS, || {
            h_scalar.hash_batch(&states, &segments, &mut out);
            black_box(&out);
        }) / N as f64
            * 1e9;
        HashMeasurement {
            name: h.name(),
            chain_ns: chain,
            scalar_ns: scalar,
            batch_ns: batch,
            batch_scalar_ns: batch_scalar,
        }
    })
    .collect()
}
