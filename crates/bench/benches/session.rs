//! Micro-benchmark: incremental session retries vs decode-from-scratch.
//!
//! One measured iteration replays a fixed post-first-pass retry chain —
//! the steady state of a rateless receiver with per-symbol feedback:
//! each retry adds one symbol (at the spine position the stride-8
//! schedule dictates) and re-decodes. The incremental engine resumes
//! from per-level checkpoints below the new symbol's position; the
//! baseline re-runs every level with a reused scratch. The
//! `bench_session` binary runs the full cross-delay comparison and
//! writes `BENCH_session.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinal_channel::{AwgnChannel, Channel};
use spinal_core::bits::BitVec;
use spinal_core::decode::{
    AwgnCost, BeamCheckpoints, BeamConfig, BeamDecoder, DecodeResult, DecoderScratch, Observations,
};
use spinal_core::encode::Encoder;
use spinal_core::hash::Lookup3;
use spinal_core::map::LinearMapper;
use spinal_core::params::CodeParams;
use spinal_core::puncture::{PunctureSchedule, StridedPuncture};
use std::hint::black_box;

const MESSAGE_BITS: u32 = 128;
const RETRIES: usize = 32; // one pass worth of per-symbol retries

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_retry");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let params = CodeParams::new(MESSAGE_BITS, 4).unwrap();
    let message = BitVec::from_bools(
        &(0..MESSAGE_BITS as usize)
            .map(|i| i % 3 != 0)
            .collect::<Vec<_>>(),
    );
    let enc = Encoder::new(&params, Lookup3::new(11), LinearMapper::new(8), &message).unwrap();
    let dec = BeamDecoder::new(
        &params,
        Lookup3::new(11),
        LinearMapper::new(8),
        AwgnCost,
        BeamConfig::paper_default(),
    )
    .unwrap();
    let sched = StridedPuncture::stride8();

    // The recorded noisy stream: one full pass, then RETRIES singles.
    let mut channel = AwgnChannel::from_snr_db(8.0, 17);
    let mut stream = Vec::new();
    let mut slots = Vec::new();
    let mut g = 0u32;
    while stream.len() < params.n_segments() as usize + RETRIES {
        sched.subpass_slots_into(params.n_segments(), g, &mut slots);
        for &slot in &slots {
            stream.push((slot, channel.transmit(enc.symbol(slot))));
        }
        g += 1;
    }
    let first_pass = params.n_segments() as usize;

    let mut scratch = DecoderScratch::new();
    let mut result = DecodeResult::default();
    let mut obs = Observations::new(params.n_segments());
    let mut ckpt = BeamCheckpoints::new();

    group.bench_function(BenchmarkId::new("incremental", RETRIES), |b| {
        b.iter(|| {
            obs.clear();
            ckpt.reset();
            for &(slot, y) in &stream[..first_pass] {
                obs.push(slot, y);
            }
            dec.decode_incremental(&obs, 0, &mut ckpt, &mut scratch, &mut result);
            for &(slot, y) in &stream[first_pass..first_pass + RETRIES] {
                obs.push(slot, y);
                dec.decode_incremental(&obs, slot.t, &mut ckpt, &mut scratch, &mut result);
            }
            black_box(result.cost)
        })
    });

    group.bench_function(BenchmarkId::new("from_scratch", RETRIES), |b| {
        b.iter(|| {
            obs.clear();
            for &(slot, y) in &stream[..first_pass] {
                obs.push(slot, y);
            }
            dec.decode_into(&obs, &mut scratch, &mut result);
            for &(slot, y) in &stream[first_pass..first_pass + RETRIES] {
                obs.push(slot, y);
                dec.decode_into(&obs, &mut scratch, &mut result);
            }
            black_box(result.cost)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
