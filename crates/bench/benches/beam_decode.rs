//! Micro-benchmark: the allocation-free, hash-deduplicated beam-decode
//! core versus the straightforward reference implementation.
//!
//! Four passes of observations per level make every level
//! multi-observation, which is where the hash-block deduplication pays:
//! the reference hashes ~1 expansion block per `(child, observation)`
//! pair, the engine ~2 distinct blocks per child regardless of the
//! observation count. `decoder_scaling` covers B- and n-scaling; this
//! target isolates optimized-vs-baseline at fixed shape. The
//! `bench_beam_decode` binary runs the same comparison and writes
//! `BENCH_beam_decode.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinal_core::bits::BitVec;
use spinal_core::decode::{
    reference_decode, AwgnCost, BeamConfig, BeamDecoder, DecoderScratch, Observations,
};
use spinal_core::encode::Encoder;
use spinal_core::hash::Lookup3;
use spinal_core::map::LinearMapper;
use spinal_core::params::CodeParams;
use spinal_core::symbol::Slot;
use std::hint::black_box;

const MESSAGE_BITS: u32 = 96;
const PASSES: u32 = 16;

fn observations(enc: &Encoder<Lookup3, LinearMapper>) -> Observations<spinal_core::IqSymbol> {
    let mut obs = Observations::new(enc.params().n_segments());
    for pass in 0..PASSES {
        for t in 0..enc.params().n_segments() {
            let slot = Slot::new(t, pass);
            obs.push(slot, enc.symbol(slot));
        }
    }
    obs
}

fn bench_beam_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("beam_decode");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let params = CodeParams::new(MESSAGE_BITS, 8).unwrap();
    let message = BitVec::from_bools(
        &(0..MESSAGE_BITS as usize)
            .map(|i| i % 3 != 0)
            .collect::<Vec<_>>(),
    );
    let enc = Encoder::new(&params, Lookup3::new(11), LinearMapper::new(10), &message).unwrap();
    let obs = observations(&enc);
    for &b in &[4usize, 16, 64, 256] {
        let cfg = BeamConfig::with_beam(b);
        let dec = BeamDecoder::new(
            &params,
            Lookup3::new(11),
            LinearMapper::new(10),
            AwgnCost,
            cfg,
        )
        .unwrap();
        let mut scratch = DecoderScratch::new();
        group.bench_with_input(BenchmarkId::new("optimized", b), &b, |bch, _| {
            bch.iter(|| black_box(dec.decode_with_scratch(&obs, &mut scratch).cost));
        });
        group.bench_with_input(BenchmarkId::new("reference", b), &b, |bch, _| {
            bch.iter(|| {
                black_box(
                    reference_decode(
                        &params,
                        &Lookup3::new(11),
                        &LinearMapper::new(10),
                        &AwgnCost,
                        &cfg,
                        &obs,
                    )
                    .cost,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_beam_decode);
criterion_main!(benches);
