//! Micro-benchmark: encoder cost vs message length.
//!
//! §1: "The sequential nature of the hashed map makes the encoding linear
//! in the message size." Criterion's per-iteration times for n ∈ {24, 96,
//! 384, 1536} should scale by ~4x per step — verify the slope, not just
//! the constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spinal_core::bits::BitVec;
use spinal_core::encode::Encoder;
use spinal_core::hash::Lookup3;
use spinal_core::map::LinearMapper;
use spinal_core::params::CodeParams;
use std::hint::black_box;

fn bench_encoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[24u32, 96, 384, 1536] {
        let params = CodeParams::new(n, 8).unwrap();
        let message = BitVec::from_bools(&(0..n as usize).map(|i| i % 3 == 0).collect::<Vec<_>>());
        group.throughput(Throughput::Bytes(u64::from(n) / 8));

        // Spine computation + first pass (the per-message setup cost).
        group.bench_with_input(BenchmarkId::new("spine_plus_pass", n), &n, |b, _| {
            b.iter(|| {
                let enc = Encoder::new(
                    &params,
                    Lookup3::new(7),
                    LinearMapper::new(10),
                    black_box(&message),
                )
                .unwrap();
                black_box(enc.pass(0))
            });
        });

        // Steady-state symbol generation (rateless tail cost).
        let enc = Encoder::new(&params, Lookup3::new(7), LinearMapper::new(10), &message).unwrap();
        group.bench_with_input(BenchmarkId::new("extra_pass", n), &n, |b, _| {
            let mut pass = 1u32;
            b.iter(|| {
                pass = pass.wrapping_add(1).max(1);
                black_box(enc.pass(pass))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoder);
criterion_main!(benches);
