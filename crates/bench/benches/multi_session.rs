//! Micro-benchmark: a [`MultiDecoder`] cohort vs the one-at-a-time
//! serving loop.
//!
//! One measured iteration decodes a fixed fleet of 16 same-shape
//! receivers with per-symbol feedback: first pass chunked, then one
//! symbol per session per round until genie acceptance. The scheduler
//! runs every retry incrementally, fused through one shared scratch;
//! the baseline re-decodes each session from scratch on every arrival.
//! The `bench_multi_session` binary runs the full fleet-size sweep and
//! writes `BENCH_multi_session.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinal_channel::{AwgnChannel, Channel};
use spinal_core::bits::BitVec;
use spinal_core::decode::{
    AwgnCost, BeamConfig, BeamDecoder, DecodeResult, DecoderScratch, Observations,
};
use spinal_core::encode::Encoder;
use spinal_core::frame::AnyTerminator;
use spinal_core::hash::Lookup3;
use spinal_core::map::LinearMapper;
use spinal_core::params::CodeParams;
use spinal_core::puncture::{PunctureSchedule, StridedPuncture};
use spinal_core::sched::{MultiConfig, MultiDecoder, SessionEvent};
use spinal_core::session::{RxConfig, RxSession};
use spinal_core::symbol::Slot;
use spinal_core::IqSymbol;
use std::hint::black_box;

const MESSAGE_BITS: u32 = 128;
const K: u32 = 4;
const C: u32 = 8;
const SESSIONS: usize = 16;
const MAX_SYMBOLS: usize = 1200;

type Pool = MultiDecoder<Lookup3, LinearMapper, AwgnCost, StridedPuncture>;

struct Flow {
    params: CodeParams,
    seed: u64,
    message: BitVec,
    stream: Vec<(Slot, IqSymbol)>,
}

fn build_flows() -> Vec<Flow> {
    let sched = StridedPuncture::stride8();
    (0..SESSIONS as u64)
        .map(|i| {
            let seed = 0xC0DE ^ (i * 0x9e37 + 1);
            let params = CodeParams::builder()
                .message_bits(MESSAGE_BITS)
                .k(K)
                .seed(seed)
                .build()
                .unwrap();
            let mut message = BitVec::new();
            for b in 0..u64::from(MESSAGE_BITS) {
                message.push(seed.rotate_left((b % 59) as u32) & 1 == 1);
            }
            let enc =
                Encoder::new(&params, Lookup3::new(seed), LinearMapper::new(C), &message).unwrap();
            let mut channel = AwgnChannel::from_snr_db(8.0, seed + 17);
            let mut stream = Vec::new();
            let mut slots = Vec::new();
            let mut g = 0u32;
            while stream.len() < MAX_SYMBOLS {
                sched.subpass_slots_into(params.n_segments(), g, &mut slots);
                for &slot in &slots {
                    stream.push((slot, channel.transmit(enc.symbol(slot))));
                }
                g += 1;
            }
            Flow {
                params,
                seed,
                message,
                stream,
            }
        })
        .collect()
}

fn decoder(flow: &Flow) -> BeamDecoder<Lookup3, LinearMapper, AwgnCost> {
    BeamDecoder::new(
        &flow.params,
        Lookup3::new(flow.seed),
        LinearMapper::new(C),
        AwgnCost,
        BeamConfig::paper_default(),
    )
    .unwrap()
}

fn bench_multi_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_session");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    let flows = build_flows();
    let pass = (MESSAGE_BITS / K) as usize;

    group.bench_function(BenchmarkId::new("scheduler", SESSIONS), |b| {
        let mut events: Vec<SessionEvent> = Vec::new();
        b.iter(|| {
            let mut pool = Pool::new(MultiConfig::default());
            let ids: Vec<_> = flows
                .iter()
                .map(|f| {
                    pool.insert(
                        RxSession::new(
                            decoder(f),
                            StridedPuncture::stride8(),
                            AnyTerminator::genie(f.message.clone()),
                            RxConfig::default(),
                        )
                        .unwrap(),
                    )
                    .unwrap()
                })
                .collect();
            let mut chunk = Vec::new();
            for (f, &id) in flows.iter().zip(&ids) {
                chunk.clear();
                chunk.extend(f.stream[..pass].iter().map(|&(_, y)| y));
                pool.ingest(id, &chunk).unwrap();
            }
            let mut live = SESSIONS;
            let mut cursors = [pass; SESSIONS];
            pool.drive_into(&mut events);
            live -= events.iter().filter(|e| e.is_decoded()).count();
            while live > 0 {
                for (lane, (f, &id)) in flows.iter().zip(&ids).enumerate() {
                    if pool.get(id).unwrap().is_finished() {
                        continue;
                    }
                    let (_s, y) = f.stream[cursors[lane]];
                    cursors[lane] += 1;
                    pool.ingest(id, &[y]).unwrap();
                }
                pool.drive_into(&mut events);
                live -= events.iter().filter(|e| e.is_decoded()).count();
            }
            black_box(live)
        })
    });

    group.bench_function(BenchmarkId::new("one_at_a_time", SESSIONS), |b| {
        let decs: Vec<_> = flows.iter().map(decoder).collect();
        let mut scratch = DecoderScratch::new();
        let mut result = DecodeResult::default();
        b.iter(|| {
            let mut obs: Vec<Observations<IqSymbol>> = flows
                .iter()
                .map(|f| Observations::new(f.params.n_segments()))
                .collect();
            let mut done = [false; SESSIONS];
            let mut cursors = [pass; SESSIONS];
            let mut live = SESSIONS;
            for (lane, f) in flows.iter().enumerate() {
                for &(s, y) in &f.stream[..pass] {
                    obs[lane].push(s, y);
                }
                decs[lane].decode_into(&obs[lane], &mut scratch, &mut result);
                if result.message == f.message {
                    done[lane] = true;
                    live -= 1;
                }
            }
            while live > 0 {
                for (lane, f) in flows.iter().enumerate() {
                    if done[lane] {
                        continue;
                    }
                    let (s, y) = f.stream[cursors[lane]];
                    cursors[lane] += 1;
                    obs[lane].push(s, y);
                    decs[lane].decode_into(&obs[lane], &mut scratch, &mut result);
                    if result.message == f.message {
                        done[lane] = true;
                        live -= 1;
                    }
                }
            }
            black_box(live)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_multi_session);
criterion_main!(benches);
