//! Micro-benchmark: beam decoder cost vs `B` and vs message length.
//!
//! §3.2: "The complexity of this practical decoder is linear in the
//! message length" with per-level work `B·2^k`. Expect the `beam_width`
//! group to scale linearly in B and the `message_len` group linearly in
//! n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinal_core::bits::BitVec;
use spinal_core::decode::{AwgnCost, BeamConfig, BeamDecoder, DecoderScratch, Observations};
use spinal_core::encode::Encoder;
use spinal_core::hash::Lookup3;
use spinal_core::map::LinearMapper;
use spinal_core::params::CodeParams;
use spinal_core::symbol::Slot;
use std::hint::black_box;

fn observations(
    enc: &Encoder<Lookup3, LinearMapper>,
    passes: u32,
) -> Observations<spinal_core::symbol::IqSymbol> {
    let mut obs = Observations::new(enc.params().n_segments());
    for pass in 0..passes {
        for t in 0..enc.params().n_segments() {
            let slot = Slot::new(t, pass);
            obs.push(slot, enc.symbol(slot));
        }
    }
    obs
}

fn bench_beam_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("beam_width");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let params = CodeParams::new(24, 8).unwrap();
    let message = BitVec::from_bytes(&[0xca, 0xfe, 0x42]);
    let enc = Encoder::new(&params, Lookup3::new(1), LinearMapper::new(10), &message).unwrap();
    let obs = observations(&enc, 2);
    for &b in &[1usize, 4, 16, 64] {
        let dec = BeamDecoder::new(
            &params,
            Lookup3::new(1),
            LinearMapper::new(10),
            AwgnCost,
            BeamConfig::with_beam(b),
        )
        .unwrap();
        let mut scratch = DecoderScratch::new();
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bch, _| {
            bch.iter(|| black_box(dec.decode_with_scratch(&obs, &mut scratch).cost));
        });
    }
    group.finish();
}

fn bench_message_len(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_len");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[24u32, 48, 96, 192] {
        let params = CodeParams::new(n, 8).unwrap();
        let message = BitVec::from_bools(&(0..n as usize).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let enc = Encoder::new(&params, Lookup3::new(2), LinearMapper::new(10), &message).unwrap();
        let obs = observations(&enc, 1);
        let dec = BeamDecoder::new(
            &params,
            Lookup3::new(2),
            LinearMapper::new(10),
            AwgnCost,
            BeamConfig::paper_default(),
        )
        .unwrap();
        let mut scratch = DecoderScratch::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(dec.decode_with_scratch(&obs, &mut scratch).cost));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_beam_width, bench_message_len);
criterion_main!(benches);
