//! Micro-benchmark: spine-hash families.
//!
//! The encoder costs one hash per k message bits and the decoder one hash
//! per expanded tree edge, so the hash is the innermost loop of the whole
//! system ("the low cost provided by hash functions", §6). Compares the
//! four families on the (state, segment) word-hash the spine uses.

use criterion::{criterion_group, criterion_main, Criterion};
use spinal_core::hash::{AnyHash, HashFamily, SpineHash};
use std::hint::black_box;

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("spine_hash");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for family in [
        HashFamily::Lookup3,
        HashFamily::OneAtATime,
        HashFamily::SipHash24,
        HashFamily::SplitMix,
    ] {
        let h = AnyHash::new(family, 0xfeed);
        group.bench_function(h.name(), |b| {
            let mut state = 0x1234_5678_u64;
            b.iter(|| {
                state = h.hash(black_box(state), black_box(state & 0xff));
                state
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hash);
criterion_main!(benches);
