//! Micro-benchmark: spine-hash families, scalar and batched.
//!
//! The encoder costs one hash per k message bits and the decoder one hash
//! per expanded tree edge, so the hash is the innermost loop of the whole
//! system ("the low cost provided by hash functions", §6). Compares the
//! four families on the (state, segment) word-hash the spine uses, in
//! three call shapes:
//!
//! * `chain` — serially dependent scalar calls (the spine computation);
//! * `scalar` — independent scalar calls over a slab (the pre-batching
//!   decoder expansion);
//! * `batch` — [`SpineHash::hash_batch`] over the same slab (the batched
//!   expansion the encoder and beam decoder now use).
//!
//! Running this bench also records `BENCH_hash.json` in the working
//! directory so future PRs have a hash-layer perf trajectory.

use criterion::{criterion_group, Criterion};
use spinal_bench::{measure_hash_families, BenchSummary};
use spinal_core::hash::{AnyHash, HashFamily, SpineHash};
use spinal_core::kernels::KernelDispatch;
use std::hint::black_box;

const FAMILIES: [HashFamily; 4] = [
    HashFamily::Lookup3,
    HashFamily::OneAtATime,
    HashFamily::SipHash24,
    HashFamily::SplitMix,
];

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("spine_hash");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    const N: usize = 1024;
    let states: Vec<u64> = (0..N as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
    let segments: Vec<u64> = (0..N as u64).map(|i| i.rotate_left(17) ^ 0xabcd).collect();
    for family in FAMILIES {
        let h = AnyHash::new(family, 0xfeed);
        group.bench_function(format!("{}/chain", h.name()), |b| {
            let mut state = 0x1234_5678_u64;
            b.iter(|| {
                state = h.hash(black_box(state), black_box(state & 0xff));
                state
            });
        });
        let mut out = vec![0u64; N];
        group.bench_function(format!("{}/batch-{N}", h.name()), |b| {
            b.iter(|| {
                h.hash_batch(black_box(&states), black_box(&segments), &mut out);
                out[N - 1]
            });
        });
    }
    group.finish();
}

/// Renders `BENCH_hash.json` from the shared measurement in
/// [`spinal_bench::measure_hash_families`] (the same numbers
/// `bench_sim_engine` reports, by construction), under the shared
/// `benchmark`/`config` schema every `BENCH_*.json` artifact carries.
fn write_json() {
    const SEED: u64 = 0xfeed;
    let rows = measure_hash_families(SEED);
    let mut json = BenchSummary::new("hash_throughput", SEED, spinal_bench::HASH_BENCH_ROUNDS)
        .config("slab", spinal_bench::HASH_BENCH_SLAB)
        .config_str("kernel_dispatch", KernelDispatch::detect().as_str())
        .config_str(
            "shapes",
            "chain = dependent scalar; scalar = independent scalar; batch = SIMD-dispatched; batch_scalar = batch pinned to scalar lanes",
        )
        .render_header();
    json.push_str("  \"families\": {\n");
    for (i, r) in rows.iter().enumerate() {
        println!(
            "{:<16} chain {:7.2} ns  scalar {:7.2} ns  batch {:7.2} ns ({:.2}x)  kernel {:.2}x",
            r.name,
            r.chain_ns,
            r.scalar_ns,
            r.batch_ns,
            r.batch_speedup(),
            r.kernel_speedup(),
        );
        json.push_str(&format!(
            "    \"{}\": {{\"chain_ns\": {:.3}, \"scalar_ns\": {:.3}, \"batch_ns\": {:.3}, \"batch_scalar_ns\": {:.3}, \"batch_speedup\": {:.2}, \"kernel_speedup\": {:.2}}}{}\n",
            r.name,
            r.chain_ns,
            r.scalar_ns,
            r.batch_ns,
            r.batch_scalar_ns,
            r.batch_speedup(),
            r.kernel_speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_hash.json", &json).expect("write BENCH_hash.json");
    println!("# wrote BENCH_hash.json");
}

criterion_group!(benches, bench_hash);

fn main() {
    benches();
    write_json();
}
