//! Micro-benchmark: the LDPC baseline's decoder.
//!
//! The Figure 2 baseline runs 40-iteration sum-product BP per 648-bit
//! frame; this bench measures that cost (and min-sum's) at an operating
//! point where decoding converges after a few iterations, plus the
//! worst case where it runs all 40.

use criterion::{criterion_group, criterion_main, Criterion};
use spinal_ldpc::{BpMethod, LdpcCode, LdpcRate};
use std::hint::black_box;

fn noisy_llrs(cw: &[u8], confidence: f64, wrong_every: usize) -> Vec<f64> {
    cw.iter()
        .enumerate()
        .map(|(i, &b)| {
            let s = if b == 0 { confidence } else { -confidence };
            if wrong_every > 0 && i % wrong_every == 3 {
                -0.4 * s
            } else {
                s
            }
        })
        .collect()
}

fn bench_ldpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ldpc_bp");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let code = LdpcCode::new(LdpcRate::R12, 7);
    let info: Vec<u8> = (0..code.k()).map(|i| (i % 5 == 0) as u8).collect();
    let cw = code.encode(&info);

    // Converging case: scattered weak errors.
    let easy = noisy_llrs(&cw, 5.0, 60);
    group.bench_function("sum_product_converging", |b| {
        b.iter(|| {
            black_box(
                code.decode(black_box(&easy), 40, BpMethod::SumProduct)
                    .iterations,
            )
        });
    });
    group.bench_function("min_sum_converging", |b| {
        b.iter(|| {
            black_box(
                code.decode(black_box(&easy), 40, BpMethod::MinSum { alpha: 0.8 })
                    .iterations,
            )
        });
    });

    // Worst case: hopeless input, all 40 iterations run.
    let hopeless: Vec<f64> = (0..code.n())
        .map(|i| if i % 2 == 0 { 0.8 } else { -0.8 })
        .collect();
    group.bench_function("sum_product_full_40_iters", |b| {
        b.iter(|| {
            black_box(
                code.decode(black_box(&hopeless), 40, BpMethod::SumProduct)
                    .converged,
            )
        });
    });

    // Encoder for scale.
    group.bench_function("encode_648", |b| {
        b.iter(|| black_box(code.encode(black_box(&info))));
    });
    group.finish();
}

criterion_group!(benches, bench_ldpc);
criterion_main!(benches);
