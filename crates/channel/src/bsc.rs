//! The binary symmetric channel.
//!
//! Each coded bit is flipped independently with crossover probability
//! `p` — the model behind Theorem 2 and the binary instantiation of the
//! spinal code ("transmit the coded bits directly over a traditional
//! modulation method", §1).

use crate::awgn::Channel;
use crate::rng::Rng;
use spinal_core::SpinalError;

/// BSC with crossover probability `p`.
#[derive(Clone, Debug)]
pub struct BscChannel {
    p: f64,
    rng: Rng,
    flips: u64,
    transmitted: u64,
}

impl BscChannel {
    /// Creates a BSC(p).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`; [`try_new`](Self::try_new) is
    /// the checked form.
    pub fn new(p: f64, seed: u64) -> Self {
        Self::try_new(p, seed).unwrap_or_else(|e| panic!("BSC requires p in [0,1], got {p}: {e}"))
    }

    /// Creates a BSC(p), rejecting probabilities outside `[0, 1]` with a
    /// typed error.
    ///
    /// # Errors
    ///
    /// Returns [`SpinalError::Probability`].
    pub fn try_new(p: f64, seed: u64) -> Result<Self, SpinalError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(SpinalError::Probability {
                name: "crossover",
                value: p,
            });
        }
        Ok(Self {
            p,
            rng: Rng::seed_from(seed),
            flips: 0,
            transmitted: 0,
        })
    }

    /// The crossover probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of bits flipped so far (diagnostics).
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Number of bits transmitted so far (diagnostics).
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }
}

impl Channel<u8> for BscChannel {
    #[inline]
    fn transmit(&mut self, x: u8) -> u8 {
        self.transmitted += 1;
        if self.rng.bernoulli(self.p) {
            self.flips += 1;
            x ^ 1
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_zero_is_identity() {
        let mut ch = BscChannel::new(0.0, 1);
        for bit in [0u8, 1, 0, 1, 1] {
            assert_eq!(ch.transmit(bit), bit);
        }
        assert_eq!(ch.flips(), 0);
        assert_eq!(ch.transmitted(), 5);
    }

    #[test]
    fn p_one_always_flips() {
        let mut ch = BscChannel::new(1.0, 1);
        assert_eq!(ch.transmit(0), 1);
        assert_eq!(ch.transmit(1), 0);
        assert_eq!(ch.flips(), 2);
    }

    #[test]
    fn flip_rate_matches_p() {
        let mut ch = BscChannel::new(0.11, 9);
        const N: u64 = 200_000;
        for _ in 0..N {
            ch.transmit(0);
        }
        let rate = ch.flips() as f64 / N as f64;
        assert!((rate - 0.11).abs() < 0.005, "flip rate {rate}");
    }

    #[test]
    fn output_stays_binary() {
        let mut ch = BscChannel::new(0.5, 3);
        for _ in 0..1000 {
            assert!(ch.transmit(1) <= 1);
            assert!(ch.transmit(0) <= 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = BscChannel::new(0.3, 77);
        let mut b = BscChannel::new(0.3, 77);
        for _ in 0..256 {
            assert_eq!(a.transmit(1), b.transmit(1));
        }
    }

    #[test]
    #[should_panic(expected = "p in [0,1]")]
    fn rejects_bad_p() {
        BscChannel::new(1.2, 0);
    }
}
