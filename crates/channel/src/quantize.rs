//! ADC quantization.
//!
//! §5: "To simulate quantization of an ADC, the receiver quantizes each
//! dimension to 14 bits." This module implements a uniform mid-rise
//! quantizer with a configurable bit depth and clipping range; the
//! Figure 2 harness interposes it between the AWGN channel and the
//! decoder.

use spinal_core::symbol::IqSymbol;

/// Uniform mid-rise quantizer over `[-range, range]` with `bits` bits per
/// dimension.
///
/// Inputs beyond the range clip to the outermost levels — exactly what a
/// real ADC front-end does when the AGC headroom runs out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdcQuantizer {
    bits: u32,
    range: f64,
    step: f64,
}

impl AdcQuantizer {
    /// Creates a quantizer.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 24` and `range > 0`.
    pub fn new(bits: u32, range: f64) -> Self {
        assert!(
            (1..=24).contains(&bits),
            "ADC bits must be in 1..=24, got {bits}"
        );
        assert!(range > 0.0, "ADC range must be positive, got {range}");
        let levels = (1u64 << bits) as f64;
        Self {
            bits,
            range,
            step: 2.0 * range / levels,
        }
    }

    /// The paper's receiver: 14 bits per dimension (§5). `range` should
    /// cover the constellation peak plus noise headroom; the Figure 2
    /// harness uses `mapper.peak() + 4σ_dim`.
    pub fn paper_default(range: f64) -> Self {
        Self::new(14, range)
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Clipping range (symmetric about zero).
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The quantization step `Δ = 2·range / 2^bits`.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Quantizes one dimension: clamp to the range, then snap to the
    /// centre of the containing cell.
    #[inline]
    pub fn quantize(&self, x: f64) -> f64 {
        let levels = 1i64 << self.bits;
        let idx = ((x + self.range) / self.step).floor() as i64;
        let idx = idx.clamp(0, levels - 1);
        -self.range + (idx as f64 + 0.5) * self.step
    }

    /// Quantizes both dimensions of a symbol.
    #[inline]
    pub fn quantize_symbol(&self, s: IqSymbol) -> IqSymbol {
        IqSymbol::new(self.quantize(s.i), self.quantize(s.q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn error_bounded_by_half_step() {
        let q = AdcQuantizer::new(8, 2.0);
        let half = q.step() / 2.0;
        for i in -200..=200 {
            let x = i as f64 / 200.0 * 1.99;
            let e = (q.quantize(x) - x).abs();
            assert!(e <= half + 1e-12, "x={x}: error {e} > {half}");
        }
    }

    #[test]
    fn clips_out_of_range() {
        let q = AdcQuantizer::new(4, 1.0);
        let top = q.quantize(0.999);
        assert_eq!(q.quantize(5.0), top);
        let bottom = q.quantize(-0.999);
        assert_eq!(q.quantize(-5.0), bottom);
        assert!(top <= 1.0 && bottom >= -1.0);
    }

    #[test]
    fn fourteen_bits_is_fine_grained() {
        // At 14 bits over ±2, the step is ~0.00024: quantization noise is
        // negligible next to channel noise at any SNR in Figure 2.
        let q = AdcQuantizer::paper_default(2.0);
        assert_eq!(q.bits(), 14);
        assert!(q.step() < 3e-4);
    }

    #[test]
    fn idempotent() {
        let q = AdcQuantizer::new(6, 1.5);
        for i in -100..=100 {
            let x = i as f64 / 40.0;
            let once = q.quantize(x);
            assert_eq!(q.quantize(once), once, "x={x}");
        }
    }

    #[test]
    fn symbol_quantizes_both_dims() {
        let q = AdcQuantizer::new(10, 2.0);
        let s = q.quantize_symbol(IqSymbol::new(0.123456, -1.98765));
        assert_eq!(s.i, q.quantize(0.123456));
        assert_eq!(s.q, q.quantize(-1.98765));
    }

    #[test]
    fn one_bit_quantizer_is_sign() {
        let q = AdcQuantizer::new(1, 1.0);
        assert_eq!(q.quantize(0.7), 0.5);
        assert_eq!(q.quantize(-0.2), -0.5);
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn rejects_bad_range() {
        AdcQuantizer::new(8, 0.0);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn rejects_bad_bits() {
        AdcQuantizer::new(25, 1.0);
    }

    proptest! {
        #[test]
        fn prop_monotone(bits in 1u32..=14, a in -3.0..3.0f64, d in 0.0..1.0f64) {
            let q = AdcQuantizer::new(bits, 2.0);
            prop_assert!(q.quantize(a + d) >= q.quantize(a));
        }

        #[test]
        fn prop_output_within_range(bits in 1u32..=14, x in -100.0..100.0f64) {
            let q = AdcQuantizer::new(bits, 2.0);
            let y = q.quantize(x);
            prop_assert!(y.abs() <= 2.0);
        }

        #[test]
        fn prop_error_bound_in_range(bits in 2u32..=14, x in -1.99..1.99f64) {
            let q = AdcQuantizer::new(bits, 2.0);
            prop_assert!((q.quantize(x) - x).abs() <= q.step() / 2.0 + 1e-12);
        }
    }
}
