//! A small, fully deterministic PRNG implemented from scratch.
//!
//! Every experiment in this repository takes an explicit `u64` seed and
//! must reproduce bit-identically across machines and library versions
//! (DESIGN.md §2.10), so the noise source is implemented here rather than
//! delegated to an external crate: **xoshiro256++** (Blackman & Vigna)
//! seeded through the **splitmix64** sequence, the construction its
//! authors recommend.
//!
//! This is simulation-grade randomness — excellent statistical quality,
//! sub-nanosecond generation — and, deliberately, not cryptographic.

/// The splitmix64 step, used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero state is the one forbidden state; splitmix64 cannot
        // produce four consecutive zeros, but guard anyway.
        debug_assert!(s.iter().any(|&w| w != 0));
        Self { s }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `(0, 1]` (never zero) — the form Box–Muller's
    /// logarithm needs.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "bernoulli requires p in [0,1], got {p}"
        );
        self.next_f64() < p
    }

    /// One uniformly random bit.
    #[inline]
    pub fn bit(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A uniform integer in `0..n`, bias-free (rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Classic rejection: draw until the value falls under the largest
        // multiple of n that fits in 64 bits.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Derives an independent generator (distinct stream) from this one.
    /// Used to hand each worker thread its own deterministic stream.
    pub fn split(&mut self) -> Rng {
        // Fold two outputs through splitmix64 to decorrelate the child.
        let mut sm = self.next_u64() ^ 0x6a09_e667_f3bc_c909;
        let _ = splitmix64(&mut sm);
        Rng::seed_from(sm ^ self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    // proptest's prelude globs in rand's `Rng` trait; import ours
    // explicitly so the name resolves to the struct under test.
    use super::Rng;

    #[test]
    fn first_output_matches_reference() {
        // xoshiro256++ with state [1,2,3,4]:
        // result = rotl(1 + 4, 23) + 1 = (5 << 23) + 1.
        let mut rng = Rng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), (5u64 << 23) + 1);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from(12345);
        let mut b = Rng::seed_from(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = Rng::seed_from(99);
        const N: usize = 100_000;
        let mean: f64 = (0..N).map(|_| rng.next_f64()).sum::<f64>() / N as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Rng::seed_from(3);
        const N: usize = 100_000;
        let hits = (0..N).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / N as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn below_covers_range_uniformly() {
        let mut rng = Rng::seed_from(11);
        let mut counts = [0usize; 7];
        const N: usize = 70_000;
        for _ in 0..N {
            counts[rng.below(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / N as f64;
            assert!((f - 1.0 / 7.0).abs() < 0.01, "bucket {i}: {f}");
        }
    }

    #[test]
    fn below_power_of_two_fast_path() {
        let mut rng = Rng::seed_from(13);
        for _ in 0..1000 {
            assert!(rng.below(8) < 8);
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    fn split_streams_are_uncorrelated() {
        let mut parent = Rng::seed_from(42);
        let mut child = parent.split();
        // Crude decorrelation check: matching outputs should be absent.
        let matches = (0..256)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(matches, 0);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::seed_from(0).below(0);
    }

    #[test]
    #[should_panic(expected = "p in [0,1]")]
    fn bernoulli_rejects_bad_p() {
        Rng::seed_from(0).bernoulli(1.5);
    }

    #[test]
    fn bit_is_balanced() {
        let mut rng = Rng::seed_from(21);
        const N: usize = 100_000;
        let ones = (0..N).filter(|_| rng.bit()).count();
        let f = ones as f64 / N as f64;
        assert!((f - 0.5).abs() < 0.01, "ones fraction {f}");
    }

    proptest! {
        #[test]
        fn prop_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
            let mut rng = Rng::seed_from(seed);
            for _ in 0..32 {
                prop_assert!(rng.below(n) < n);
            }
        }

        #[test]
        fn prop_seeding_deterministic(seed in any::<u64>()) {
            let mut a = Rng::seed_from(seed);
            let mut b = Rng::seed_from(seed);
            prop_assert_eq!(a.next_u64(), b.next_u64());
            prop_assert_eq!(a.next_f64().to_bits(), b.next_f64().to_bits());
        }
    }
}
