//! The complex additive white Gaussian noise channel.
//!
//! `y = x + w` with `w` iid circularly symmetric complex Gaussian of total
//! variance `σ²` (`σ²/2` per real dimension) — the channel model of §3.2
//! and the substrate of the entire Figure 2 evaluation.
//!
//! SNR convention (DESIGN.md §2.8): `SNR = E[|x|²] / σ²`. All spinal
//! mappers and the modem constellations in this repository are normalised
//! to unit average symbol energy, so `σ² = 10^(−SNR_dB/10)` by default;
//! a different signal energy can be supplied explicitly.

use crate::gaussian::GaussianSampler;
use spinal_core::symbol::IqSymbol;

/// Anything that corrupts a transmitted symbol of type `S` into a
/// received symbol of the same type.
///
/// Implemented by [`AwgnChannel`] (I-Q symbols) and
/// [`crate::bsc::BscChannel`] (bits), letting the simulation harness be
/// generic over the channel family.
pub trait Channel<S> {
    /// Passes one symbol through the channel.
    fn transmit(&mut self, x: S) -> S;
}

/// Complex AWGN channel with fixed noise variance.
#[derive(Clone, Debug)]
pub struct AwgnChannel {
    sigma2: f64,
    sigma_dim: f64,
    gauss: GaussianSampler,
}

impl AwgnChannel {
    /// Channel at `snr_db` for unit-average-energy signals.
    pub fn from_snr_db(snr_db: f64, seed: u64) -> Self {
        Self::with_signal_energy(snr_db, 1.0, seed)
    }

    /// Channel at `snr_db` for signals of average symbol energy
    /// `signal_energy`.
    ///
    /// # Panics
    ///
    /// Panics if `signal_energy` is not positive.
    pub fn with_signal_energy(snr_db: f64, signal_energy: f64, seed: u64) -> Self {
        assert!(signal_energy > 0.0, "signal energy must be positive");
        let snr = 10.0_f64.powf(snr_db / 10.0);
        Self::from_sigma2(signal_energy / snr, seed)
    }

    /// Channel with explicit total noise variance `σ²`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma2` is negative;
    /// [`try_from_sigma2`](Self::try_from_sigma2) is the checked form.
    pub fn from_sigma2(sigma2: f64, seed: u64) -> Self {
        Self::try_from_sigma2(sigma2, seed).expect("noise variance must be non-negative")
    }

    /// Channel with explicit total noise variance `σ²`, rejecting a
    /// negative variance with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`spinal_core::SpinalError::NoiseVariance`].
    pub fn try_from_sigma2(sigma2: f64, seed: u64) -> Result<Self, spinal_core::SpinalError> {
        if sigma2.is_nan() || sigma2 < 0.0 {
            return Err(spinal_core::SpinalError::NoiseVariance(sigma2));
        }
        Ok(Self {
            sigma2,
            sigma_dim: (sigma2 / 2.0).sqrt(),
            gauss: GaussianSampler::seed_from(seed),
        })
    }

    /// Total complex noise variance `σ²`.
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// The SNR in dB experienced by unit-energy signals (∞ for σ² = 0).
    pub fn snr_db(&self) -> f64 {
        if self.sigma2 == 0.0 {
            f64::INFINITY
        } else {
            -10.0 * self.sigma2.log10()
        }
    }

    /// Draws one complex noise sample `w`.
    #[inline]
    pub fn noise(&mut self) -> IqSymbol {
        let (ni, nq) = self.gauss.pair();
        IqSymbol::new(ni * self.sigma_dim, nq * self.sigma_dim)
    }
}

impl Channel<IqSymbol> for AwgnChannel {
    #[inline]
    fn transmit(&mut self, x: IqSymbol) -> IqSymbol {
        x + self.noise()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_is_identity() {
        let mut ch = AwgnChannel::from_sigma2(0.0, 1);
        let x = IqSymbol::new(0.3, -1.2);
        assert_eq!(ch.transmit(x), x);
        assert_eq!(ch.snr_db(), f64::INFINITY);
    }

    #[test]
    fn snr_calibration_10db() {
        // At 10 dB, σ² = 0.1 for unit-energy signals.
        let ch = AwgnChannel::from_snr_db(10.0, 2);
        assert!((ch.sigma2() - 0.1).abs() < 1e-12);
        assert!((ch.snr_db() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn measured_noise_energy_matches_sigma2() {
        let mut ch = AwgnChannel::from_snr_db(3.0, 7);
        let want = ch.sigma2();
        const N: usize = 200_000;
        let measured: f64 = (0..N).map(|_| ch.noise().energy()).sum::<f64>() / N as f64;
        assert!(
            ((measured - want) / want).abs() < 0.02,
            "measured {measured}, want {want}"
        );
    }

    #[test]
    fn noise_dimensions_balanced_and_centered() {
        let mut ch = AwgnChannel::from_snr_db(0.0, 9);
        const N: usize = 100_000;
        let (mut si, mut sq, mut si2, mut sq2) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..N {
            let w = ch.noise();
            si += w.i;
            sq += w.q;
            si2 += w.i * w.i;
            sq2 += w.q * w.q;
        }
        let n = N as f64;
        assert!((si / n).abs() < 0.01);
        assert!((sq / n).abs() < 0.01);
        // Each dimension carries σ²/2 = 0.5 at 0 dB.
        assert!((si2 / n - 0.5).abs() < 0.02, "I var {}", si2 / n);
        assert!((sq2 / n - 0.5).abs() < 0.02, "Q var {}", sq2 / n);
    }

    #[test]
    fn signal_energy_scaling() {
        // Same SNR, 4x signal energy => 4x noise variance.
        let a = AwgnChannel::with_signal_energy(5.0, 1.0, 0);
        let b = AwgnChannel::with_signal_energy(5.0, 4.0, 0);
        assert!((b.sigma2() / a.sigma2() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = AwgnChannel::from_snr_db(10.0, 42);
        let mut b = AwgnChannel::from_snr_db(10.0, 42);
        let x = IqSymbol::new(1.0, 1.0);
        for _ in 0..32 {
            let (ya, yb) = (a.transmit(x), b.transmit(x));
            assert_eq!(ya.i.to_bits(), yb.i.to_bits());
            assert_eq!(ya.q.to_bits(), yb.q.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_variance_rejected() {
        AwgnChannel::from_sigma2(-1.0, 0);
    }
}
