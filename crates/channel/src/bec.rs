//! The binary erasure channel.
//!
//! Each bit is erased (lost, with the receiver knowing it) with
//! probability `e`. Not exercised by the paper's own evaluation — spinal
//! codes target AWGN/BSC — but it is the channel for which Raptor/LT
//! codes achieve capacity (§2's related work) and the natural model for
//! packet loss, so the link-layer simulator and the comparison harness
//! use it.

use crate::rng::Rng;
use spinal_core::SpinalError;

/// BEC with erasure probability `e`. `transmit` returns `None` on
/// erasure.
#[derive(Clone, Debug)]
pub struct BecChannel {
    e: f64,
    rng: Rng,
    erasures: u64,
    transmitted: u64,
}

impl BecChannel {
    /// Creates a BEC(e).
    ///
    /// # Panics
    ///
    /// Panics if `e` is outside `[0, 1]`; [`try_new`](Self::try_new) is
    /// the checked form.
    pub fn new(e: f64, seed: u64) -> Self {
        Self::try_new(e, seed)
            .unwrap_or_else(|err| panic!("BEC requires e in [0,1], got {e}: {err}"))
    }

    /// Creates a BEC(e), rejecting probabilities outside `[0, 1]` with a
    /// typed error.
    ///
    /// # Errors
    ///
    /// Returns [`SpinalError::Probability`].
    pub fn try_new(e: f64, seed: u64) -> Result<Self, SpinalError> {
        if !(0.0..=1.0).contains(&e) {
            return Err(SpinalError::Probability {
                name: "erasure",
                value: e,
            });
        }
        Ok(Self {
            e,
            rng: Rng::seed_from(seed),
            erasures: 0,
            transmitted: 0,
        })
    }

    /// The erasure probability.
    pub fn e(&self) -> f64 {
        self.e
    }

    /// Passes one bit; `None` means erased.
    #[inline]
    pub fn transmit(&mut self, x: u8) -> Option<u8> {
        self.transmitted += 1;
        if self.rng.bernoulli(self.e) {
            self.erasures += 1;
            None
        } else {
            Some(x)
        }
    }

    /// Number of erasures so far (diagnostics).
    pub fn erasures(&self) -> u64 {
        self.erasures
    }

    /// Number of bits offered so far (diagnostics).
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e_zero_never_erases() {
        let mut ch = BecChannel::new(0.0, 1);
        for bit in [0u8, 1] {
            assert_eq!(ch.transmit(bit), Some(bit));
        }
    }

    #[test]
    fn e_one_always_erases() {
        let mut ch = BecChannel::new(1.0, 1);
        assert_eq!(ch.transmit(0), None);
        assert_eq!(ch.transmit(1), None);
        assert_eq!(ch.erasures(), 2);
    }

    #[test]
    fn erasure_rate_matches_e() {
        let mut ch = BecChannel::new(0.25, 5);
        const N: u64 = 100_000;
        for _ in 0..N {
            let _ = ch.transmit(1);
        }
        let rate = ch.erasures() as f64 / N as f64;
        assert!((rate - 0.25).abs() < 0.007, "erasure rate {rate}");
    }

    #[test]
    fn surviving_bits_unchanged() {
        let mut ch = BecChannel::new(0.5, 2);
        for _ in 0..1000 {
            if let Some(y) = ch.transmit(1) {
                assert_eq!(y, 1);
            }
            if let Some(y) = ch.transmit(0) {
                assert_eq!(y, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "e in [0,1]")]
    fn rejects_bad_e() {
        BecChannel::new(-0.1, 0);
    }
}
