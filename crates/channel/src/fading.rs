//! Rayleigh block fading.
//!
//! Time-varying attenuation is the paper's core motivation: "channel
//! conditions vary with time, even at time-scales shorter than a single
//! packet transmission time" (§1). This module models flat Rayleigh
//! fading with block-constant gains: the complex gain `h ~ CN(0, 1)` is
//! redrawn every `block_len` symbols and multiplies the transmitted
//! symbol, `y = h·x + w`.
//!
//! The receiver is assumed coherent (it knows `h`, e.g. from pilots);
//! [`equalize`] divides the observation by the gain, turning the channel
//! into AWGN with per-block SNR `|h|²·SNR` — exactly the fluctuating-SNR
//! regime a rateless code adapts to implicitly. The
//! `rateless_over_fading` example demonstrates this end to end.

use crate::gaussian::GaussianSampler;
use spinal_core::symbol::IqSymbol;

/// A complex channel gain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gain {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Gain {
    /// Creates a gain from its rectangular parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The unit gain (no fading).
    pub const fn unit() -> Self {
        Self { re: 1.0, im: 0.0 }
    }

    /// Squared magnitude `|h|²` — the instantaneous power attenuation.
    pub fn power(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// Applies the complex gain: `y = h · x`.
pub fn apply(h: Gain, x: IqSymbol) -> IqSymbol {
    IqSymbol::new(h.re * x.i - h.im * x.q, h.re * x.q + h.im * x.i)
}

/// Coherent equalisation: `x̂ = y / h`.
///
/// # Panics
///
/// Panics if the gain is exactly zero (a measure-zero event for Rayleigh
/// fading; callers simulating deep fades should clamp instead).
pub fn equalize(h: Gain, y: IqSymbol) -> IqSymbol {
    let p = h.power();
    assert!(p > 0.0, "cannot equalize a zero gain");
    IqSymbol::new((h.re * y.i + h.im * y.q) / p, (h.re * y.q - h.im * y.i) / p)
}

/// Rayleigh block-fading process: `h ~ CN(0, 1)`, constant over blocks of
/// `block_len` symbols.
#[derive(Clone, Debug)]
pub struct RayleighBlockFading {
    block_len: u32,
    idx: u32,
    gain: Gain,
    gauss: GaussianSampler,
}

impl RayleighBlockFading {
    /// Creates the process; the first gain is drawn on the first call to
    /// [`next_gain`](Self::next_gain).
    ///
    /// # Panics
    ///
    /// Panics if `block_len == 0`; [`try_new`](Self::try_new) is the
    /// checked form.
    pub fn new(block_len: u32, seed: u64) -> Self {
        Self::try_new(block_len, seed).expect("block length must be positive")
    }

    /// Creates the process, rejecting a zero block length with a typed
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`spinal_core::SpinalError::BlockLength`].
    pub fn try_new(block_len: u32, seed: u64) -> Result<Self, spinal_core::SpinalError> {
        if block_len == 0 {
            return Err(spinal_core::SpinalError::BlockLength(block_len));
        }
        Ok(Self {
            block_len,
            idx: 0,
            gain: Gain::unit(),
            gauss: GaussianSampler::seed_from(seed),
        })
    }

    /// The block length in symbols.
    pub fn block_len(&self) -> u32 {
        self.block_len
    }

    /// Advances one symbol period and returns the gain in effect,
    /// redrawing it at block boundaries.
    pub fn next_gain(&mut self) -> Gain {
        if self.idx.is_multiple_of(self.block_len) {
            let (a, b) = self.gauss.pair();
            // CN(0,1): each part N(0, 1/2).
            let s = std::f64::consts::FRAC_1_SQRT_2;
            self.gain = Gain::new(a * s, b * s);
        }
        self.idx += 1;
        self.gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_constant_within_block_changes_across() {
        let mut f = RayleighBlockFading::new(4, 3);
        let g0 = f.next_gain();
        for _ in 1..4 {
            assert_eq!(f.next_gain(), g0);
        }
        let g1 = f.next_gain();
        assert_ne!(g1, g0, "block boundary must redraw the gain");
        for _ in 1..4 {
            assert_eq!(f.next_gain(), g1);
        }
    }

    #[test]
    fn average_power_is_unity() {
        let mut f = RayleighBlockFading::new(1, 11);
        const N: usize = 200_000;
        let mean: f64 = (0..N).map(|_| f.next_gain().power()).sum::<f64>() / N as f64;
        assert!((mean - 1.0).abs() < 0.02, "E|h|^2 = {mean}");
    }

    #[test]
    fn rayleigh_fraction_in_deep_fade() {
        // P(|h|² < 0.1) = 1 − e^(−0.1) ≈ 0.0952 for |h|² ~ Exp(1).
        let mut f = RayleighBlockFading::new(1, 21);
        const N: usize = 200_000;
        let deep = (0..N).filter(|_| f.next_gain().power() < 0.1).count();
        let frac = deep as f64 / N as f64;
        assert!((frac - 0.0952).abs() < 0.005, "deep-fade fraction {frac}");
    }

    #[test]
    fn apply_then_equalize_roundtrip() {
        let h = Gain::new(0.6, -0.8);
        let x = IqSymbol::new(1.25, -0.5);
        let back = equalize(h, apply(h, x));
        assert!((back.i - x.i).abs() < 1e-12);
        assert!((back.q - x.q).abs() < 1e-12);
    }

    #[test]
    fn apply_is_complex_multiplication() {
        // (1 + i)·(1 + 0i) rotated: h = i => (x_i, x_q) -> (-x_q, x_i).
        let h = Gain::new(0.0, 1.0);
        let y = apply(h, IqSymbol::new(2.0, 3.0));
        assert_eq!(y, IqSymbol::new(-3.0, 2.0));
    }

    #[test]
    fn unit_gain_is_identity() {
        let x = IqSymbol::new(0.7, 0.2);
        assert_eq!(apply(Gain::unit(), x), x);
        assert_eq!(equalize(Gain::unit(), x), x);
    }

    #[test]
    #[should_panic(expected = "zero gain")]
    fn equalize_zero_gain_panics() {
        equalize(Gain::new(0.0, 0.0), IqSymbol::new(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "block length")]
    fn zero_block_rejected() {
        RayleighBlockFading::new(0, 0);
    }
}
