//! Gaussian sampling via the Box–Muller transform, from scratch.
//!
//! The AWGN channel needs iid `N(0, σ²/2)` noise per I and Q dimension
//! (§3.2: "w is an iid complex symmetric Gaussian of mean 0 and variance
//! σ²"). Box–Muller turns two uniforms into two exact unit normals:
//!
//! ```text
//! z₀ = √(−2 ln u₁) · cos(2π u₂),   z₁ = √(−2 ln u₁) · sin(2π u₂)
//! ```
//!
//! The sampler caches the second output, so the amortised cost is one
//! uniform, one transcendental pair per two normals.

use crate::rng::Rng;

/// A buffered standard-normal sampler.
#[derive(Clone, Debug)]
pub struct GaussianSampler {
    rng: Rng,
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with its own deterministic stream.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            rng: Rng::seed_from(seed),
            spare: None,
        }
    }

    /// Wraps an existing generator.
    pub fn from_rng(rng: Rng) -> Self {
        Self { rng, spare: None }
    }

    /// The next `N(0, 1)` sample.
    #[inline]
    pub fn standard(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let (z0, z1) = self.pair();
        self.spare = Some(z1);
        z0
    }

    /// Two independent `N(0, 1)` samples (one Box–Muller application).
    #[inline]
    pub fn pair(&mut self) -> (f64, f64) {
        let u1 = self.rng.next_f64_open(); // (0, 1]: ln is finite
        let u2 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }

    /// The next `N(0, σ²)` sample.
    #[inline]
    pub fn scaled(&mut self, sigma: f64) -> f64 {
        self.standard() * sigma
    }

    /// Access to the underlying uniform generator (for deriving
    /// sub-streams).
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Welford online mean/variance, used by several statistical tests.
    fn mean_var(samples: impl Iterator<Item = f64>) -> (f64, f64, usize) {
        let (mut n, mut mean, mut m2) = (0usize, 0.0f64, 0.0f64);
        for x in samples {
            n += 1;
            let d = x - mean;
            mean += d / n as f64;
            m2 += d * (x - mean);
        }
        (mean, m2 / (n - 1) as f64, n)
    }

    #[test]
    fn mean_zero_variance_one() {
        let mut g = GaussianSampler::seed_from(2024);
        const N: usize = 200_000;
        let (mean, var, _) = mean_var((0..N).map(|_| g.standard()));
        // stderr of mean ≈ 1/√N ≈ 0.0022; allow 4σ.
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn scaled_variance() {
        let mut g = GaussianSampler::seed_from(5);
        const N: usize = 100_000;
        let (_, var, _) = mean_var((0..N).map(|_| g.scaled(3.0)));
        assert!((var - 9.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn tail_mass_matches_gaussian() {
        // P(|Z| > 2) ≈ 0.0455; a gross shape check on the tails.
        let mut g = GaussianSampler::seed_from(88);
        const N: usize = 200_000;
        let tail = (0..N).filter(|_| g.standard().abs() > 2.0).count();
        let f = tail as f64 / N as f64;
        assert!((f - 0.0455).abs() < 0.004, "tail fraction {f}");
    }

    #[test]
    fn pair_components_uncorrelated() {
        let mut g = GaussianSampler::seed_from(7);
        const N: usize = 100_000;
        let mut sum_xy = 0.0;
        for _ in 0..N {
            let (x, y) = g.pair();
            sum_xy += x * y;
        }
        let corr = sum_xy / N as f64;
        assert!(corr.abs() < 0.02, "correlation {corr}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = GaussianSampler::seed_from(123);
        let mut b = GaussianSampler::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.standard().to_bits(), b.standard().to_bits());
        }
    }

    #[test]
    fn all_samples_finite() {
        let mut g = GaussianSampler::seed_from(1);
        for _ in 0..100_000 {
            assert!(g.standard().is_finite());
        }
    }

    #[test]
    fn spare_value_is_consumed_in_order() {
        // standard() must interleave exactly with pair()'s outputs.
        let mut a = GaussianSampler::seed_from(55);
        let mut b = GaussianSampler::seed_from(55);
        let (z0, z1) = a.pair();
        // `b` gets the same uniforms, so its first two standard() calls
        // must return the same two values in order.
        assert_eq!(b.standard().to_bits(), z0.to_bits());
        assert_eq!(b.standard().to_bits(), z1.to_bits());
    }
}
