//! Channel models for the spinal-codes evaluation.
//!
//! Everything between the encoder's symbols and the decoder's
//! observations lives here:
//!
//! * [`awgn::AwgnChannel`] — complex AWGN, the §3.2 model behind Figure 2;
//! * [`bsc::BscChannel`] — the binary symmetric channel of Theorem 2;
//! * [`bec::BecChannel`] — binary erasures (Raptor/LT territory, used by
//!   the link-layer simulator);
//! * [`fading::RayleighBlockFading`] — block fading, the time-varying
//!   regime that motivates rateless operation (§1);
//! * [`quantize::AdcQuantizer`] — the receiver's 14-bit ADC (§5);
//! * [`rng::Rng`] / [`gaussian::GaussianSampler`] — a from-scratch,
//!   seedable xoshiro256++ generator and Box–Muller normal sampler, so
//!   every experiment is bit-reproducible from its `u64` seed.
//!
//! The [`Channel`] trait (one symbol in, one symbol out) is what the
//! simulation harness is generic over.
//!
//! # Example
//!
//! ```
//! use spinal_channel::{AwgnChannel, Channel};
//! use spinal_core::IqSymbol;
//!
//! let mut ch = AwgnChannel::from_snr_db(20.0, 7);
//! let y = ch.transmit(IqSymbol::new(1.0, -1.0));
//! // At 20 dB the perturbation is small.
//! assert!((y.i - 1.0).abs() < 0.5 && (y.q + 1.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod awgn;
pub mod bec;
pub mod bsc;
pub mod fading;
pub mod gaussian;
pub mod quantize;
pub mod rng;

pub use awgn::{AwgnChannel, Channel};
pub use bec::BecChannel;
pub use bsc::BscChannel;
pub use fading::{apply, equalize, Gain, RayleighBlockFading};
pub use gaussian::GaussianSampler;
pub use quantize::AdcQuantizer;
pub use rng::Rng;
