//! Deterministic, seeded link-fault injection: composable transforms of
//! a slot-labelled symbol stream.
//!
//! The robustness contract of this repository — no panic, no livelock,
//! no silent mis-decode; degrade by paying symbols — is only testable if
//! degraded inputs are *reproducible*. This module provides the faulted
//! link as a pure function: every per-symbol decision (drop, duplicate,
//! reorder, corrupt, mislabel) is drawn from a counter-based seed
//! stream, exactly like the simulation engine's per-trial seeds
//! (`spinal_sim::engine`), so a faulted run is **bit-identical at any
//! worker count** and across kernel tiers — the fault sequence depends
//! only on `(plan seed, symbol index)`, never on scheduling.
//!
//! A [`FaultPlan`] is an ordered list of [`LinkFault`] transforms plus a
//! seed; [`FaultPlan::stream`] instantiates the stateful
//! [`FaultStream`] that pushes transmitted symbols through the faults
//! and emits zero or more [`Delivery`] records per push (zero for a
//! drop, two for a duplicate, late ones for reordering).
//!
//! # Example
//!
//! ```
//! use spinal_link::fault::{Delivery, FaultPlan, LinkFault};
//! use spinal_core::symbol::Slot;
//! use spinal_core::IqSymbol;
//!
//! let plan = FaultPlan::new(7)
//!     .with(LinkFault::Drop { p: 0.2 })
//!     .with(LinkFault::Duplicate { p: 0.1 });
//! plan.validate().unwrap();
//! let mut out = Vec::new();
//! let runs: Vec<Vec<Delivery>> = (0..2)
//!     .map(|_| {
//!         let mut stream = plan.stream();
//!         let mut all = Vec::new();
//!         for seq in 0..100u64 {
//!             let sym = IqSymbol::new(seq as f64, 0.0);
//!             stream.push(seq, Slot::new(0, 0), sym, &mut out);
//!             all.extend(out.iter().copied());
//!         }
//!         stream.finish(&mut out);
//!         all.extend(out.iter().copied());
//!         all
//!     })
//!     .collect();
//! assert_eq!(runs[0], runs[1], "same plan, same seed => same stream");
//! assert!(runs[0].len() < 100 + 20, "drops outweigh duplicates here");
//! ```

use spinal_core::symbol::Slot;
use spinal_core::{IqSymbol, SpinalError};
use spinal_sim::stats::derive_seed;

/// Stream label base for per-fault decision draws (fault `j` draws from
/// stream `FAULT_DECISION_BASE + j`).
const FAULT_DECISION_BASE: u64 = 0x4641_0000;
/// Stream label for corruption replacement values.
const FAULT_CORRUPT_VALUES: u64 = 0x4641_ff00;

/// Maps a 64-bit draw onto `[0, 1)` (53 mantissa bits, exactly like the
/// channel PRNG), so fault probabilities compare exactly.
#[inline]
pub(crate) fn unit(r: u64) -> f64 {
    (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One composable link-fault transform. Probabilities are per transmitted
/// symbol; faults in a [`FaultPlan`] apply in order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkFault {
    /// The symbol is erased in flight (BEC on the data link): nothing is
    /// delivered.
    Drop {
        /// Per-symbol drop probability.
        p: f64,
    },
    /// The symbol is delivered twice (a retransmitting relay, a
    /// multipath echo); duplicates carry the same `seq` and slot label.
    Duplicate {
        /// Per-symbol duplication probability.
        p: f64,
    },
    /// The symbol is held back and delivered up to `window` symbols
    /// late, after symbols transmitted later (an out-of-order path).
    Reorder {
        /// Per-symbol reorder probability.
        p: f64,
        /// Most symbols a reordered symbol can be delayed by (≥ 1).
        window: u32,
    },
    /// Burst corruption: with probability `p` a burst starts, replacing
    /// this and the next `len - 1` symbols with saturated garbage I/Q
    /// values (an interferer keying on).
    Burst {
        /// Per-symbol burst-start probability.
        p: f64,
        /// Symbols a burst lasts (≥ 1).
        len: u32,
    },
    /// The symbol arrives with the *previous* symbol's slot label (a
    /// stale or corrupted header): evidence lands at the wrong spine
    /// position but stays in range, so decoding degrades instead of
    /// erroring.
    StaleSlot {
        /// Per-symbol mislabel probability.
        p: f64,
    },
}

impl LinkFault {
    fn probability(&self) -> f64 {
        match *self {
            LinkFault::Drop { p }
            | LinkFault::Duplicate { p }
            | LinkFault::Reorder { p, .. }
            | LinkFault::Burst { p, .. }
            | LinkFault::StaleSlot { p } => p,
        }
    }
}

/// Counts of faults a [`FaultStream`] actually applied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Symbols erased by [`LinkFault::Drop`].
    pub dropped: u64,
    /// Extra copies emitted by [`LinkFault::Duplicate`].
    pub duplicated: u64,
    /// Symbols delayed by [`LinkFault::Reorder`].
    pub reordered: u64,
    /// Symbols garbled by [`LinkFault::Burst`].
    pub corrupted: u64,
    /// Symbols mislabelled by [`LinkFault::StaleSlot`].
    pub mislabelled: u64,
}

/// A seeded, ordered fault composition — the full description of a
/// degraded link, reproducible from `(faults, seed)` alone.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<LinkFault>,
    seed: u64,
}

impl FaultPlan {
    /// An empty (pass-through) plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        Self {
            faults: Vec::new(),
            seed,
        }
    }

    /// Appends a fault to the composition (applied after the existing
    /// ones).
    #[must_use]
    pub fn with(mut self, fault: LinkFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The ordered fault list.
    pub fn faults(&self) -> &[LinkFault] {
        &self.faults
    }

    /// `true` when the plan applies no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The same composition under a different decision seed — the
    /// per-frame / per-trial derivation hook (counter-based, like the
    /// simulation engine's trial seeds).
    #[must_use]
    pub fn reseeded(&self, seed: u64) -> Self {
        Self {
            faults: self.faults.clone(),
            seed,
        }
    }

    /// Checks every fault's parameters with typed errors.
    ///
    /// # Errors
    ///
    /// [`SpinalError::Probability`] for a probability outside `[0, 1]`,
    /// [`SpinalError::AtLeastOne`] for a zero reorder window or burst
    /// length.
    pub fn validate(&self) -> Result<(), SpinalError> {
        for fault in &self.faults {
            let p = fault.probability();
            if !(0.0..=1.0).contains(&p) {
                return Err(SpinalError::Probability {
                    name: "link fault",
                    value: p,
                });
            }
            match *fault {
                LinkFault::Reorder { window: 0, .. } => {
                    return Err(SpinalError::AtLeastOne {
                        name: "reorder window",
                        value: 0,
                    })
                }
                LinkFault::Burst { len: 0, .. } => {
                    return Err(SpinalError::AtLeastOne {
                        name: "burst length",
                        value: 0,
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Instantiates the stateful stream that applies this plan.
    pub fn stream(&self) -> FaultStream {
        FaultStream {
            faults: self.faults.clone(),
            seed: self.seed,
            index: 0,
            burst_left: 0,
            last_slot: None,
            held: Vec::new(),
            order: 0,
            counters: FaultCounters::default(),
        }
    }
}

/// One symbol delivered by a [`FaultStream`]: the opaque sequence tag
/// the caller pushed (duplicates repeat it), the — possibly mislabelled
/// — slot, and the — possibly corrupted — symbol.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Delivery {
    /// The caller's sequence tag for the pushed symbol.
    pub seq: u64,
    /// The slot label the receiver sees.
    pub slot: Slot,
    /// The I/Q value the receiver sees.
    pub symbol: IqSymbol,
}

/// A held (reordered) symbol awaiting its release index.
#[derive(Clone, Copy, Debug)]
struct Held {
    due: u64,
    order: u64,
    delivery: Delivery,
}

/// The stateful application of a [`FaultPlan`] to one symbol stream.
///
/// Every decision is a pure function of `(plan seed, fault position,
/// push index)` — two streams built from the same plan produce
/// bit-identical deliveries regardless of what else the process is
/// doing, which is what makes faulted ensemble runs reproducible at any
/// worker count.
#[derive(Clone, Debug)]
pub struct FaultStream {
    faults: Vec<LinkFault>,
    seed: u64,
    /// Symbols pushed so far — the decision counter.
    index: u64,
    /// Remaining symbols of an in-progress corruption burst.
    burst_left: u32,
    /// The previous pushed symbol's true slot (stale-label source).
    last_slot: Option<Slot>,
    held: Vec<Held>,
    order: u64,
    counters: FaultCounters,
}

impl FaultStream {
    /// Pushes one transmitted symbol through the fault composition.
    /// `out` is cleared, then receives this push's deliveries **in
    /// arrival order**: reordered symbols whose delay expired first,
    /// then the pushed symbol itself (unless dropped or held), then its
    /// duplicate (if any). `seq` is an opaque tag echoed in deliveries —
    /// senders use their per-frame stream position so receivers can
    /// detect gaps.
    pub fn push(&mut self, seq: u64, slot: Slot, symbol: IqSymbol, out: &mut Vec<Delivery>) {
        out.clear();
        let i = self.index;
        self.index += 1;

        let mut dropped = false;
        let mut duplicate = false;
        let mut delay = 0u64;
        let mut corrupt = self.burst_left > 0;
        if corrupt {
            self.burst_left -= 1;
        }
        let mut stale = false;
        for (j, fault) in self.faults.iter().enumerate() {
            let r = derive_seed(self.seed, FAULT_DECISION_BASE + j as u64, i);
            let hit = unit(r) < fault.probability();
            match *fault {
                LinkFault::Drop { .. } if hit => dropped = true,
                LinkFault::Duplicate { .. } if hit => duplicate = true,
                LinkFault::Reorder { window, .. } if hit => {
                    delay = 1 + (r >> 33) % u64::from(window.max(1));
                }
                LinkFault::Burst { len, .. } if hit && !corrupt => {
                    corrupt = true;
                    self.burst_left = len.saturating_sub(1);
                }
                LinkFault::StaleSlot { .. } if hit => stale = true,
                _ => {}
            }
        }

        // Release expired holds before this push's own delivery.
        self.release(i, out);

        let last = self.last_slot.replace(slot);
        if dropped {
            self.counters.dropped += 1;
            return;
        }
        let mut delivery = Delivery { seq, slot, symbol };
        if corrupt {
            // Saturated garbage at the constellation's corners; exact
            // binary values keep faulted runs bit-stable everywhere.
            let rc = derive_seed(self.seed, FAULT_CORRUPT_VALUES, i);
            delivery.symbol = IqSymbol::new(
                if rc & 1 == 0 { 3.5 } else { -3.5 },
                if rc & 2 == 0 { 3.5 } else { -3.5 },
            );
            self.counters.corrupted += 1;
        }
        if stale {
            if let Some(prev) = last {
                delivery.slot = prev;
                self.counters.mislabelled += 1;
            }
        }
        let copies = if duplicate {
            self.counters.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            if delay > 0 {
                self.counters.reordered += 1;
                self.held.push(Held {
                    due: i + delay,
                    order: self.order,
                    delivery,
                });
            } else {
                out.push(delivery);
            }
            self.order += 1;
        }
    }

    /// Appends the held deliveries whose release index has arrived, in
    /// `(due, insertion)` order.
    fn release(&mut self, now: u64, out: &mut Vec<Delivery>) {
        loop {
            let next = self
                .held
                .iter()
                .enumerate()
                .filter(|(_, h)| h.due <= now)
                .min_by_key(|(_, h)| (h.due, h.order));
            let Some((pos, _)) = next else { break };
            out.push(self.held.swap_remove(pos).delivery);
        }
    }

    /// Flushes every still-held symbol (stream end): `out` is cleared,
    /// then receives them in `(due, insertion)` order.
    pub fn finish(&mut self, out: &mut Vec<Delivery>) {
        out.clear();
        self.release(u64::MAX, out);
    }

    /// What the stream has applied so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Symbols pushed so far.
    pub fn pushed(&self) -> u64 {
        self.index
    }

    /// Rewinds the stream to its initial state (same decisions replay).
    pub fn reset(&mut self) {
        self.index = 0;
        self.burst_left = 0;
        self.last_slot = None;
        self.held.clear();
        self.order = 0;
        self.counters = FaultCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u64) -> IqSymbol {
        IqSymbol::new(i as f64 * 0.25, -(i as f64) * 0.125)
    }

    fn run(plan: &FaultPlan, n: u64) -> Vec<Delivery> {
        let mut stream = plan.stream();
        let mut out = Vec::new();
        let mut all = Vec::new();
        for i in 0..n {
            stream.push(
                i,
                Slot::new((i % 6) as u32, (i / 6) as u32),
                sym(i),
                &mut out,
            );
            all.extend(out.iter().copied());
        }
        stream.finish(&mut out);
        all.extend(out.iter().copied());
        all
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::new(1);
        let all = run(&plan, 50);
        assert_eq!(all.len(), 50);
        for (i, d) in all.iter().enumerate() {
            assert_eq!(d.seq, i as u64);
            assert_eq!(d.symbol, sym(i as u64));
        }
    }

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let plan = FaultPlan::new(9)
            .with(LinkFault::Drop { p: 0.3 })
            .with(LinkFault::Duplicate { p: 0.2 })
            .with(LinkFault::Reorder { p: 0.2, window: 5 })
            .with(LinkFault::Burst { p: 0.05, len: 3 })
            .with(LinkFault::StaleSlot { p: 0.1 });
        assert_eq!(run(&plan, 200), run(&plan, 200), "same seed, same stream");
        assert_ne!(
            run(&plan, 200),
            run(&plan.reseeded(10), 200),
            "different seed, different stream"
        );
        // Reset replays identically.
        let mut s = plan.stream();
        let mut out = Vec::new();
        s.push(0, Slot::new(0, 0), sym(0), &mut out);
        let first = out.clone();
        s.reset();
        s.push(0, Slot::new(0, 0), sym(0), &mut out);
        assert_eq!(first, out);
    }

    #[test]
    fn drop_rate_matches_probability() {
        let plan = FaultPlan::new(3).with(LinkFault::Drop { p: 0.25 });
        let n = 4000u64;
        let all = run(&plan, n);
        let rate = 1.0 - all.len() as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn duplicates_share_seq_and_slot() {
        let plan = FaultPlan::new(4).with(LinkFault::Duplicate { p: 1.0 });
        let all = run(&plan, 20);
        assert_eq!(all.len(), 40);
        for pair in all.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn reordering_is_bounded_and_complete() {
        let plan = FaultPlan::new(5).with(LinkFault::Reorder { p: 0.5, window: 4 });
        let n = 500u64;
        let all = run(&plan, n);
        assert_eq!(all.len(), n as usize, "reorder never loses symbols");
        let mut seen: Vec<u64> = all.iter().map(|d| d.seq).collect();
        for (pos, d) in all.iter().enumerate() {
            // A symbol pushed at seq i appears no later than ~window
            // pushes after its turn.
            assert!(
                (pos as i64 - d.seq as i64).unsigned_abs() <= 8,
                "seq {} at position {pos}",
                d.seq
            );
        }
        seen.sort_unstable();
        assert!(seen.windows(2).all(|w| w[1] == w[0] + 1), "no seq lost");
        let mut stream = plan.stream();
        let mut out = Vec::new();
        for i in 0..n {
            stream.push(i, Slot::new(0, 0), sym(i), &mut out);
        }
        assert!(stream.counters().reordered > n / 4);
    }

    #[test]
    fn bursts_corrupt_runs_of_symbols() {
        let plan = FaultPlan::new(6).with(LinkFault::Burst { p: 0.02, len: 4 });
        let all = run(&plan, 1000);
        let corrupted: Vec<bool> = all
            .iter()
            .map(|d| d.symbol.i.abs() == 3.5 && d.symbol.q.abs() == 3.5)
            .collect();
        let total = corrupted.iter().filter(|&&c| c).count();
        assert!(total >= 40, "bursts must corrupt in bulk, got {total}");
        // Runs: at least one full-length burst appears.
        let mut best = 0usize;
        let mut cur = 0usize;
        for &c in &corrupted {
            cur = if c { cur + 1 } else { 0 };
            best = best.max(cur);
        }
        assert!(best >= 4, "longest corrupted run {best}");
    }

    #[test]
    fn stale_slots_stay_in_range() {
        let plan = FaultPlan::new(7).with(LinkFault::StaleSlot { p: 0.5 });
        let all = run(&plan, 300);
        assert_eq!(all.len(), 300);
        let mislabelled = all
            .iter()
            .enumerate()
            .filter(|(i, d)| d.slot != Slot::new((*i as u64 % 6) as u32, (*i as u64 / 6) as u32))
            .count();
        assert!(mislabelled > 60, "stale labels must occur: {mislabelled}");
        for d in &all {
            assert!(d.slot.t < 6, "stale labels reuse real slots only");
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let bad_p = FaultPlan::new(0).with(LinkFault::Drop { p: 1.5 });
        assert!(matches!(
            bad_p.validate().unwrap_err(),
            SpinalError::Probability { .. }
        ));
        let bad_window = FaultPlan::new(0).with(LinkFault::Reorder { p: 0.1, window: 0 });
        assert_eq!(
            bad_window.validate().unwrap_err(),
            SpinalError::AtLeastOne {
                name: "reorder window",
                value: 0
            }
        );
        let bad_len = FaultPlan::new(0).with(LinkFault::Burst { p: 0.1, len: 0 });
        assert_eq!(
            bad_len.validate().unwrap_err(),
            SpinalError::AtLeastOne {
                name: "burst length",
                value: 0
            }
        );
        assert!(FaultPlan::new(0).validate().is_ok());
    }
}
