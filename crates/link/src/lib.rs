//! A feedback link-layer protocol for rateless spinal codes — the paper's
//! §6 future-work item 2, built in simulation.
//!
//! A rateless code needs feedback to stop: the sender streams symbols
//! until the receiver's ACK arrives, so every frame wastes roughly one
//! feedback delay's worth of symbols unless the sender pipelines other
//! frames into the gap. [`protocol::LinkConfig`] describes the protocol
//! (window depth, feedback delay, code configuration);
//! [`sim::simulate_link`] runs it at symbol granularity and reports
//! throughput, latency and delivery statistics.
//!
//! # Example
//!
//! ```
//! use spinal_link::{simulate_link, LinkConfig};
//!
//! // Stop-and-wait with an 8-symbol feedback delay at 25 dB.
//! let cfg = LinkConfig::demo(25.0, 8, 1);
//! let report = simulate_link(&cfg, 10, 42).unwrap();
//! assert_eq!(report.frames_delivered, 10);
//! // Per frame: ~4 symbols to decode + 8 wasted awaiting the ACK.
//! let tput = report.throughput(cfg.message_bits);
//! assert!(tput > 0.7 && tput < 2.5, "throughput {tput}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod protocol;
pub mod sim;

pub use fault::{Delivery, FaultCounters, FaultPlan, FaultStream, LinkFault};
pub use protocol::{FeedbackConfig, FeedbackMode, LinkConfig, LinkReport};
pub use sim::{simulate_link, simulate_link_ensemble};
