//! Protocol configuration and reporting types.
//!
//! The paper's §6 lists "developing a feedback link-layer protocol for
//! rateless spinal codes" as next-step work and §5 notes that "an
//! eventual system using spinal codes (or for that matter any rateless
//! code) ought to use a feedback protocol to achieve the best possible
//! trade-off between throughput and latency." This crate builds that
//! protocol in simulation:
//!
//! * the **sender** streams coded symbols for the frames in its window,
//!   round-robin, and keeps transmitting a frame until its ACK arrives —
//!   it has no channel estimate and never adapts a rate;
//! * the **receiver** attempts decoding as symbols accumulate and sends
//!   an ACK the moment a frame decodes; the ACK takes
//!   [`LinkConfig::feedback_delay`] symbol-times to reach the sender;
//! * with a window of 1 the protocol is stop-and-wait and every frame
//!   wastes ~`feedback_delay` symbols; with a deeper window the sender
//!   fills the ACK gap with other frames' symbols (pipelining), which is
//!   the trade-off the `link_protocol` binary quantifies.

use spinal_core::decode::BeamConfig;
use spinal_core::hash::HashFamily;
use spinal_core::map::AnyIqMapper;
use spinal_core::puncture::AnySchedule;
use spinal_core::SpinalError;
use spinal_sim::stats::RunningStats;

/// Configuration of a link simulation.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Frame payload in bits (the spinal-code message).
    pub message_bits: u32,
    /// Segment size `k`.
    pub k: u32,
    /// Spine-hash family.
    pub hash: HashFamily,
    /// Constellation mapper.
    pub mapper: AnyIqMapper,
    /// Transmission schedule.
    pub schedule: AnySchedule,
    /// Beam decoder resources at the receiver.
    pub beam: BeamConfig,
    /// Channel SNR in dB.
    pub snr_db: f64,
    /// ACK propagation time, in symbol-times.
    pub feedback_delay: u64,
    /// Sender window: frames simultaneously in flight (1 = stop-and-wait).
    pub frames_in_flight: u32,
    /// Decode-attempt thinning at the receiver (≥ 1.0; see
    /// `spinal_sim::rateless::RatelessConfig::attempt_growth`).
    pub attempt_growth: f64,
    /// Sender abandons a frame after this many of its symbols
    /// (the §3 "too much time has been spent" escape hatch).
    pub max_symbols_per_frame: u64,
}

impl LinkConfig {
    /// Checks the configuration with typed errors: at least one frame in
    /// flight, attempt growth ≥ 1, valid code parameters.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpinalError`] violated.
    pub fn validate(&self) -> Result<(), SpinalError> {
        if self.frames_in_flight == 0 {
            return Err(SpinalError::Window(self.frames_in_flight));
        }
        if self.attempt_growth.is_nan() || self.attempt_growth < 1.0 {
            return Err(SpinalError::AttemptGrowth(self.attempt_growth));
        }
        self.beam.validate()?;
        spinal_core::params::CodeParams::builder()
            .message_bits(self.message_bits)
            .k(self.k)
            .build()?;
        Ok(())
    }

    /// A small demonstration configuration: 16-bit frames, k = 4, c = 6.
    pub fn demo(snr_db: f64, feedback_delay: u64, frames_in_flight: u32) -> Self {
        Self {
            message_bits: 16,
            k: 4,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(6),
            schedule: AnySchedule::none(),
            beam: BeamConfig::with_beam(8),
            snr_db,
            feedback_delay,
            frames_in_flight,
            attempt_growth: 1.0,
            max_symbols_per_frame: 4000,
        }
    }
}

/// Results of a link simulation.
#[derive(Clone, Debug)]
pub struct LinkReport {
    /// Frames the application offered.
    pub frames_requested: u32,
    /// Frames delivered (decoded correctly and ACKed).
    pub frames_delivered: u32,
    /// Frames abandoned after the per-frame symbol budget.
    pub frames_aborted: u32,
    /// Total symbols the sender transmitted (including post-decode,
    /// pre-ACK waste).
    pub symbols_sent: u64,
    /// Per-frame decode latency in symbol-times (first symbol sent →
    /// decoded), over delivered frames.
    pub decode_latency: RunningStats,
    /// Per-frame symbols the receiver actually needed to decode.
    pub symbols_to_decode: RunningStats,
}

impl LinkReport {
    /// Link throughput in payload bits per transmitted symbol — the
    /// protocol-level figure of merit (coding rate × protocol
    /// efficiency).
    pub fn throughput(&self, message_bits: u32) -> f64 {
        if self.symbols_sent == 0 {
            0.0
        } else {
            f64::from(self.frames_delivered) * f64::from(message_bits) / self.symbols_sent as f64
        }
    }

    /// Fraction of frames delivered.
    pub fn delivery_fraction(&self) -> f64 {
        if self.frames_requested == 0 {
            0.0
        } else {
            f64::from(self.frames_delivered) / f64::from(self.frames_requested)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_config_is_valid() {
        let cfg = LinkConfig::demo(10.0, 16, 4);
        assert_eq!(cfg.message_bits % cfg.k, 0);
        assert!(cfg.attempt_growth >= 1.0);
        assert_eq!(cfg.frames_in_flight, 4);
    }

    #[test]
    fn report_throughput_math() {
        let report = LinkReport {
            frames_requested: 10,
            frames_delivered: 8,
            frames_aborted: 2,
            symbols_sent: 64,
            decode_latency: RunningStats::new(),
            symbols_to_decode: RunningStats::new(),
        };
        assert!((report.throughput(16) - 8.0 * 16.0 / 64.0).abs() < 1e-12);
        assert!((report.delivery_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let report = LinkReport {
            frames_requested: 0,
            frames_delivered: 0,
            frames_aborted: 0,
            symbols_sent: 0,
            decode_latency: RunningStats::new(),
            symbols_to_decode: RunningStats::new(),
        };
        assert_eq!(report.throughput(16), 0.0);
        assert_eq!(report.delivery_fraction(), 0.0);
    }
}
