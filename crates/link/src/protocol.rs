//! Protocol configuration and reporting types.
//!
//! The paper's §6 lists "developing a feedback link-layer protocol for
//! rateless spinal codes" as next-step work and §5 notes that "an
//! eventual system using spinal codes (or for that matter any rateless
//! code) ought to use a feedback protocol to achieve the best possible
//! trade-off between throughput and latency." This crate builds that
//! protocol in simulation:
//!
//! * the **sender** streams coded symbols for the frames in its window,
//!   round-robin, and keeps transmitting a frame until its ACK arrives —
//!   it has no channel estimate and never adapts a rate;
//! * the **receiver** attempts decoding as symbols accumulate and sends
//!   feedback per its [`FeedbackMode`]; feedback takes
//!   [`LinkConfig::feedback_delay`] symbol-times to reach the sender and
//!   is itself erased with probability [`FeedbackConfig::loss`] (a BEC
//!   on the reverse link);
//! * with a window of 1 the protocol is stop-and-wait and every frame
//!   wastes ~`feedback_delay` symbols; with a deeper window the sender
//!   fills the ACK gap with other frames' symbols (pipelining), which is
//!   the trade-off the `link_protocol` binary quantifies.
//!
//! Because feedback can be lost, delivery is a *sender-side* event: a
//! frame counts as delivered when the sender learns of the decode and
//! retires it. Receiver-side decodes whose ACK never lands keep costing
//! symbols until a re-ACK gets through (the receiver re-ACKs on every
//! post-decode arrival) or the sender's per-frame symbol budget cuts the
//! frame off — the budget, not the feedback, is what guarantees the
//! protocol terminates.

use crate::fault::FaultPlan;
use spinal_core::decode::BeamConfig;
use spinal_core::frame::Checksum;
use spinal_core::hash::HashFamily;
use spinal_core::map::AnyIqMapper;
use spinal_core::puncture::AnySchedule;
use spinal_core::SpinalError;
use spinal_sim::stats::RunningStats;

/// What the receiver sends on the reverse link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedbackMode {
    /// One ACK per decoded frame, re-ACKed on every later arrival for
    /// that frame (so a lost ACK is repaired by the sender's own
    /// continued transmissions).
    AckOnly,
    /// ACKs plus negative acknowledgements: when the receiver observes a
    /// gap in a frame's symbol sequence numbers it NACKs the first
    /// missing position, and the sender *seeks* its [`spinal_core::session::TxSession`]
    /// back to that position and replays from there.
    Nack,
    /// Periodic cumulative state: every `period` symbol-times the
    /// receiver reports every frame it has decoded but not yet seen
    /// retired. Robust to arbitrary feedback loss (the next snapshot
    /// repeats the news) at the cost of up to one period of extra
    /// latency.
    CumulativeAck {
        /// Symbol-times between snapshots (≥ 1).
        period: u64,
    },
}

/// The reverse (feedback) link and the sender's retry policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeedbackConfig {
    /// What the receiver transmits.
    pub mode: FeedbackMode,
    /// BEC erasure probability on the feedback link: each feedback
    /// message is lost independently with this probability.
    pub loss: f64,
    /// Sender retry timeout in symbol-times: if a frame has been in
    /// flight this long with no feedback about it, the sender rewinds
    /// halfway and replays (guarding against *data*-direction loss the
    /// receiver never saw). `0` disables the timer.
    pub timeout: u64,
    /// Multiplier applied to a frame's timeout after each firing
    /// (≥ 1.0), so a dead link backs off instead of replaying forever.
    pub backoff: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        Self {
            mode: FeedbackMode::AckOnly,
            loss: 0.0,
            timeout: 0,
            backoff: 2.0,
        }
    }
}

impl FeedbackConfig {
    /// Checks the feedback parameters with typed errors.
    ///
    /// # Errors
    ///
    /// [`SpinalError::Probability`] for a loss outside `[0, 1]`,
    /// [`SpinalError::Backoff`] for a backoff below 1.0,
    /// [`SpinalError::AtLeastOne`] for a zero cumulative-ACK period.
    pub fn validate(&self) -> Result<(), SpinalError> {
        if !(0.0..=1.0).contains(&self.loss) {
            return Err(SpinalError::Probability {
                name: "feedback loss",
                value: self.loss,
            });
        }
        if self.backoff.is_nan() || self.backoff < 1.0 {
            return Err(SpinalError::Backoff(self.backoff));
        }
        if let FeedbackMode::CumulativeAck { period: 0 } = self.mode {
            return Err(SpinalError::AtLeastOne {
                name: "cumulative-ACK period",
                value: 0,
            });
        }
        Ok(())
    }
}

/// Configuration of a link simulation.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Frame size in bits (the spinal-code message; includes the CRC
    /// when [`LinkConfig::crc`] is set).
    pub message_bits: u32,
    /// Segment size `k`.
    pub k: u32,
    /// Spine-hash family.
    pub hash: HashFamily,
    /// Constellation mapper.
    pub mapper: AnyIqMapper,
    /// Transmission schedule.
    pub schedule: AnySchedule,
    /// Beam decoder resources at the receiver.
    pub beam: BeamConfig,
    /// Channel SNR in dB.
    pub snr_db: f64,
    /// Feedback propagation time, in symbol-times.
    pub feedback_delay: u64,
    /// Sender window: frames simultaneously in flight (1 = stop-and-wait).
    pub frames_in_flight: u32,
    /// Decode-attempt thinning at the receiver (≥ 1.0; see
    /// `spinal_sim::rateless::RatelessConfig::attempt_growth`).
    pub attempt_growth: f64,
    /// Sender abandons a frame after this many of its symbols
    /// (the §3 "too much time has been spent" escape hatch) — the
    /// liveness guarantee when feedback never arrives.
    pub max_symbols_per_frame: u64,
    /// Receiver pool quarantines a frame's session after this many
    /// decode attempts (its `frames_abandoned` outcome);
    /// `u32::MAX` = unlimited.
    pub max_attempts_per_frame: u32,
    /// The reverse link and retry policy.
    pub feedback: FeedbackConfig,
    /// Fault composition applied to the *data* link (the plan's own
    /// seed is ignored here: the simulation reseeds it per frame from
    /// the run seed, so ensembles stay bit-identical at any worker
    /// count).
    pub faults: FaultPlan,
    /// Frame termination: `Some` uses CRC framing (the practical
    /// receiver — the last `crc.width()` bits of each frame are the
    /// checksum, and a decode that passes the CRC but mismatches the
    /// true payload is counted in `frames_misdecoded`); `None` uses
    /// genie termination (no mis-decodes possible).
    pub crc: Option<Checksum>,
}

impl LinkConfig {
    /// Checks the configuration with typed errors: at least one frame in
    /// flight, attempt growth ≥ 1, valid code parameters, valid feedback
    /// and fault parameters, CRC narrower than the frame.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpinalError`] violated.
    pub fn validate(&self) -> Result<(), SpinalError> {
        if self.frames_in_flight == 0 {
            return Err(SpinalError::Window(self.frames_in_flight));
        }
        if self.attempt_growth.is_nan() || self.attempt_growth < 1.0 {
            return Err(SpinalError::AttemptGrowth(self.attempt_growth));
        }
        if self.max_attempts_per_frame == 0 {
            return Err(SpinalError::AtLeastOne {
                name: "attempt ceiling",
                value: 0,
            });
        }
        self.beam.validate()?;
        self.feedback.validate()?;
        self.faults.validate()?;
        if let Some(ck) = self.crc {
            if self.message_bits <= ck.width() as u32 {
                return Err(SpinalError::CrcWidth {
                    message_bits: self.message_bits,
                    crc_bits: ck.width() as u32,
                });
            }
        }
        spinal_core::params::CodeParams::builder()
            .message_bits(self.message_bits)
            .k(self.k)
            .build()?;
        Ok(())
    }

    /// A small demonstration configuration: 16-bit frames, k = 4, c = 6,
    /// perfect feedback, a clean data link, genie termination.
    pub fn demo(snr_db: f64, feedback_delay: u64, frames_in_flight: u32) -> Self {
        Self {
            message_bits: 16,
            k: 4,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(6),
            schedule: AnySchedule::none(),
            beam: BeamConfig::with_beam(8),
            snr_db,
            feedback_delay,
            frames_in_flight,
            attempt_growth: 1.0,
            max_symbols_per_frame: 4000,
            max_attempts_per_frame: u32::MAX,
            feedback: FeedbackConfig::default(),
            faults: FaultPlan::default(),
            crc: None,
        }
    }
}

/// Results of a link simulation.
///
/// Frame outcomes are disjoint: every requested frame ends exactly one
/// of delivered, exhausted (its symbol budget ran out — the honest
/// "couldn't afford it" outcome), or abandoned (the receiver pool's
/// attempt ceiling quarantined it). `frames_misdecoded` counts delivered
/// frames whose accepted payload differs from the truth (CRC false
/// accepts); it is a subset of `frames_delivered`, and must be zero for
/// an adequate checksum.
#[derive(Clone, Debug)]
pub struct LinkReport {
    /// Frames the application offered.
    pub frames_requested: u32,
    /// Frames the sender retired after learning of their decode.
    pub frames_delivered: u32,
    /// Frames cut off by the per-frame symbol budget (sender-side cut
    /// or receiver `Exhausted`).
    pub frames_exhausted: u32,
    /// Frames quarantined by the receiver pool's attempt ceiling.
    pub frames_abandoned: u32,
    /// Delivered frames whose accepted payload was wrong (CRC false
    /// accept) — silent corruption if ever nonzero.
    pub frames_misdecoded: u32,
    /// Total symbols the sender transmitted (including post-decode,
    /// pre-ACK waste and replays).
    pub symbols_sent: u64,
    /// Of `symbols_sent`, symbols re-sent from a seek/rewind (NACK
    /// replay or timeout).
    pub symbols_replayed: u64,
    /// Feedback messages the receiver sent.
    pub feedback_sent: u64,
    /// Of `feedback_sent`, messages erased by the feedback BEC.
    pub feedback_lost: u64,
    /// ACKs that arrived for frames the sender had already retired.
    pub duplicate_acks: u64,
    /// Per-frame decode latency in symbol-times (first symbol sent →
    /// receiver decoded), over delivered frames.
    pub decode_latency: RunningStats,
    /// Per-frame symbols the receiver actually needed to decode.
    pub symbols_to_decode: RunningStats,
    /// Per-delivered-frame completion latency in symbol-times (first
    /// symbol sent → sender retired the frame), kept whole for
    /// percentile reporting.
    pub completion_latency: Vec<u64>,
}

impl Default for LinkReport {
    fn default() -> Self {
        Self {
            frames_requested: 0,
            frames_delivered: 0,
            frames_exhausted: 0,
            frames_abandoned: 0,
            frames_misdecoded: 0,
            symbols_sent: 0,
            symbols_replayed: 0,
            feedback_sent: 0,
            feedback_lost: 0,
            duplicate_acks: 0,
            // `RunningStats::new()`, not the derived default: the empty
            // accumulator's min/max start at the infinities.
            decode_latency: RunningStats::new(),
            symbols_to_decode: RunningStats::new(),
            completion_latency: Vec::new(),
        }
    }
}

impl LinkReport {
    /// Link throughput in payload bits per transmitted symbol — the
    /// protocol-level figure of merit (coding rate × protocol
    /// efficiency).
    pub fn throughput(&self, message_bits: u32) -> f64 {
        if self.symbols_sent == 0 {
            0.0
        } else {
            f64::from(self.frames_delivered) * f64::from(message_bits) / self.symbols_sent as f64
        }
    }

    /// Goodput in *payload* bits per transmitted symbol: like
    /// [`LinkReport::throughput`] but excluding checksum overhead bits
    /// and mis-decoded frames — what the application actually got.
    pub fn goodput(&self, message_bits: u32, crc: Option<Checksum>) -> f64 {
        if self.symbols_sent == 0 {
            return 0.0;
        }
        let payload_bits = f64::from(message_bits) - crc.map_or(0.0, |ck| ck.width() as f64);
        let good = f64::from(self.frames_delivered.saturating_sub(self.frames_misdecoded));
        good * payload_bits / self.symbols_sent as f64
    }

    /// Fraction of frames delivered.
    pub fn delivery_fraction(&self) -> f64 {
        if self.frames_requested == 0 {
            0.0
        } else {
            f64::from(self.frames_delivered) / f64::from(self.frames_requested)
        }
    }

    /// Nearest-rank percentile of the completion latency (`q` in
    /// `[0, 1]`, e.g. `0.5` and `0.99`); `None` until a frame completes.
    /// Delegates to [`spinal_sim::stats::percentile_nearest_rank`] — the
    /// one percentile definition the workspace shares, so this report
    /// and the serving benchmarks agree on small samples.
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        let mut sorted = self.completion_latency.clone();
        spinal_sim::stats::percentile_nearest_rank(&mut sorted, q)
    }

    /// Folds another report into this one (ensemble accumulation).
    pub fn merge(&mut self, o: &LinkReport) {
        self.frames_requested += o.frames_requested;
        self.frames_delivered += o.frames_delivered;
        self.frames_exhausted += o.frames_exhausted;
        self.frames_abandoned += o.frames_abandoned;
        self.frames_misdecoded += o.frames_misdecoded;
        self.symbols_sent += o.symbols_sent;
        self.symbols_replayed += o.symbols_replayed;
        self.feedback_sent += o.feedback_sent;
        self.feedback_lost += o.feedback_lost;
        self.duplicate_acks += o.duplicate_acks;
        self.decode_latency.merge(&o.decode_latency);
        self.symbols_to_decode.merge(&o.symbols_to_decode);
        self.completion_latency
            .extend_from_slice(&o.completion_latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LinkFault;

    #[test]
    fn demo_config_is_valid() {
        let cfg = LinkConfig::demo(10.0, 16, 4);
        assert_eq!(cfg.message_bits % cfg.k, 0);
        assert!(cfg.attempt_growth >= 1.0);
        assert_eq!(cfg.frames_in_flight, 4);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_feedback_and_faults() {
        let mut cfg = LinkConfig::demo(10.0, 16, 4);
        cfg.feedback.loss = 1.5;
        assert!(matches!(
            cfg.validate().unwrap_err(),
            SpinalError::Probability {
                name: "feedback loss",
                ..
            }
        ));
        cfg.feedback.loss = 0.1;
        cfg.feedback.backoff = 0.5;
        assert_eq!(cfg.validate().unwrap_err(), SpinalError::Backoff(0.5));
        cfg.feedback.backoff = 1.5;
        cfg.feedback.mode = FeedbackMode::CumulativeAck { period: 0 };
        assert!(matches!(
            cfg.validate().unwrap_err(),
            SpinalError::AtLeastOne {
                name: "cumulative-ACK period",
                ..
            }
        ));
        cfg.feedback.mode = FeedbackMode::Nack;
        cfg.faults = FaultPlan::new(0).with(LinkFault::Drop { p: -0.1 });
        assert!(matches!(
            cfg.validate().unwrap_err(),
            SpinalError::Probability {
                name: "link fault",
                ..
            }
        ));
        cfg.faults = FaultPlan::default();
        cfg.crc = Some(Checksum::Crc16);
        assert_eq!(
            cfg.validate().unwrap_err(),
            SpinalError::CrcWidth {
                message_bits: 16,
                crc_bits: 16
            }
        );
        cfg.message_bits = 32;
        cfg.validate().unwrap();
    }

    #[test]
    fn report_throughput_math() {
        let report = LinkReport {
            frames_requested: 10,
            frames_delivered: 8,
            frames_exhausted: 2,
            symbols_sent: 64,
            ..LinkReport::default()
        };
        assert!((report.throughput(16) - 8.0 * 16.0 / 64.0).abs() < 1e-12);
        assert!((report.delivery_fraction() - 0.8).abs() < 1e-12);
        assert!((report.goodput(16, None) - report.throughput(16)).abs() < 1e-12);
        // CRC overhead and mis-decodes are excluded from goodput.
        let mut crc_report = report.clone();
        crc_report.frames_misdecoded = 1;
        let g = crc_report.goodput(32, Some(Checksum::Crc16));
        assert!((g - 7.0 * 16.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let report = LinkReport::default();
        assert_eq!(report.throughput(16), 0.0);
        assert_eq!(report.delivery_fraction(), 0.0);
        assert_eq!(report.latency_percentile(0.5), None);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let report = LinkReport {
            frames_requested: 5,
            frames_delivered: 5,
            completion_latency: vec![40, 10, 30, 20, 50],
            ..LinkReport::default()
        };
        assert_eq!(report.latency_percentile(0.0), Some(10));
        assert_eq!(report.latency_percentile(0.5), Some(30));
        assert_eq!(report.latency_percentile(0.99), Some(50));
        assert_eq!(report.latency_percentile(1.0), Some(50));
    }

    #[test]
    fn reports_merge_componentwise() {
        let mut a = LinkReport {
            frames_requested: 2,
            frames_delivered: 1,
            frames_exhausted: 1,
            symbols_sent: 100,
            symbols_replayed: 10,
            feedback_sent: 3,
            feedback_lost: 1,
            duplicate_acks: 1,
            completion_latency: vec![12],
            ..LinkReport::default()
        };
        let b = LinkReport {
            frames_requested: 3,
            frames_delivered: 2,
            frames_abandoned: 1,
            symbols_sent: 50,
            completion_latency: vec![7, 9],
            ..LinkReport::default()
        };
        a.merge(&b);
        assert_eq!(a.frames_requested, 5);
        assert_eq!(a.frames_delivered, 3);
        assert_eq!(a.frames_exhausted, 1);
        assert_eq!(a.frames_abandoned, 1);
        assert_eq!(a.symbols_sent, 150);
        assert_eq!(a.completion_latency, vec![12, 7, 9]);
    }
}
