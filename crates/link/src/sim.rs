//! The symbol-granularity link simulation engine.
//!
//! Time advances one transmitted symbol per tick. Each tick:
//!
//! 1. ACKs whose propagation delay has elapsed are delivered; their
//!    window slots are refilled with fresh frames, if any remain.
//! 2. The sender picks the next un-ACKed frame round-robin and transmits
//!    its next scheduled symbol through the (shared) AWGN channel.
//! 3. If that frame is not yet decoded, the receiver records the symbol
//!    and — per the thinned attempt schedule — runs a decode attempt. On
//!    success it timestamps the ACK `feedback_delay` ticks into the
//!    future. Symbols arriving after decode are protocol waste, which is
//!    exactly what the window-depth experiment measures.

use crate::protocol::{LinkConfig, LinkReport};
use spinal_channel::{AwgnChannel, Channel, Rng};
use spinal_core::decode::{BeamDecoder, DecoderScratch, Observations};
use spinal_core::hash::AnyHash;
use spinal_core::map::AnyIqMapper;
use spinal_core::params::CodeParams;
use spinal_core::puncture::PunctureSchedule;
use spinal_core::symbol::{IqSymbol, Slot};
use spinal_core::{AwgnCost, BitVec, Encoder};
use spinal_sim::engine::{Accumulate, Scenario, SimEngine, Trial};
use spinal_sim::stats::{derive_seed, RunningStats};

/// One frame in flight.
struct ActiveFrame {
    message: BitVec,
    encoder: Encoder<AnyHash, AnyIqMapper>,
    decoder: BeamDecoder<AnyHash, AnyIqMapper, AwgnCost>,
    obs: Observations<IqSymbol>,
    /// Pending symbols of the current sub-pass (batched
    /// [`Encoder::subpass_into`] refills; `queue_pos` walks it).
    queue: Vec<(Slot, IqSymbol)>,
    queue_pos: usize,
    slot_buf: Vec<Slot>,
    next_subpass: u32,
    sent: u64,
    next_attempt: u64,
    first_sent_at: Option<u64>,
    decoded_at: Option<u64>,
    ack_due: Option<u64>,
}

impl ActiveFrame {
    fn new(cfg: &LinkConfig, seed: u64, frame_idx: u32) -> Self {
        let code_seed = derive_seed(seed, 60, u64::from(frame_idx));
        let msg_seed = derive_seed(seed, 61, u64::from(frame_idx));
        let params = CodeParams::builder()
            .message_bits(cfg.message_bits)
            .k(cfg.k)
            .seed(code_seed)
            .build()
            .expect("invalid link configuration");
        let hash = AnyHash::new(cfg.hash, code_seed);
        let mut rng = Rng::seed_from(msg_seed);
        let message: BitVec = (0..cfg.message_bits).map(|_| rng.bit()).collect();
        let encoder = Encoder::new(&params, hash, cfg.mapper.clone(), &message)
            .expect("message length matches params");
        let decoder = BeamDecoder::new(&params, hash, cfg.mapper.clone(), AwgnCost, cfg.beam);
        let obs = Observations::new(params.n_segments());
        Self {
            message,
            encoder,
            decoder,
            obs,
            queue: Vec::new(),
            queue_pos: 0,
            slot_buf: Vec::new(),
            next_subpass: 0,
            sent: 0,
            next_attempt: 1,
            first_sent_at: None,
            decoded_at: None,
            ack_due: None,
        }
    }

    /// The next symbol this frame's sender would transmit.
    fn next_symbol(&mut self, schedule: &impl PunctureSchedule) -> (Slot, IqSymbol) {
        while self.queue_pos >= self.queue.len() {
            self.encoder.subpass_into(
                schedule,
                self.next_subpass,
                &mut self.slot_buf,
                &mut self.queue,
            );
            self.queue_pos = 0;
            self.next_subpass += 1;
        }
        let sym = self.queue[self.queue_pos];
        self.queue_pos += 1;
        sym
    }
}

/// Runs the link protocol for `n_frames` frames and reports.
pub fn simulate_link(cfg: &LinkConfig, n_frames: u32, seed: u64) -> LinkReport {
    assert!(
        cfg.frames_in_flight >= 1,
        "window must hold at least one frame"
    );
    assert!(cfg.attempt_growth >= 1.0, "attempt_growth must be >= 1");
    let mut channel = AwgnChannel::from_snr_db(cfg.snr_db, derive_seed(seed, 62, 0));

    let mut report = LinkReport {
        frames_requested: n_frames,
        frames_delivered: 0,
        frames_aborted: 0,
        symbols_sent: 0,
        decode_latency: RunningStats::new(),
        symbols_to_decode: RunningStats::new(),
    };

    let mut next_frame_idx: u32 = 0;
    let mut window: Vec<ActiveFrame> = Vec::new();
    while window.len() < cfg.frames_in_flight as usize && next_frame_idx < n_frames {
        window.push(ActiveFrame::new(cfg, seed, next_frame_idx));
        next_frame_idx += 1;
    }

    let mut now: u64 = 0;
    let mut rr: usize = 0; // round-robin pointer
                           // One scratch + result pair serves every frame's decode attempts.
    let mut scratch = DecoderScratch::new();
    let mut result = spinal_core::DecodeResult::default();

    while !window.is_empty() {
        // 1. Deliver due ACKs, refill the window.
        let mut i = 0;
        while i < window.len() {
            if window[i].ack_due.is_some_and(|due| due <= now) {
                let frame = window.swap_remove(i);
                report.frames_delivered += 1;
                let decoded_at = frame.decoded_at.expect("ACK implies decode");
                let first = frame.first_sent_at.expect("decoded implies sent");
                report.decode_latency.push((decoded_at - first) as f64);
                if next_frame_idx < n_frames {
                    window.push(ActiveFrame::new(cfg, seed, next_frame_idx));
                    next_frame_idx += 1;
                }
            } else {
                i += 1;
            }
        }
        if window.is_empty() {
            break;
        }

        // 2. Round-robin transmit one symbol.
        rr %= window.len();
        let frame = &mut window[rr];
        rr += 1;
        let (slot, x) = frame.next_symbol(&cfg.schedule);
        let y = channel.transmit(x);
        report.symbols_sent += 1;
        frame.sent += 1;
        frame.first_sent_at.get_or_insert(now);

        // 3. Receiver side (only until the frame decodes).
        if frame.decoded_at.is_none() {
            frame.obs.push(slot, y);
            if frame.sent >= frame.next_attempt {
                frame
                    .decoder
                    .decode_into(&frame.obs, &mut scratch, &mut result);
                if result.message == frame.message {
                    frame.decoded_at = Some(now);
                    frame.ack_due = Some(now + cfg.feedback_delay);
                    report.symbols_to_decode.push(frame.sent as f64);
                } else {
                    frame.next_attempt = (frame.sent + 1)
                        .max((frame.sent as f64 * cfg.attempt_growth).ceil() as u64);
                }
            }
            // Abort hopeless frames.
            if frame.decoded_at.is_none() && frame.sent >= cfg.max_symbols_per_frame {
                let idx = rr - 1;
                window.swap_remove(idx);
                report.frames_aborted += 1;
                if next_frame_idx < n_frames {
                    window.push(ActiveFrame::new(cfg, seed, next_frame_idx));
                    next_frame_idx += 1;
                }
            }
        }
        now += 1;
    }

    report
}

impl Accumulate for LinkReport {
    fn merge(&mut self, o: Self) {
        self.frames_requested += o.frames_requested;
        self.frames_delivered += o.frames_delivered;
        self.frames_aborted += o.frames_aborted;
        self.symbols_sent += o.symbols_sent;
        self.decode_latency.merge(&o.decode_latency);
        self.symbols_to_decode.merge(&o.symbols_to_decode);
    }
}

/// One independent link run (a "replication") per engine trial.
struct LinkScenario<'a> {
    cfg: &'a LinkConfig,
    n_frames: u32,
}

impl Scenario for LinkScenario<'_> {
    type Worker = ();
    type Acc = LinkReport;

    fn make_worker(&self) {}

    fn empty_acc(&self) -> LinkReport {
        LinkReport {
            frames_requested: 0,
            frames_delivered: 0,
            frames_aborted: 0,
            symbols_sent: 0,
            decode_latency: RunningStats::new(),
            symbols_to_decode: RunningStats::new(),
        }
    }

    fn run_trial(&self, trial: Trial, _w: &mut (), acc: &mut LinkReport) {
        acc.merge(simulate_link(self.cfg, self.n_frames, trial.seed));
    }
}

/// Runs `replications` independent copies of the link simulation on
/// `engine` (one replication per trial, counter-based seeds) and merges
/// their reports — the cheap way to tighten the latency/throughput
/// confidence intervals of a protocol operating point. Statistics are
/// bit-identical for any worker count.
pub fn simulate_link_ensemble(
    cfg: &LinkConfig,
    n_frames: u32,
    replications: u32,
    seed: u64,
    engine: &SimEngine,
) -> LinkReport {
    engine.run(
        &LinkScenario { cfg, n_frames },
        u64::from(replications),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_high_snr_approaches_code_rate() {
        // With no feedback delay the protocol adds no overhead: the
        // throughput equals the code's achieved rate (~k at high SNR).
        let cfg = LinkConfig::demo(30.0, 0, 1);
        let report = simulate_link(&cfg, 20, 1);
        assert_eq!(report.frames_delivered, 20);
        assert_eq!(report.frames_aborted, 0);
        let tput = report.throughput(cfg.message_bits);
        assert!(
            (tput - 4.0).abs() < 0.4,
            "zero-delay throughput {tput}, expected ~k = 4"
        );
    }

    #[test]
    fn stop_and_wait_pays_the_delay() {
        // W = 1: each frame costs N + D symbols. At 30 dB N ≈ 4, so
        // D = 16 should cut throughput to ~16/(4+16) = 0.8 bits/symbol.
        let fast = simulate_link(&LinkConfig::demo(30.0, 0, 1), 20, 2);
        let slow = simulate_link(&LinkConfig::demo(30.0, 16, 1), 20, 2);
        let (tf, ts) = (fast.throughput(16), slow.throughput(16));
        assert!(
            ts < tf * 0.45,
            "delay must hurt stop-and-wait: {tf} -> {ts}"
        );
        assert!((ts - 0.8).abs() < 0.3, "expected ~0.8, got {ts}");
    }

    #[test]
    fn pipelining_recovers_the_delay_loss() {
        // A deep window fills the ACK gap with other frames' symbols.
        let sw = simulate_link(&LinkConfig::demo(30.0, 16, 1), 24, 3);
        let pipe = simulate_link(&LinkConfig::demo(30.0, 16, 6), 24, 3);
        let (t1, t6) = (sw.throughput(16), pipe.throughput(16));
        assert!(
            t6 > t1 * 1.5,
            "pipelining must beat stop-and-wait: W=1 {t1}, W=6 {t6}"
        );
    }

    #[test]
    fn all_frames_delivered_at_reasonable_snr() {
        let report = simulate_link(&LinkConfig::demo(10.0, 8, 3), 15, 4);
        assert_eq!(report.frames_delivered, 15);
        assert_eq!(report.delivery_fraction(), 1.0);
        assert!(report.symbols_to_decode.mean() >= 4.0);
        assert!(report.decode_latency.count() == 15);
    }

    #[test]
    fn hopeless_snr_aborts_frames() {
        let mut cfg = LinkConfig::demo(-25.0, 4, 2);
        cfg.max_symbols_per_frame = 64;
        let report = simulate_link(&cfg, 6, 5);
        assert!(report.frames_aborted > 0, "expected aborts at -25 dB");
        assert_eq!(
            report.frames_aborted + report.frames_delivered,
            6,
            "every frame accounted for"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LinkConfig::demo(12.0, 8, 2);
        let a = simulate_link(&cfg, 10, 7);
        let b = simulate_link(&cfg, 10, 7);
        assert_eq!(a.symbols_sent, b.symbols_sent);
        assert_eq!(a.frames_delivered, b.frames_delivered);
    }

    #[test]
    fn zero_frames_is_empty_report() {
        let report = simulate_link(&LinkConfig::demo(10.0, 4, 2), 0, 0);
        assert_eq!(report.symbols_sent, 0);
        assert_eq!(report.frames_delivered, 0);
    }

    #[test]
    fn ensemble_is_bit_identical_across_worker_counts() {
        let cfg = LinkConfig::demo(15.0, 4, 2);
        let serial = simulate_link_ensemble(&cfg, 4, 6, 21, &SimEngine::serial().chunk_trials(2));
        let sharded =
            simulate_link_ensemble(&cfg, 4, 6, 21, &SimEngine::with_workers(3).chunk_trials(2));
        assert_eq!(serial.frames_delivered, sharded.frames_delivered);
        assert_eq!(serial.symbols_sent, sharded.symbols_sent);
        assert_eq!(
            serial.decode_latency.mean().to_bits(),
            sharded.decode_latency.mean().to_bits()
        );
        assert_eq!(serial.frames_requested, 24);
    }

    #[test]
    fn latency_grows_with_window_under_load() {
        // Sharing the channel across W frames stretches each frame's
        // decode latency even as throughput improves.
        let w1 = simulate_link(&LinkConfig::demo(20.0, 32, 1), 16, 9);
        let w4 = simulate_link(&LinkConfig::demo(20.0, 32, 4), 16, 9);
        assert!(
            w4.decode_latency.mean() > w1.decode_latency.mean(),
            "W=4 latency {} !> W=1 latency {}",
            w4.decode_latency.mean(),
            w1.decode_latency.mean()
        );
    }
}
