//! The symbol-granularity link simulation engine.
//!
//! Time advances one transmitted symbol per tick. Each tick:
//!
//! 1. ACKs whose propagation delay has elapsed are delivered; their
//!    window slots are refilled with fresh frames, if any remain.
//! 2. The sender picks the next un-ACKed frame round-robin and transmits
//!    its next scheduled symbol through the (shared) AWGN channel.
//! 3. If that frame is not yet decoded, the receiver records the symbol
//!    and — per the thinned attempt schedule — runs a decode attempt. On
//!    success it timestamps the ACK `feedback_delay` ticks into the
//!    future. Symbols arriving after decode are protocol waste, which is
//!    exactly what the window-depth experiment measures.

use crate::protocol::{LinkConfig, LinkReport};
use spinal_channel::{AwgnChannel, Channel, Rng};
use spinal_core::frame::AnyTerminator;
use spinal_core::hash::AnyHash;
use spinal_core::map::AnyIqMapper;
use spinal_core::params::CodeParams;
use spinal_core::puncture::AnySchedule;
use spinal_core::sched::{MultiConfig, MultiDecoder, SessionEvent, SessionId};
use spinal_core::session::{Poll, RxConfig, RxSession, TxSession};
use spinal_core::{AwgnCost, BitVec, Encoder, SpinalError};
use spinal_sim::engine::{Accumulate, Scenario, SimEngine, Trial};
use spinal_sim::stats::{derive_seed, RunningStats};

/// The receiver pool type: every in-flight frame's session lives in one
/// [`MultiDecoder`], so the window's same-shape sessions decode through
/// a single shared scratch (fused cohort sweeps) instead of one cold
/// scratch per frame.
type RxPool = MultiDecoder<AnyHash, AnyIqMapper, AwgnCost, AnySchedule>;

/// One frame in flight: the sender session, the pool id of its receiver
/// session, and protocol timestamps. The receiver's checkpoint store
/// makes the per-symbol decode attempts incremental — under
/// `NoPuncture`, a symbol at spine position `t` resumes the tree sweep
/// at level `t` instead of level 0.
struct ActiveFrame {
    message: BitVec,
    tx: TxSession<AnyHash, AnyIqMapper, AnySchedule>,
    rx_id: SessionId,
    first_sent_at: Option<u64>,
    decoded_at: Option<u64>,
    ack_due: Option<u64>,
}

impl ActiveFrame {
    fn new(
        cfg: &LinkConfig,
        pool: &mut RxPool,
        seed: u64,
        frame_idx: u32,
    ) -> Result<Self, SpinalError> {
        let code_seed = derive_seed(seed, 60, u64::from(frame_idx));
        let msg_seed = derive_seed(seed, 61, u64::from(frame_idx));
        let params = CodeParams::builder()
            .message_bits(cfg.message_bits)
            .k(cfg.k)
            .seed(code_seed)
            .build()?;
        let hash = AnyHash::new(cfg.hash, code_seed);
        let mut rng = Rng::seed_from(msg_seed);
        let message: BitVec = (0..cfg.message_bits).map(|_| rng.bit()).collect();
        let tx = TxSession::new(
            Encoder::new(&params, hash, cfg.mapper.clone(), &message)?,
            cfg.schedule.clone(),
        );
        let rx_id = pool.insert(code_rx(cfg, &params, hash, &message)?);
        Ok(Self {
            message,
            tx,
            rx_id,
            first_sent_at: None,
            decoded_at: None,
            ack_due: None,
        })
    }
}

/// Builds one frame's receiver session (genie termination on the known
/// frame payload — the protocol models an ideal frame check).
fn code_rx(
    cfg: &LinkConfig,
    params: &CodeParams,
    hash: AnyHash,
    message: &BitVec,
) -> Result<RxSession<AnyHash, AnyIqMapper, AwgnCost, AnySchedule>, SpinalError> {
    let decoder = spinal_core::decode::BeamDecoder::new(
        params,
        hash,
        cfg.mapper.clone(),
        AwgnCost,
        cfg.beam,
    )?;
    RxSession::new(
        decoder,
        cfg.schedule.clone(),
        AnyTerminator::genie(message.clone()),
        RxConfig {
            beam: cfg.beam,
            max_symbols: cfg.max_symbols_per_frame,
            attempt_growth: cfg.attempt_growth,
        },
    )
}

/// Runs the link protocol for `n_frames` frames and reports.
///
/// # Errors
///
/// Returns a typed [`SpinalError`] for an invalid configuration
/// (window, attempt growth, or code parameters) without running any
/// symbol of simulation.
pub fn simulate_link(
    cfg: &LinkConfig,
    n_frames: u32,
    seed: u64,
) -> Result<LinkReport, SpinalError> {
    cfg.validate()?;
    let mut channel = AwgnChannel::from_snr_db(cfg.snr_db, derive_seed(seed, 62, 0));

    let mut report = LinkReport {
        frames_requested: n_frames,
        frames_delivered: 0,
        frames_aborted: 0,
        symbols_sent: 0,
        decode_latency: RunningStats::new(),
        symbols_to_decode: RunningStats::new(),
    };

    // All in-flight receiver sessions share one decoder pool: the
    // window is a same-shape cohort, so every decode attempt runs
    // through the pool's single hot scratch.
    let mut pool = RxPool::new(MultiConfig::default());
    let mut events: Vec<SessionEvent> = Vec::new();
    let mut next_frame_idx: u32 = 0;
    let mut window: Vec<ActiveFrame> = Vec::new();
    while window.len() < cfg.frames_in_flight as usize && next_frame_idx < n_frames {
        window.push(ActiveFrame::new(cfg, &mut pool, seed, next_frame_idx)?);
        next_frame_idx += 1;
    }

    let mut now: u64 = 0;
    let mut rr: usize = 0; // round-robin pointer

    while !window.is_empty() {
        // 1. Deliver due ACKs, refill the window.
        let mut i = 0;
        while i < window.len() {
            if window[i].ack_due.is_some_and(|due| due <= now) {
                let frame = window.swap_remove(i);
                pool.remove(frame.rx_id).expect("delivered frame is live");
                report.frames_delivered += 1;
                let decoded_at = frame.decoded_at.expect("ACK implies decode");
                let first = frame.first_sent_at.expect("decoded implies sent");
                report.decode_latency.push((decoded_at - first) as f64);
                if next_frame_idx < n_frames {
                    window.push(ActiveFrame::new(cfg, &mut pool, seed, next_frame_idx)?);
                    next_frame_idx += 1;
                }
            } else {
                i += 1;
            }
        }
        if window.is_empty() {
            break;
        }

        // 2. Round-robin transmit one symbol.
        rr %= window.len();
        let frame = &mut window[rr];
        rr += 1;
        let (_slot, x) = frame.tx.next_symbol();
        let y = channel.transmit(x);
        report.symbols_sent += 1;
        frame.first_sent_at.get_or_insert(now);

        // 3. Receiver side (only until the frame decodes). The pool
        // labels the symbol and its drive runs the (incremental,
        // thinned) decode attempt, reporting acceptance or budget
        // exhaustion through the session's event.
        if frame.decoded_at.is_none() {
            pool.ingest(frame.rx_id, &[y])
                .expect("frame still listening");
            pool.drive_into(&mut events);
            debug_assert_eq!(events.len(), 1, "one active session per tick");
            match events[0].poll {
                Poll::NeedMore { .. } => {}
                Poll::Decoded { symbols_used, .. } => {
                    debug_assert_eq!(
                        pool.get(frame.rx_id).expect("frame session live").payload(),
                        Some(&frame.message)
                    );
                    frame.decoded_at = Some(now);
                    frame.ack_due = Some(now + cfg.feedback_delay);
                    report.symbols_to_decode.push(symbols_used as f64);
                }
                Poll::Exhausted { .. } => {
                    // Abort hopeless frames.
                    let idx = rr - 1;
                    let frame = window.swap_remove(idx);
                    pool.remove(frame.rx_id).expect("aborted frame is live");
                    report.frames_aborted += 1;
                    if next_frame_idx < n_frames {
                        window.push(ActiveFrame::new(cfg, &mut pool, seed, next_frame_idx)?);
                        next_frame_idx += 1;
                    }
                }
            }
        }
        now += 1;
    }

    Ok(report)
}

impl Accumulate for LinkReport {
    fn merge(&mut self, o: Self) {
        self.frames_requested += o.frames_requested;
        self.frames_delivered += o.frames_delivered;
        self.frames_aborted += o.frames_aborted;
        self.symbols_sent += o.symbols_sent;
        self.decode_latency.merge(&o.decode_latency);
        self.symbols_to_decode.merge(&o.symbols_to_decode);
    }
}

/// One independent link run (a "replication") per engine trial.
struct LinkScenario<'a> {
    cfg: &'a LinkConfig,
    n_frames: u32,
}

impl Scenario for LinkScenario<'_> {
    type Worker = ();
    type Acc = LinkReport;

    fn make_worker(&self) {}

    fn empty_acc(&self) -> LinkReport {
        LinkReport {
            frames_requested: 0,
            frames_delivered: 0,
            frames_aborted: 0,
            symbols_sent: 0,
            decode_latency: RunningStats::new(),
            symbols_to_decode: RunningStats::new(),
        }
    }

    fn run_trial(&self, trial: Trial, _w: &mut (), acc: &mut LinkReport) {
        acc.merge(
            simulate_link(self.cfg, self.n_frames, trial.seed)
                .expect("config validated by simulate_link_ensemble"),
        );
    }
}

/// Runs `replications` independent copies of the link simulation on
/// `engine` (one replication per trial, counter-based seeds) and merges
/// their reports — the cheap way to tighten the latency/throughput
/// confidence intervals of a protocol operating point. Statistics are
/// bit-identical for any worker count.
pub fn simulate_link_ensemble(
    cfg: &LinkConfig,
    n_frames: u32,
    replications: u32,
    seed: u64,
    engine: &SimEngine,
) -> Result<LinkReport, SpinalError> {
    cfg.validate()?;
    Ok(engine.run(
        &LinkScenario { cfg, n_frames },
        u64::from(replications),
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_high_snr_approaches_code_rate() {
        // With no feedback delay the protocol adds no overhead: the
        // throughput equals the code's achieved rate (~k at high SNR).
        let cfg = LinkConfig::demo(30.0, 0, 1);
        let report = simulate_link(&cfg, 20, 1).unwrap();
        assert_eq!(report.frames_delivered, 20);
        assert_eq!(report.frames_aborted, 0);
        let tput = report.throughput(cfg.message_bits);
        assert!(
            (tput - 4.0).abs() < 0.4,
            "zero-delay throughput {tput}, expected ~k = 4"
        );
    }

    #[test]
    fn stop_and_wait_pays_the_delay() {
        // W = 1: each frame costs N + D symbols. At 30 dB N ≈ 4, so
        // D = 16 should cut throughput to ~16/(4+16) = 0.8 bits/symbol.
        let fast = simulate_link(&LinkConfig::demo(30.0, 0, 1), 20, 2).unwrap();
        let slow = simulate_link(&LinkConfig::demo(30.0, 16, 1), 20, 2).unwrap();
        let (tf, ts) = (fast.throughput(16), slow.throughput(16));
        assert!(
            ts < tf * 0.45,
            "delay must hurt stop-and-wait: {tf} -> {ts}"
        );
        assert!((ts - 0.8).abs() < 0.3, "expected ~0.8, got {ts}");
    }

    #[test]
    fn pipelining_recovers_the_delay_loss() {
        // A deep window fills the ACK gap with other frames' symbols.
        let sw = simulate_link(&LinkConfig::demo(30.0, 16, 1), 24, 3).unwrap();
        let pipe = simulate_link(&LinkConfig::demo(30.0, 16, 6), 24, 3).unwrap();
        let (t1, t6) = (sw.throughput(16), pipe.throughput(16));
        assert!(
            t6 > t1 * 1.5,
            "pipelining must beat stop-and-wait: W=1 {t1}, W=6 {t6}"
        );
    }

    #[test]
    fn all_frames_delivered_at_reasonable_snr() {
        let report = simulate_link(&LinkConfig::demo(10.0, 8, 3), 15, 4).unwrap();
        assert_eq!(report.frames_delivered, 15);
        assert_eq!(report.delivery_fraction(), 1.0);
        assert!(report.symbols_to_decode.mean() >= 4.0);
        assert!(report.decode_latency.count() == 15);
    }

    #[test]
    fn hopeless_snr_aborts_frames() {
        let mut cfg = LinkConfig::demo(-25.0, 4, 2);
        cfg.max_symbols_per_frame = 64;
        let report = simulate_link(&cfg, 6, 5).unwrap();
        assert!(report.frames_aborted > 0, "expected aborts at -25 dB");
        assert_eq!(
            report.frames_aborted + report.frames_delivered,
            6,
            "every frame accounted for"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LinkConfig::demo(12.0, 8, 2);
        let a = simulate_link(&cfg, 10, 7).unwrap();
        let b = simulate_link(&cfg, 10, 7).unwrap();
        assert_eq!(a.symbols_sent, b.symbols_sent);
        assert_eq!(a.frames_delivered, b.frames_delivered);
    }

    #[test]
    fn zero_frames_is_empty_report() {
        let report = simulate_link(&LinkConfig::demo(10.0, 4, 2), 0, 0).unwrap();
        assert_eq!(report.symbols_sent, 0);
        assert_eq!(report.frames_delivered, 0);
    }

    #[test]
    fn ensemble_is_bit_identical_across_worker_counts() {
        let cfg = LinkConfig::demo(15.0, 4, 2);
        let serial =
            simulate_link_ensemble(&cfg, 4, 6, 21, &SimEngine::serial().chunk_trials(2)).unwrap();
        let sharded =
            simulate_link_ensemble(&cfg, 4, 6, 21, &SimEngine::with_workers(3).chunk_trials(2))
                .unwrap();
        assert_eq!(serial.frames_delivered, sharded.frames_delivered);
        assert_eq!(serial.symbols_sent, sharded.symbols_sent);
        assert_eq!(
            serial.decode_latency.mean().to_bits(),
            sharded.decode_latency.mean().to_bits()
        );
        assert_eq!(serial.frames_requested, 24);
    }

    #[test]
    fn latency_grows_with_window_under_load() {
        // Sharing the channel across W frames stretches each frame's
        // decode latency even as throughput improves.
        let w1 = simulate_link(&LinkConfig::demo(20.0, 32, 1), 16, 9).unwrap();
        let w4 = simulate_link(&LinkConfig::demo(20.0, 32, 4), 16, 9).unwrap();
        assert!(
            w4.decode_latency.mean() > w1.decode_latency.mean(),
            "W=4 latency {} !> W=1 latency {}",
            w4.decode_latency.mean(),
            w1.decode_latency.mean()
        );
    }
}
