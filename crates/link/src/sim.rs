//! The symbol-granularity link simulation engine.
//!
//! Time advances one transmitted symbol per tick. Each tick:
//!
//! 1. Feedback messages whose propagation delay has elapsed are
//!    delivered to the sender: ACKs (individual or cumulative) retire
//!    frames — delivery is a *sender-side* event — and NACKs seek the
//!    frame's [`TxSession`] back to the first missing position for
//!    replay. Retired slots are refilled with fresh frames, if any
//!    remain.
//! 2. The sender picks the next frame round-robin (firing its retry
//!    timeout first, if armed and expired) and transmits that frame's
//!    next stream symbol — a fresh one at the frontier, or a replayed
//!    one below it — through the shared AWGN channel and then through
//!    the frame's seeded [`FaultStream`], which may drop it, duplicate
//!    it, corrupt it, mislabel it, or hold it for later ticks.
//! 3. Whatever the fault stream delivers reaches the receiver. For an
//!    undecoded frame the symbols are ingested slot-labelled and the
//!    pool runs the (incremental, thinned) decode attempt; for a decoded
//!    frame each arrival triggers a re-ACK (how a lost ACK heals in
//!    [`FeedbackMode::AckOnly`]). Feedback sends are themselves erased
//!    with probability [`FeedbackConfig::loss`].
//!
//! Liveness never depends on feedback: the per-frame symbol budget
//! [`LinkConfig::max_symbols_per_frame`] cuts any frame the sender has
//! overspent on, so even a total feedback blackout (loss = 1.0)
//! terminates with every frame accounted for — delivered, exhausted, or
//! abandoned.
//!
//! Every random decision — frame payloads, channel noise, link faults,
//! feedback erasures — is drawn from counter-derived seed streams, so a
//! run is a pure function of `(cfg, n_frames, seed)` and ensembles are
//! bit-identical at any worker count.

use crate::fault::{unit, Delivery, FaultStream};
use crate::protocol::{FeedbackConfig, FeedbackMode, LinkConfig, LinkReport};
use spinal_channel::{AwgnChannel, Channel, Rng};
use spinal_core::frame::{frame_encode, AnyTerminator};
use spinal_core::hash::AnyHash;
use spinal_core::map::AnyIqMapper;
use spinal_core::params::CodeParams;
use spinal_core::puncture::AnySchedule;
use spinal_core::sched::{MultiConfig, MultiDecoder, SessionEvent, SessionId, SessionOutcome};
use spinal_core::session::{Poll, RxConfig, RxSession, TxPosition, TxSession};
use spinal_core::symbol::{IqSymbol, Slot};
use spinal_core::{AwgnCost, BitVec, Encoder, SpinalError};
use spinal_sim::engine::{Accumulate, Scenario, SimEngine, Trial};
use spinal_sim::stats::derive_seed;

/// Seed-stream labels (`derive_seed(seed, LABEL, index)`): per-frame
/// code seeds, per-frame payloads, channel noise, per-frame fault
/// streams, feedback erasures.
const STREAM_CODE: u64 = 60;
const STREAM_MSG: u64 = 61;
const STREAM_CHANNEL: u64 = 62;
const STREAM_FAULT: u64 = 63;
const STREAM_FEEDBACK: u64 = 64;

/// The receiver pool type: every in-flight frame's session lives in one
/// [`MultiDecoder`], so the window's same-shape sessions decode through
/// a single shared scratch (fused cohort sweeps) instead of one cold
/// scratch per frame.
type RxPool = MultiDecoder<AnyHash, AnyIqMapper, AwgnCost, AnySchedule>;

/// One frame in flight: sender session and replay log, the pool id of
/// its receiver session, its fault stream, and both sides' protocol
/// state. The receiver's checkpoint store makes the per-symbol decode
/// attempts incremental — under `NoPuncture`, a symbol at spine
/// position `t` resumes the tree sweep at level `t` instead of level 0.
struct LinkFrame {
    idx: u32,
    /// Truth the receiver must reproduce: the CRC-stripped payload under
    /// CRC termination, the whole message under genie termination.
    payload: BitVec,
    tx: TxSession<AnyHash, AnyIqMapper, AnySchedule>,
    rx_id: SessionId,
    /// `positions[s]` = the [`TxSession`] cursor before stream symbol
    /// `s` was first produced — the seek target when `s` is replayed.
    positions: Vec<TxPosition>,
    /// Next stream position to send; below `positions.len()` during a
    /// replay, at it when transmitting fresh symbols.
    next_seq: u64,
    /// Transmissions charged against [`LinkConfig::max_symbols_per_frame`]
    /// (replays included).
    sent_total: u64,
    fault: FaultStream,
    first_sent_at: Option<u64>,
    /// Receiver-side decode time (the sender does not know this).
    decoded_at: Option<u64>,
    /// The accepted payload mismatched the truth (CRC false accept).
    misdecoded: bool,
    /// Receiver-side gap detector for [`FeedbackMode::Nack`].
    next_seq_expected: u64,
    last_nacked: Option<u64>,
    /// Sender-side retry timer: last tick with evidence of progress and
    /// the current (backed-off) timeout; 0 disables.
    last_progress: u64,
    cur_timeout: u64,
}

impl LinkFrame {
    fn new(
        cfg: &LinkConfig,
        pool: &mut RxPool,
        seed: u64,
        frame_idx: u32,
    ) -> Result<Self, SpinalError> {
        let code_seed = derive_seed(seed, STREAM_CODE, u64::from(frame_idx));
        let msg_seed = derive_seed(seed, STREAM_MSG, u64::from(frame_idx));
        let params = CodeParams::builder()
            .message_bits(cfg.message_bits)
            .k(cfg.k)
            .seed(code_seed)
            .build()?;
        let hash = AnyHash::new(cfg.hash, code_seed);
        let mut rng = Rng::seed_from(msg_seed);
        let (payload, message) = match cfg.crc {
            Some(ck) => {
                let payload: BitVec = (0..cfg.message_bits as usize - ck.width())
                    .map(|_| rng.bit())
                    .collect();
                let framed = frame_encode(&payload, ck);
                (payload, framed)
            }
            None => {
                let message: BitVec = (0..cfg.message_bits).map(|_| rng.bit()).collect();
                (message.clone(), message)
            }
        };
        let tx = TxSession::new(
            Encoder::new(&params, hash, cfg.mapper.clone(), &message)?,
            cfg.schedule.clone(),
        );
        let terminator = match cfg.crc {
            Some(ck) => AnyTerminator::crc(ck),
            None => AnyTerminator::genie(message.clone()),
        };
        let decoder = spinal_core::decode::BeamDecoder::new(
            &params,
            hash,
            cfg.mapper.clone(),
            AwgnCost,
            cfg.beam,
        )?;
        let rx = RxSession::new(
            decoder,
            cfg.schedule.clone(),
            terminator,
            RxConfig {
                beam: cfg.beam,
                max_symbols: cfg.max_symbols_per_frame,
                attempt_growth: cfg.attempt_growth,
            },
        )?;
        let rx_id = pool.insert(rx)?;
        let fault = cfg
            .faults
            .reseeded(derive_seed(seed, STREAM_FAULT, u64::from(frame_idx)))
            .stream();
        Ok(Self {
            idx: frame_idx,
            payload,
            tx,
            rx_id,
            positions: Vec::new(),
            next_seq: 0,
            sent_total: 0,
            fault,
            first_sent_at: None,
            decoded_at: None,
            misdecoded: false,
            next_seq_expected: 0,
            last_nacked: None,
            last_progress: 0,
            cur_timeout: 0,
        })
    }
}

/// One feedback message in flight on the reverse link.
enum FbKind {
    Ack(u32),
    Nack(u32, u64),
    Cum(Vec<u32>),
}

struct FbMsg {
    due: u64,
    kind: FbKind,
}

/// Draws the feedback BEC and enqueues the message if it survives.
#[allow(clippy::too_many_arguments)]
fn send_feedback(
    kind: FbKind,
    now: u64,
    feedback: &FeedbackConfig,
    delay: u64,
    seed: u64,
    fb_counter: &mut u64,
    queue: &mut Vec<FbMsg>,
    report: &mut LinkReport,
) {
    report.feedback_sent += 1;
    let r = derive_seed(seed, STREAM_FEEDBACK, *fb_counter);
    *fb_counter += 1;
    if unit(r) < feedback.loss {
        report.feedback_lost += 1;
    } else {
        queue.push(FbMsg {
            due: now + delay,
            kind,
        });
    }
}

/// How the transmitting frame's tick ended.
enum TickEnd {
    Keep,
    Exhaust,
    Abandon,
}

/// Runs the link protocol for `n_frames` frames and reports.
///
/// # Errors
///
/// Returns a typed [`SpinalError`] for an invalid configuration
/// (window, attempt growth, feedback, faults, or code parameters)
/// without running any symbol of simulation.
pub fn simulate_link(
    cfg: &LinkConfig,
    n_frames: u32,
    seed: u64,
) -> Result<LinkReport, SpinalError> {
    cfg.validate()?;
    let mut channel = AwgnChannel::from_snr_db(cfg.snr_db, derive_seed(seed, STREAM_CHANNEL, 0));

    let mut report = LinkReport {
        frames_requested: n_frames,
        ..LinkReport::default()
    };

    // All in-flight receiver sessions share one decoder pool: the
    // window is a same-shape cohort, so every decode attempt runs
    // through the pool's single hot scratch. The attempt ceiling routes
    // pathological frames to quarantine (the `Abandon` outcome).
    let mut pool = RxPool::new(MultiConfig {
        max_session_attempts: cfg.max_attempts_per_frame,
        ..MultiConfig::default()
    });
    let mut events: Vec<SessionEvent> = Vec::new();
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut ingest_buf: Vec<(Slot, IqSymbol)> = Vec::new();
    let mut fb_queue: Vec<FbMsg> = Vec::new();
    let mut fb_counter: u64 = 0;
    // Receiver-side cumulative state: frames decoded but (as far as the
    // receiver can tell) not yet retired by the sender.
    let mut decoded_unretired: Vec<u32> = Vec::new();

    let mut next_frame_idx: u32 = 0;
    let mut window: Vec<LinkFrame> = Vec::new();
    while window.len() < cfg.frames_in_flight as usize && next_frame_idx < n_frames {
        window.push(LinkFrame::new(cfg, &mut pool, seed, next_frame_idx)?);
        next_frame_idx += 1;
    }

    let mut now: u64 = 0;
    let mut rr: usize = 0; // round-robin pointer

    while !window.is_empty() {
        // 1. Deliver due feedback to the sender.
        let mut i = 0;
        while i < fb_queue.len() {
            if fb_queue[i].due > now {
                i += 1;
                continue;
            }
            match fb_queue.swap_remove(i).kind {
                FbKind::Ack(fidx) => retire(
                    fidx,
                    now,
                    cfg,
                    seed,
                    &mut window,
                    &mut pool,
                    &mut report,
                    &mut next_frame_idx,
                    n_frames,
                )?,
                FbKind::Nack(fidx, seq) => {
                    if let Some(f) = window.iter_mut().find(|f| f.idx == fidx) {
                        // Seek back to the first position the receiver
                        // is missing and replay from there.
                        if (seq as usize) < f.positions.len() {
                            f.next_seq = f.next_seq.min(seq);
                        }
                        f.last_progress = now;
                    }
                }
                FbKind::Cum(list) => {
                    for fidx in list {
                        retire(
                            fidx,
                            now,
                            cfg,
                            seed,
                            &mut window,
                            &mut pool,
                            &mut report,
                            &mut next_frame_idx,
                            n_frames,
                        )?;
                    }
                }
            }
        }
        if window.is_empty() {
            break;
        }

        // Periodic cumulative snapshot (receiver → sender).
        if let FeedbackMode::CumulativeAck { period } = cfg.feedback.mode {
            if now > 0 && now.is_multiple_of(period) && !decoded_unretired.is_empty() {
                send_feedback(
                    FbKind::Cum(decoded_unretired.clone()),
                    now,
                    &cfg.feedback,
                    cfg.feedback_delay,
                    seed,
                    &mut fb_counter,
                    &mut fb_queue,
                    &mut report,
                );
            }
        }

        // 2. Round-robin transmit one symbol.
        rr %= window.len();
        let cur = rr;
        rr += 1;
        let mut tick_end = TickEnd::Keep;
        {
            let frame = &mut window[cur];

            // Retry timeout: no sign of progress for a full (backed-off)
            // timeout => rewind halfway and replay, guarding against
            // data-direction loss the receiver never saw.
            if frame.cur_timeout > 0
                && !frame.positions.is_empty()
                && now.saturating_sub(frame.last_progress) >= frame.cur_timeout
            {
                frame.next_seq = frame.next_seq.min(frame.positions.len() as u64 / 2);
                frame.last_progress = now;
                frame.cur_timeout = ((frame.cur_timeout as f64) * cfg.feedback.backoff)
                    .ceil()
                    .max(frame.cur_timeout as f64 + 1.0) as u64;
            }

            let s = frame.next_seq;
            if (s as usize) < frame.positions.len() {
                frame.tx.seek(frame.positions[s as usize]);
                report.symbols_replayed += 1;
            } else {
                frame.positions.push(frame.tx.position());
            }
            let (slot, x) = frame.tx.next_symbol();
            frame.next_seq = s + 1;
            let y = channel.transmit(x);
            report.symbols_sent += 1;
            frame.sent_total += 1;
            if frame.first_sent_at.is_none() {
                frame.first_sent_at = Some(now);
                frame.last_progress = now;
                frame.cur_timeout = cfg.feedback.timeout;
            }
            frame.fault.push(s, slot, y, &mut deliveries);

            // 3. Receiver side.
            if frame.decoded_at.is_some() {
                // Already decoded: every arrival triggers a re-ACK, so a
                // lost ACK heals as long as the sender keeps sending.
                if !deliveries.is_empty()
                    && matches!(
                        cfg.feedback.mode,
                        FeedbackMode::AckOnly | FeedbackMode::Nack
                    )
                {
                    send_feedback(
                        FbKind::Ack(frame.idx),
                        now,
                        &cfg.feedback,
                        cfg.feedback_delay,
                        seed,
                        &mut fb_counter,
                        &mut fb_queue,
                        &mut report,
                    );
                }
            } else if !deliveries.is_empty() {
                if cfg.feedback.mode == FeedbackMode::Nack {
                    for d in deliveries.iter() {
                        let gap = frame.next_seq_expected;
                        if d.seq > gap && frame.last_nacked != Some(gap) {
                            frame.last_nacked = Some(gap);
                            send_feedback(
                                FbKind::Nack(frame.idx, gap),
                                now,
                                &cfg.feedback,
                                cfg.feedback_delay,
                                seed,
                                &mut fb_counter,
                                &mut fb_queue,
                                &mut report,
                            );
                        }
                        if frame.last_nacked == Some(d.seq) {
                            frame.last_nacked = None;
                        }
                        if d.seq >= frame.next_seq_expected {
                            frame.next_seq_expected = d.seq + 1;
                        }
                    }
                }
                ingest_buf.clear();
                ingest_buf.extend(deliveries.iter().map(|d| (d.slot, d.symbol)));
                pool.ingest_at(frame.rx_id, &ingest_buf)
                    .expect("undecoded frame session is live and listening");
                pool.drive_into(&mut events);
                let ev = events
                    .iter()
                    .find(|e| e.id == frame.rx_id)
                    .expect("ingested session reports an event");
                match &ev.outcome {
                    SessionOutcome::Poll(Poll::NeedMore { .. })
                    | SessionOutcome::Deferred { .. } => {}
                    SessionOutcome::Poll(Poll::Decoded { symbols_used, .. }) => {
                        frame.decoded_at = Some(now);
                        report.symbols_to_decode.push(*symbols_used as f64);
                        let accepted = pool
                            .get(frame.rx_id)
                            .expect("decoded session is live")
                            .payload();
                        frame.misdecoded = accepted != Some(&frame.payload);
                        match cfg.feedback.mode {
                            FeedbackMode::AckOnly | FeedbackMode::Nack => send_feedback(
                                FbKind::Ack(frame.idx),
                                now,
                                &cfg.feedback,
                                cfg.feedback_delay,
                                seed,
                                &mut fb_counter,
                                &mut fb_queue,
                                &mut report,
                            ),
                            FeedbackMode::CumulativeAck { .. } => {
                                decoded_unretired.push(frame.idx);
                            }
                        }
                    }
                    SessionOutcome::Poll(Poll::Exhausted { .. }) => {
                        tick_end = TickEnd::Exhaust;
                    }
                    SessionOutcome::Abandoned { .. } => {
                        tick_end = TickEnd::Abandon;
                    }
                }
            }

            // Sender-side budget: the liveness guarantee — a frame the
            // sender has overspent on is cut even if feedback is dead.
            if matches!(tick_end, TickEnd::Keep) && frame.sent_total >= cfg.max_symbols_per_frame {
                tick_end = TickEnd::Exhaust;
            }
        }

        match tick_end {
            TickEnd::Keep => {}
            TickEnd::Exhaust | TickEnd::Abandon => {
                let frame = window.swap_remove(cur);
                pool.remove(frame.rx_id)
                    .expect("removed frame session is live");
                match tick_end {
                    TickEnd::Exhaust => report.frames_exhausted += 1,
                    _ => report.frames_abandoned += 1,
                }
                if next_frame_idx < n_frames {
                    window.push(LinkFrame::new(cfg, &mut pool, seed, next_frame_idx)?);
                    next_frame_idx += 1;
                }
            }
        }
        now += 1;
    }

    Ok(report)
}

/// Retires a frame the sender just learned is decoded: the delivery
/// event. An acknowledgement for a frame no longer in the window is a
/// duplicate.
#[allow(clippy::too_many_arguments)]
fn retire(
    fidx: u32,
    now: u64,
    cfg: &LinkConfig,
    seed: u64,
    window: &mut Vec<LinkFrame>,
    pool: &mut RxPool,
    report: &mut LinkReport,
    next_frame_idx: &mut u32,
    n_frames: u32,
) -> Result<(), SpinalError> {
    let Some(pos) = window.iter().position(|f| f.idx == fidx) else {
        report.duplicate_acks += 1;
        return Ok(());
    };
    let frame = window.swap_remove(pos);
    pool.remove(frame.rx_id).expect("retired frame is live");
    report.frames_delivered += 1;
    if frame.misdecoded {
        report.frames_misdecoded += 1;
    }
    let decoded_at = frame.decoded_at.expect("ACK implies decode");
    let first = frame.first_sent_at.expect("decoded implies sent");
    report.decode_latency.push((decoded_at - first) as f64);
    report.completion_latency.push(now - first);
    if *next_frame_idx < n_frames {
        window.push(LinkFrame::new(cfg, pool, seed, *next_frame_idx)?);
        *next_frame_idx += 1;
    }
    Ok(())
}

impl Accumulate for LinkReport {
    fn merge(&mut self, o: Self) {
        LinkReport::merge(self, &o);
    }
}

/// One independent link run (a "replication") per engine trial.
struct LinkScenario<'a> {
    cfg: &'a LinkConfig,
    n_frames: u32,
}

impl Scenario for LinkScenario<'_> {
    type Worker = ();
    type Acc = LinkReport;

    fn make_worker(&self) {}

    fn empty_acc(&self) -> LinkReport {
        LinkReport::default()
    }

    fn run_trial(&self, trial: Trial, _w: &mut (), acc: &mut LinkReport) {
        Accumulate::merge(
            acc,
            simulate_link(self.cfg, self.n_frames, trial.seed)
                .expect("config validated by simulate_link_ensemble"),
        );
    }
}

/// Runs `replications` independent copies of the link simulation on
/// `engine` (one replication per trial, counter-based seeds) and merges
/// their reports — the cheap way to tighten the latency/throughput
/// confidence intervals of a protocol operating point. Statistics are
/// bit-identical for any worker count, faults included.
pub fn simulate_link_ensemble(
    cfg: &LinkConfig,
    n_frames: u32,
    replications: u32,
    seed: u64,
    engine: &SimEngine,
) -> Result<LinkReport, SpinalError> {
    cfg.validate()?;
    Ok(engine.run(
        &LinkScenario { cfg, n_frames },
        u64::from(replications),
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, LinkFault};
    use spinal_core::frame::Checksum;

    #[test]
    fn zero_delay_high_snr_approaches_code_rate() {
        // With no feedback delay the protocol adds no overhead: the
        // throughput equals the code's achieved rate (~k at high SNR).
        let cfg = LinkConfig::demo(30.0, 0, 1);
        let report = simulate_link(&cfg, 20, 1).unwrap();
        assert_eq!(report.frames_delivered, 20);
        assert_eq!(report.frames_exhausted, 0);
        let tput = report.throughput(cfg.message_bits);
        assert!(
            (tput - 4.0).abs() < 0.4,
            "zero-delay throughput {tput}, expected ~k = 4"
        );
    }

    #[test]
    fn stop_and_wait_pays_the_delay() {
        // W = 1: each frame costs N + D symbols. At 30 dB N ≈ 4, so
        // D = 16 should cut throughput to ~16/(4+16) = 0.8 bits/symbol.
        let fast = simulate_link(&LinkConfig::demo(30.0, 0, 1), 20, 2).unwrap();
        let slow = simulate_link(&LinkConfig::demo(30.0, 16, 1), 20, 2).unwrap();
        let (tf, ts) = (fast.throughput(16), slow.throughput(16));
        assert!(
            ts < tf * 0.45,
            "delay must hurt stop-and-wait: {tf} -> {ts}"
        );
        assert!((ts - 0.8).abs() < 0.3, "expected ~0.8, got {ts}");
    }

    #[test]
    fn pipelining_recovers_the_delay_loss() {
        // A deep window fills the ACK gap with other frames' symbols.
        let sw = simulate_link(&LinkConfig::demo(30.0, 16, 1), 24, 3).unwrap();
        let pipe = simulate_link(&LinkConfig::demo(30.0, 16, 6), 24, 3).unwrap();
        let (t1, t6) = (sw.throughput(16), pipe.throughput(16));
        assert!(
            t6 > t1 * 1.5,
            "pipelining must beat stop-and-wait: W=1 {t1}, W=6 {t6}"
        );
    }

    #[test]
    fn all_frames_delivered_at_reasonable_snr() {
        let report = simulate_link(&LinkConfig::demo(10.0, 8, 3), 15, 4).unwrap();
        assert_eq!(report.frames_delivered, 15);
        assert_eq!(report.delivery_fraction(), 1.0);
        assert!(report.symbols_to_decode.mean() >= 4.0);
        assert!(report.decode_latency.count() == 15);
        assert_eq!(report.completion_latency.len(), 15);
        let p50 = report.latency_percentile(0.5).unwrap();
        let p99 = report.latency_percentile(0.99).unwrap();
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
    }

    #[test]
    fn hopeless_snr_exhausts_frames() {
        let mut cfg = LinkConfig::demo(-25.0, 4, 2);
        cfg.max_symbols_per_frame = 64;
        let report = simulate_link(&cfg, 6, 5).unwrap();
        assert!(report.frames_exhausted > 0, "expected exhaustion at -25 dB");
        assert_eq!(
            report.frames_exhausted + report.frames_delivered + report.frames_abandoned,
            6,
            "every frame accounted for"
        );
    }

    #[test]
    fn attempt_ceiling_abandons_distinct_from_exhaustion() {
        // A tiny attempt ceiling quarantines hopeless frames long before
        // their symbol budget would run out — and the two outcomes are
        // counted apart.
        let mut cfg = LinkConfig::demo(-25.0, 4, 2);
        cfg.max_symbols_per_frame = 512;
        cfg.max_attempts_per_frame = 3;
        let report = simulate_link(&cfg, 6, 5).unwrap();
        assert!(report.frames_abandoned > 0, "expected quarantines");
        assert_eq!(
            report.frames_exhausted + report.frames_delivered + report.frames_abandoned,
            6
        );
        // The ceiling binds well below the symbol budget.
        assert!(report.symbols_sent < 6 * 512);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LinkConfig::demo(12.0, 8, 2);
        let a = simulate_link(&cfg, 10, 7).unwrap();
        let b = simulate_link(&cfg, 10, 7).unwrap();
        assert_eq!(a.symbols_sent, b.symbols_sent);
        assert_eq!(a.frames_delivered, b.frames_delivered);
    }

    #[test]
    fn zero_frames_is_empty_report() {
        let report = simulate_link(&LinkConfig::demo(10.0, 4, 2), 0, 0).unwrap();
        assert_eq!(report.symbols_sent, 0);
        assert_eq!(report.frames_delivered, 0);
    }

    #[test]
    fn ensemble_is_bit_identical_across_worker_counts() {
        let mut cfg = LinkConfig::demo(15.0, 4, 2);
        // Faults and feedback loss exercise every derived seed stream;
        // worker count still must not change a single bit.
        cfg.faults = FaultPlan::default()
            .with(LinkFault::Drop { p: 0.1 })
            .with(LinkFault::Duplicate { p: 0.05 })
            .with(LinkFault::Reorder { p: 0.1, window: 3 });
        cfg.feedback.loss = 0.2;
        let serial =
            simulate_link_ensemble(&cfg, 4, 6, 21, &SimEngine::serial().chunk_trials(2)).unwrap();
        let sharded =
            simulate_link_ensemble(&cfg, 4, 6, 21, &SimEngine::with_workers(3).chunk_trials(2))
                .unwrap();
        assert_eq!(serial.frames_delivered, sharded.frames_delivered);
        assert_eq!(serial.symbols_sent, sharded.symbols_sent);
        assert_eq!(serial.symbols_replayed, sharded.symbols_replayed);
        assert_eq!(serial.feedback_lost, sharded.feedback_lost);
        assert_eq!(
            serial.decode_latency.mean().to_bits(),
            sharded.decode_latency.mean().to_bits()
        );
        assert_eq!(serial.frames_requested, 24);
        // In-order chunk merges keep even the latency vector's order.
        assert_eq!(serial.completion_latency, sharded.completion_latency);
    }

    #[test]
    fn latency_grows_with_window_under_load() {
        // Sharing the channel across W frames stretches each frame's
        // decode latency even as throughput improves.
        let w1 = simulate_link(&LinkConfig::demo(20.0, 32, 1), 16, 9).unwrap();
        let w4 = simulate_link(&LinkConfig::demo(20.0, 32, 4), 16, 9).unwrap();
        assert!(
            w4.decode_latency.mean() > w1.decode_latency.mean(),
            "W=4 latency {} !> W=1 latency {}",
            w4.decode_latency.mean(),
            w1.decode_latency.mean()
        );
    }

    #[test]
    fn data_loss_costs_symbols_but_delivers() {
        let clean = simulate_link(&LinkConfig::demo(15.0, 4, 2), 12, 11).unwrap();
        let mut cfg = LinkConfig::demo(15.0, 4, 2);
        cfg.faults = FaultPlan::default().with(LinkFault::Drop { p: 0.3 });
        let lossy = simulate_link(&cfg, 12, 11).unwrap();
        assert_eq!(lossy.frames_delivered, 12, "drops must not kill frames");
        assert!(
            lossy.symbols_sent > clean.symbols_sent,
            "loss must cost symbols: {} !> {}",
            lossy.symbols_sent,
            clean.symbols_sent
        );
    }

    #[test]
    fn ack_loss_heals_through_reacks() {
        let mut cfg = LinkConfig::demo(15.0, 8, 2);
        cfg.feedback.loss = 0.7;
        let report = simulate_link(&cfg, 10, 13).unwrap();
        assert_eq!(report.frames_delivered, 10, "re-ACKs must repair loss");
        assert!(report.feedback_lost > 0, "the BEC must actually fire");
        assert!(
            report.feedback_sent > 10,
            "healing needs more feedback than one ACK per frame"
        );
    }

    #[test]
    fn total_feedback_blackout_terminates() {
        // loss = 1.0: the sender never hears anything. The per-frame
        // symbol budget must still terminate the run with every frame
        // accounted for — the no-livelock guarantee.
        let mut cfg = LinkConfig::demo(20.0, 4, 2);
        cfg.feedback.loss = 1.0;
        cfg.max_symbols_per_frame = 128;
        let report = simulate_link(&cfg, 6, 17).unwrap();
        assert_eq!(report.frames_delivered, 0);
        assert_eq!(report.frames_exhausted, 6);
        assert_eq!(report.symbols_sent, 6 * 128);
        assert_eq!(report.feedback_lost, report.feedback_sent);
    }

    #[test]
    fn nack_mode_replays_after_gaps() {
        let mut cfg = LinkConfig::demo(15.0, 6, 2);
        cfg.feedback.mode = FeedbackMode::Nack;
        cfg.faults = FaultPlan::default().with(LinkFault::Drop { p: 0.3 });
        let report = simulate_link(&cfg, 12, 19).unwrap();
        assert_eq!(report.frames_delivered, 12);
        assert!(
            report.symbols_replayed > 0,
            "gaps must trigger NACK-driven seek replay"
        );
    }

    #[test]
    fn cumulative_ack_survives_heavy_feedback_loss() {
        let mut cfg = LinkConfig::demo(15.0, 4, 2);
        cfg.feedback.mode = FeedbackMode::CumulativeAck { period: 16 };
        cfg.feedback.loss = 0.6;
        let report = simulate_link(&cfg, 10, 23).unwrap();
        assert_eq!(
            report.frames_delivered, 10,
            "the next snapshot repeats lost news"
        );
    }

    #[test]
    fn timeout_replays_when_data_link_is_dark() {
        // Heavy data-direction loss with plain ACKs: the retry timer is
        // what recovers (there is no NACK to ask for replay).
        let mut cfg = LinkConfig::demo(15.0, 4, 1);
        cfg.faults = FaultPlan::default().with(LinkFault::Drop { p: 0.5 });
        cfg.feedback.timeout = 64;
        cfg.feedback.backoff = 2.0;
        let report = simulate_link(&cfg, 8, 29).unwrap();
        assert_eq!(report.frames_delivered, 8);
    }

    #[test]
    fn crc_termination_delivers_without_misdecodes() {
        let mut cfg = LinkConfig::demo(15.0, 4, 2);
        cfg.message_bits = 32;
        cfg.crc = Some(Checksum::Crc16);
        let report = simulate_link(&cfg, 10, 31).unwrap();
        assert_eq!(report.frames_delivered, 10);
        assert_eq!(
            report.frames_misdecoded, 0,
            "silent corruption under CRC termination"
        );
        // The CRC overhead shows up as goodput < throughput.
        let g = report.goodput(cfg.message_bits, cfg.crc);
        let t = report.throughput(cfg.message_bits);
        assert!((g - t * 0.5).abs() < 1e-9, "goodput {g}, throughput {t}");
    }

    #[test]
    fn every_fault_class_is_survivable_and_deterministic() {
        let mut cfg = LinkConfig::demo(18.0, 4, 2);
        cfg.faults = FaultPlan::default()
            .with(LinkFault::Drop { p: 0.15 })
            .with(LinkFault::Duplicate { p: 0.1 })
            .with(LinkFault::Reorder { p: 0.15, window: 4 })
            .with(LinkFault::Burst { p: 0.01, len: 3 })
            .with(LinkFault::StaleSlot { p: 0.05 });
        cfg.feedback.mode = FeedbackMode::Nack;
        cfg.feedback.loss = 0.2;
        cfg.max_symbols_per_frame = 2000;
        let a = simulate_link(&cfg, 10, 37).unwrap();
        let b = simulate_link(&cfg, 10, 37).unwrap();
        assert_eq!(
            a.frames_delivered + a.frames_exhausted + a.frames_abandoned,
            10,
            "every frame accounted for under compound faults"
        );
        assert!(a.frames_delivered >= 8, "most frames should survive");
        assert_eq!(a.symbols_sent, b.symbols_sent);
        assert_eq!(a.symbols_replayed, b.symbols_replayed);
        assert_eq!(a.feedback_sent, b.feedback_sent);
        assert_eq!(a.completion_latency, b.completion_latency);
    }
}
