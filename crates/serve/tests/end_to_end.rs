//! End-to-end serve dialogues over the deterministic loopback:
//! decode, NACK recovery, admission control, backpressure, terminal
//! closes, and serial-vs-sharded bit-identity.

use spinal_core::bits::BitVec;
use spinal_core::sched::MultiConfig;
use spinal_core::symbol::IqSymbol;
use spinal_link::{FaultPlan, FeedbackMode, LinkFault};
use spinal_serve::{
    loopback_pair, loopback_pair_chunked, ClientConfig, ClientOutcome, ServeClient, ServeConfig,
    Server,
};

const MAX_TICKS: usize = 20_000;

fn payload(i: u64) -> BitVec {
    BitVec::from_bytes(&[(i & 0xff) as u8, ((i * 7 + 3) & 0xff) as u8])
}

fn run_to_done(
    server: &mut Server<spinal_serve::LoopbackTransport>,
    clients: &mut [ServeClient<spinal_serve::LoopbackTransport>],
    sharded: bool,
) {
    for _ in 0..MAX_TICKS {
        if sharded {
            server.tick_sharded();
        } else {
            server.tick();
        }
        let mut all_done = true;
        for c in clients.iter_mut() {
            c.tick();
            all_done &= c.is_done();
        }
        if all_done {
            return;
        }
    }
    panic!("dialogue did not finish within {MAX_TICKS} ticks");
}

#[test]
fn single_flow_decodes_over_loopback() {
    let mut server = Server::new(ServeConfig::default()).unwrap();
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let p = payload(1);
    let mut clients = vec![ServeClient::new(local, &ClientConfig::default(), &p).unwrap()];
    run_to_done(&mut server, &mut clients, false);

    let out = clients[0].outcome().unwrap();
    assert!(matches!(out, ClientOutcome::Decoded { symbols_used, .. } if symbols_used > 0));
    assert_eq!(clients[0].decoded_payload(), Some(&p));
    let stats = server.stats();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.decoded, 1);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(server.latencies().len(), 1);
}

#[test]
fn chunked_transport_reassembles_identically() {
    let mut server = Server::new(ServeConfig::default()).unwrap();
    let (local, remote) = loopback_pair_chunked(1 << 16, 0xfeed);
    server.add_connection(remote);
    let p = payload(2);
    let mut clients = vec![ServeClient::new(local, &ClientConfig::default(), &p).unwrap()];
    run_to_done(&mut server, &mut clients, false);
    assert!(matches!(
        clients[0].outcome(),
        Some(ClientOutcome::Decoded { .. })
    ));
    assert_eq!(clients[0].decoded_payload(), Some(&p));
}

#[test]
fn nack_mode_recovers_from_drops_and_faults() {
    let mut server = Server::new(ServeConfig::default()).unwrap();
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let p = payload(3);
    let cfg = ClientConfig {
        mode: FeedbackMode::Nack,
        ..ClientConfig::default()
    };
    let plan = FaultPlan::new(99)
        .with(LinkFault::Drop { p: 0.25 })
        .with(LinkFault::Duplicate { p: 0.1 });
    let mut clients = vec![ServeClient::new(local, &cfg, &p).unwrap().with_fault(&plan)];
    run_to_done(&mut server, &mut clients, false);
    assert!(matches!(
        clients[0].outcome(),
        Some(ClientOutcome::Decoded { .. })
    ));
    assert_eq!(clients[0].decoded_payload(), Some(&p));
}

#[test]
fn cumulative_ack_mode_reports_decode() {
    let mut server = Server::new(ServeConfig::default()).unwrap();
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let p = payload(4);
    let cfg = ClientConfig {
        mode: FeedbackMode::CumulativeAck { period: 7 },
        ..ClientConfig::default()
    };
    let mut clients = vec![ServeClient::new(local, &cfg, &p).unwrap()];
    run_to_done(&mut server, &mut clients, false);
    assert!(matches!(
        clients[0].outcome(),
        Some(ClientOutcome::Decoded { .. })
    ));
    assert_eq!(clients[0].decoded_payload(), Some(&p));
}

#[test]
fn pool_full_rejects_with_busy() {
    let cfg = ServeConfig {
        pool: MultiConfig {
            max_sessions: 1,
            ..MultiConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut server = Server::new(cfg).unwrap();
    let (a_local, a_remote) = loopback_pair(1 << 16);
    let (b_local, b_remote) = loopback_pair(1 << 16);
    server.add_connection(a_remote);
    server.add_connection(b_remote);

    // Session A streams one symbol per tick of a larger message, so it
    // is still live when B asks to be admitted.
    let slow = ClientConfig {
        burst: 1,
        ..ClientConfig::default()
    };
    let mut a = ServeClient::new(a_local, &slow, &BitVec::from_bytes(&[1, 2, 3, 4])).unwrap();
    let mut b = ServeClient::new(b_local, &ClientConfig::default(), &payload(6)).unwrap();

    let mut b_done = false;
    for _ in 0..MAX_TICKS {
        server.tick();
        a.tick();
        b.tick();
        if b.is_done() {
            b_done = true;
            break;
        }
    }
    assert!(b_done, "second session never got a verdict");
    assert_eq!(b.outcome(), Some(ClientOutcome::Busy));
    assert_eq!(server.stats().busy_rejected, 1);
}

#[test]
fn exhaustion_and_abandonment_close_the_dialogue() {
    // Garbage symbols never satisfy the CRC; a tiny symbol budget
    // exhausts the receiver.
    let mut server = Server::new(ServeConfig::default()).unwrap();
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let cfg = ClientConfig {
        max_symbols: 8,
        ..ClientConfig::default()
    };
    let mut clients = vec![ServeClient::new(local, &cfg, &payload(7))
        .unwrap()
        .with_noise(Box::new(|_| IqSymbol::new(0.0, 0.0)))];
    run_to_done(&mut server, &mut clients, false);
    assert_eq!(clients[0].outcome(), Some(ClientOutcome::Exhausted));
    assert_eq!(server.stats().exhausted, 1);

    // An attempt ceiling of 1 quarantines the session instead.
    let srv_cfg = ServeConfig {
        pool: MultiConfig {
            max_session_attempts: 1,
            ..MultiConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut server = Server::new(srv_cfg).unwrap();
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let mut clients = vec![
        ServeClient::new(local, &ClientConfig::default(), &payload(8))
            .unwrap()
            .with_noise(Box::new(|_| IqSymbol::new(0.0, 0.0))),
    ];
    run_to_done(&mut server, &mut clients, false);
    assert_eq!(clients[0].outcome(), Some(ClientOutcome::Abandoned));
    assert_eq!(server.stats().abandoned, 1);
}

#[test]
fn backpressure_engages_and_clears() {
    // High-water mark below one HELLO-ACK, and a transport so narrow
    // the ACK cannot leave while the client stays silent.
    let cfg = ServeConfig {
        egress_high_water: 8,
        egress_capacity: 1 << 16,
        ..ServeConfig::default()
    };
    let mut server = Server::new(cfg).unwrap();
    let (local, remote) = loopback_pair(4);
    let handle = server.add_connection(remote);
    let p = payload(9);
    let mut client = ServeClient::new(local, &ClientConfig::default(), &p).unwrap();

    // Client pushes HELLO through the 4-byte pipe without reading
    // feedback: tick the client alone a few times to deliver it.
    for _ in 0..40 {
        client.tick();
        server.tick();
        if server.is_backpressured(handle) {
            break;
        }
    }
    assert!(
        server.is_backpressured(handle),
        "egress above high water must backpressure the connection"
    );
    let stats = server.stats();
    assert!(stats.backpressure_ticks > 0);

    // Keep ticking both sides: the client drains feedback, egress
    // falls below the mark, and the flow completes.
    let mut clients = vec![client];
    run_to_done(&mut server, &mut clients, false);
    assert!(matches!(
        clients[0].outcome(),
        Some(ClientOutcome::Decoded { .. })
    ));
}

#[test]
fn sharded_run_is_bit_identical_to_serial() {
    let flows = 12;
    let run = |shards: usize, sharded: bool| {
        let cfg = ServeConfig {
            shards,
            ..ServeConfig::default()
        };
        let mut server = Server::new(cfg).unwrap();
        let mut clients = Vec::new();
        for i in 0..flows {
            let (local, remote) = loopback_pair(1 << 16);
            server.add_connection(remote);
            let ccfg = ClientConfig {
                seed: 100 + i,
                mode: if i % 3 == 0 {
                    FeedbackMode::Nack
                } else {
                    FeedbackMode::AckOnly
                },
                ..ClientConfig::default()
            };
            clients.push(ServeClient::new(local, &ccfg, &payload(i)).unwrap());
        }
        run_to_done(&mut server, &mut clients, sharded);
        let per_flow: Vec<_> = clients
            .iter()
            .map(|c| (c.outcome(), c.decoded_payload().cloned(), c.symbols_sent()))
            .collect();
        let mut lats = server.latencies();
        lats.sort_unstable();
        let stats = server.stats();
        (per_flow, lats, stats.decoded, stats.symbols_in)
    };

    let serial = run(1, false);
    let sharded3 = run(3, true);
    let sharded5 = run(5, true);
    assert_eq!(serial, sharded3, "3-way sharding changed results");
    assert_eq!(serial, sharded5, "5-way sharding changed results");
}

#[test]
fn reap_frees_slots_for_new_sessions() {
    let cfg = ServeConfig {
        pool: MultiConfig {
            max_sessions: 1,
            ..MultiConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut server = Server::new(cfg).unwrap();
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let mut clients =
        vec![ServeClient::new(local, &ClientConfig::default(), &payload(10)).unwrap()];
    run_to_done(&mut server, &mut clients, false);
    assert!(matches!(
        clients[0].outcome(),
        Some(ClientOutcome::Decoded { .. })
    ));
    // The decoded session already left the pool; dropping the client
    // kills the transport, and the reaper frees the connection slot.
    drop(clients);
    server.tick();
    assert!(server.reap_closed() >= 1);
    assert_eq!(server.live_sessions(), 0);

    // A fresh session is admitted into the reclaimed capacity.
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let mut clients =
        vec![ServeClient::new(local, &ClientConfig::default(), &payload(11)).unwrap()];
    run_to_done(&mut server, &mut clients, false);
    assert!(matches!(
        clients[0].outcome(),
        Some(ClientOutcome::Decoded { .. })
    ));
}
