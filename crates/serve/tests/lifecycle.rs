//! Connection-lifecycle dialogues over deterministic transports:
//! mid-stream disconnect + resume bit-identity, keepalive probing and
//! idle closure, graceful drain, overload shedding of detached
//! orphans, chaos-transport recovery, and a real-socket TCP smoke run.

use spinal_core::bits::BitVec;
use spinal_core::sched::MultiConfig;
use spinal_serve::{
    chaos_pair, encode_frame, loopback_pair, ChaosEvent, ChaosPlan, ClientConfig, ClientOutcome,
    Frame, LoopbackTransport, ServeClient, ServeConfig, Server, TcpAcceptor, TcpTransport,
    Transport, WireDecoder,
};

const MAX_TICKS: usize = 20_000;

fn payload(i: u64) -> BitVec {
    BitVec::from_bytes(&[
        (i & 0xff) as u8,
        ((i * 7 + 3) & 0xff) as u8,
        ((i * 13 + 5) & 0xff) as u8,
        ((i * 29 + 11) & 0xff) as u8,
    ])
}

fn run_to_done(
    server: &mut Server<LoopbackTransport>,
    clients: &mut [ServeClient<LoopbackTransport>],
    sharded: bool,
) {
    for _ in 0..MAX_TICKS {
        if sharded {
            server.tick_sharded();
        } else {
            server.tick();
        }
        let mut all_done = true;
        for c in clients.iter_mut() {
            c.tick();
            all_done &= c.is_done();
        }
        if all_done {
            return;
        }
    }
    panic!("dialogue did not finish within {MAX_TICKS} ticks");
}

/// A session interrupted mid-stream and resumed over a fresh
/// connection must conclude with the decoded payload *and* the decode
/// verdict (`symbols_used`, `attempts`) bit-identical to an
/// uninterrupted twin — the detached session keeps being driven, so
/// the reconnect changes nothing the decoder can observe.
#[test]
fn mid_stream_resume_is_bit_identical() {
    let p = payload(42);
    let ccfg = ClientConfig {
        burst: 2,
        ..ClientConfig::default()
    };

    // Uninterrupted twin.
    let mut server = Server::new(ServeConfig::default()).unwrap();
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let mut clients = vec![ServeClient::new(local, &ccfg, &p).unwrap()];
    run_to_done(&mut server, &mut clients, false);
    let baseline = clients[0].outcome().unwrap();
    assert!(matches!(baseline, ClientOutcome::Decoded { .. }));

    // Same flow, disconnected mid-stream and resumed.
    let mut server = Server::new(ServeConfig::default()).unwrap();
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let mut client = ServeClient::new(local, &ccfg, &p).unwrap();
    for _ in 0..6 {
        client.tick();
        server.tick();
    }
    let token = client
        .resume_token()
        .expect("admitted client holds a resume token");
    assert!(!client.is_done(), "flow must still be mid-stream");

    let (srv2, cli2) = loopback_pair(1 << 16);
    server.add_resume_connection(srv2, token);
    // Dropping the stale half closes the old connection toward the
    // server, which detaches the session; the RESUME on the new
    // connection then re-attaches it (newest connection wins even if
    // both arrive in the same tick).
    drop(client.reconnect(cli2));
    let mut clients = vec![client];
    run_to_done(&mut server, &mut clients, false);

    assert_eq!(
        clients[0].outcome(),
        Some(baseline),
        "resumed verdict must be bit-identical to the uninterrupted run"
    );
    assert_eq!(clients[0].decoded_payload(), Some(&p));
    let stats = server.stats();
    assert_eq!(stats.decoded, 1);
    assert_eq!(stats.detached, 1);
    assert_eq!(stats.resumed, 1);
    assert_eq!(stats.resume_rejected, 0);
}

/// Resume works identically under sharding: the reconnect is routed to
/// the session's shard by token id.
#[test]
fn sharded_resume_reaches_the_right_shard() {
    let cfg = ServeConfig {
        shards: 3,
        ..ServeConfig::default()
    };
    let mut server = Server::new(cfg).unwrap();
    let mut clients = Vec::new();
    for i in 0..6u64 {
        let (local, remote) = loopback_pair(1 << 16);
        server.add_connection(remote);
        let ccfg = ClientConfig {
            seed: 300 + i,
            burst: 2,
            ..ClientConfig::default()
        };
        clients.push(ServeClient::new(local, &ccfg, &payload(i)).unwrap());
    }
    for _ in 0..6 {
        server.tick_sharded();
        for c in clients.iter_mut() {
            c.tick();
        }
    }
    // Interrupt one mid-stream flow and resume it.
    let token = clients[2].resume_token().expect("client 2 admitted");
    let (srv2, cli2) = loopback_pair(1 << 16);
    server.add_resume_connection(srv2, token);
    drop(clients[2].reconnect(cli2));
    run_to_done(&mut server, &mut clients, true);
    for (i, c) in clients.iter().enumerate() {
        assert!(
            matches!(c.outcome(), Some(ClientOutcome::Decoded { .. })),
            "flow {i} must decode, got {:?}",
            c.outcome()
        );
        assert_eq!(c.decoded_payload(), Some(&payload(i as u64)));
    }
    assert_eq!(server.stats().resumed, 1);
}

/// Keepalive: an idle connection is probed with PING at
/// `keepalive_idle` (one outstanding probe until activity), and closed
/// — its session detached — at `idle_deadline`.
#[test]
fn keepalive_probes_then_idle_deadline_closes() {
    let cfg = ServeConfig {
        keepalive_idle: 3,
        idle_deadline: 10,
        ..ServeConfig::default()
    };
    let mut server = Server::new(cfg).unwrap();
    let (srv_t, mut cli_t) = loopback_pair(1 << 16);
    let handle = server.add_connection(srv_t);

    // Stay silent: the server probes once it has been quiet long
    // enough, and does not probe again while one ping is outstanding.
    let mut rx = Vec::new();
    for _ in 0..6 {
        server.tick();
        cli_t.recv(&mut rx).unwrap();
    }
    let mut dec = WireDecoder::new();
    dec.push_bytes(&rx);
    let mut pings = Vec::new();
    while let Some(f) = dec.next_frame().unwrap() {
        if let Frame::Ping { nonce } = f {
            pings.push(nonce);
        }
    }
    assert_eq!(pings.len(), 1, "one outstanding probe at a time");
    assert_eq!(server.stats().keepalive_pings, 1);

    // Answering the probe re-arms it: activity resets the idle clock.
    let mut pong = Vec::new();
    encode_frame(&Frame::Pong { nonce: pings[0] }, &mut pong).unwrap();
    cli_t.send(&pong).unwrap();
    for _ in 0..5 {
        server.tick();
        cli_t.recv(&mut rx).unwrap();
    }
    assert_eq!(
        server.stats().keepalive_pings,
        2,
        "probe re-arms after PONG"
    );
    assert_eq!(server.stats().idle_closed, 0);

    // Silence past the idle deadline closes the connection.
    for _ in 0..12 {
        server.tick();
    }
    assert_eq!(server.stats().idle_closed, 1);
    assert!(server.is_closed(handle));
    assert!(server.reap_closed() >= 1);
}

/// Graceful drain: every peer receives GO-AWAY with the remaining
/// budget, new HELLOs are refused with BUSY, and whatever still
/// streams at the deadline is shed under its resume token (past the
/// deadline the server sheds everything — the token's value is that
/// the verdict was not silently lost).
#[test]
fn graceful_drain_completes_short_flows_and_sheds_slow_ones() {
    let mut server = Server::new(ServeConfig::default()).unwrap();
    // A deliberately slow flow: one symbol per tick of a long payload.
    let slow_cfg = ClientConfig {
        burst: 1,
        ..ClientConfig::default()
    };
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let mut slow = ServeClient::new(
        local,
        &slow_cfg,
        &BitVec::from_bytes(&[9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 11, 12, 13, 14, 15, 16]),
    )
    .unwrap();
    for _ in 0..4 {
        slow.tick();
        server.tick();
    }
    assert!(!slow.is_done());

    // 128 payload bits need at least 16 symbols at one per tick; a
    // 3-tick budget cannot finish, so the flow is shed at the deadline.
    server.begin_drain(3);
    assert!(server.draining());

    // A late HELLO during the drain is refused flat.
    let (late_local, late_remote) = loopback_pair(1 << 16);
    server.add_connection(late_remote);
    let mut late = ServeClient::new(late_local, &ClientConfig::default(), &payload(50)).unwrap();

    for _ in 0..40 {
        slow.tick();
        late.tick();
        server.tick();
        if slow.is_done() && late.is_done() {
            break;
        }
    }
    assert_eq!(late.outcome(), Some(ClientOutcome::Busy));
    assert_eq!(slow.outcome(), Some(ClientOutcome::Shed));
    assert!(slow.go_away().is_some(), "drain must announce GO-AWAY");
    assert!(
        slow.resume_token().is_some(),
        "shed client keeps its resume token"
    );
    let stats = server.stats();
    assert_eq!(stats.busy_rejected, 1);
    assert_eq!(stats.detached, 1);
}

/// While the drain window is still open, RESUME is honoured: a flow
/// disconnected mid-stream reconnects and finishes inside the budget.
#[test]
fn resume_is_honoured_during_the_drain_window() {
    let mut server = Server::new(ServeConfig::default()).unwrap();
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    let ccfg = ClientConfig {
        burst: 2,
        ..ClientConfig::default()
    };
    let p = payload(55);
    let mut client = ServeClient::new(local, &ccfg, &p).unwrap();
    for _ in 0..5 {
        client.tick();
        server.tick();
    }
    let token = client.resume_token().expect("admitted");
    assert!(!client.is_done());

    // Open a generous drain window, then disconnect and resume inside
    // it: the session must still complete.
    server.begin_drain(5_000);
    let (srv2, cli2) = loopback_pair(1 << 16);
    server.add_resume_connection(srv2, token);
    drop(client.reconnect(cli2));
    let mut clients = vec![client];
    run_to_done(&mut server, &mut clients, false);
    assert!(
        matches!(clients[0].outcome(), Some(ClientOutcome::Decoded { .. })),
        "resume during drain must finish, got {:?}",
        clients[0].outcome()
    );
    assert_eq!(clients[0].decoded_payload(), Some(&p));
    let stats = server.stats();
    assert_eq!(stats.resumed, 1);
    assert_eq!(stats.decoded, 1);
}

/// Overload shedding: with the pool full and an orphaned (detached)
/// session resident, a new HELLO evicts the costliest orphan instead
/// of bouncing with BUSY; the orphan's token is then refused.
#[test]
fn admission_sheds_detached_orphans_before_busy() {
    let cfg = ServeConfig {
        pool: MultiConfig {
            max_sessions: 1,
            ..MultiConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut server = Server::new(cfg).unwrap();

    // Flow A streams, then its connection dies without a resume.
    let (a_local, a_remote) = loopback_pair(1 << 16);
    server.add_connection(a_remote);
    let mut a = ServeClient::new(
        a_local,
        &ClientConfig {
            burst: 1,
            ..ClientConfig::default()
        },
        &BitVec::from_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]),
    )
    .unwrap();
    for _ in 0..4 {
        a.tick();
        server.tick();
    }
    let a_token = a.resume_token().expect("A was admitted");
    drop(a); // closes the transport; the server detaches A's session
    for _ in 0..3 {
        server.tick();
    }
    assert_eq!(server.detached_sessions(), 1);
    assert_eq!(server.live_sessions(), 1, "orphan still occupies the pool");

    // Flow B's HELLO must evict the orphan, not bounce.
    let (b_local, b_remote) = loopback_pair(1 << 16);
    server.add_connection(b_remote);
    let mut clients =
        vec![ServeClient::new(b_local, &ClientConfig::default(), &payload(60)).unwrap()];
    run_to_done(&mut server, &mut clients, false);
    assert!(matches!(
        clients[0].outcome(),
        Some(ClientOutcome::Decoded { .. })
    ));
    let stats = server.stats();
    assert_eq!(stats.shed, 1, "the orphan was shed to admit B");
    assert_eq!(stats.busy_rejected, 0);
    assert_eq!(server.detached_sessions(), 0);

    // The shed orphan's token is now a typed refusal.
    let (srv3, mut cli3) = loopback_pair(1 << 16);
    server.add_resume_connection(srv3, a_token);
    let mut buf = Vec::new();
    encode_frame(&Frame::Resume { token: a_token }, &mut buf).unwrap();
    cli3.send(&buf).unwrap();
    let mut rx = Vec::new();
    for _ in 0..8 {
        server.tick();
        cli3.recv(&mut rx).unwrap();
    }
    let mut dec = WireDecoder::new();
    dec.push_bytes(&rx);
    let mut refused = false;
    while let Some(f) = dec.next_frame().unwrap() {
        if matches!(
            f,
            Frame::Close {
                reason: spinal_serve::CloseReason::ResumeInvalid
            }
        ) {
            refused = true;
        }
    }
    assert!(refused, "a shed session's token must be refused");
    assert_eq!(server.stats().resume_rejected, 1);
}

/// A chaos-injected mid-stream disconnect surfaces as
/// `TransportClosed`; reconnecting with the resume token completes the
/// decode with the original payload.
#[test]
fn chaos_disconnect_then_resume_recovers() {
    // A long payload at one symbol per tick keeps the flow mid-stream
    // (64 bits need at least 8 symbols) when the chaos disconnect
    // fires at op 14 — after the HELLO-ACK handed over the resume
    // token.
    let p = BitVec::from_bytes(&[7, 7, 7, 1, 2, 3, 4, 5]);
    let ccfg = ClientConfig {
        burst: 1,
        ..ClientConfig::default()
    };
    let mut server = Server::new(ServeConfig::default()).unwrap();
    let plan = ChaosPlan::new(0xC4A0).with(ChaosEvent::Disconnect { at_op: 14 });
    let (chaos_cli, srv_t) = chaos_pair(1 << 16, &plan);
    server.add_connection(srv_t);
    let mut client = ServeClient::new(chaos_cli, &ccfg, &p).unwrap();

    let mut token = None;
    for _ in 0..200 {
        client.tick();
        server.tick();
        token = client.resume_token().or(token);
        if client.is_done() {
            break;
        }
    }
    assert_eq!(client.outcome(), Some(ClientOutcome::TransportClosed));
    let token = token.expect("client held a token before the chaos disconnect");

    // Reconnect over a clean pair (wrapped in an event-free chaos plan
    // to keep the transport type) and finish.
    let calm = ChaosPlan::new(1);
    let (chaos_cli2, srv2) = chaos_pair(1 << 16, &calm);
    server.add_resume_connection(srv2, token);
    drop(client.reconnect(chaos_cli2));
    for _ in 0..MAX_TICKS {
        client.tick();
        server.tick();
        if client.is_done() {
            break;
        }
    }
    assert!(
        matches!(client.outcome(), Some(ClientOutcome::Decoded { .. })),
        "chaos-interrupted flow must decode after resume, got {:?}",
        client.outcome()
    );
    assert_eq!(client.decoded_payload(), Some(&p));
}

/// Real-socket smoke: the full dialogue over localhost TCP — two
/// clients to verified decode, one of them disconnected mid-stream and
/// resumed over a fresh socket. Skips (with a note) where loopback
/// sockets are unavailable.
#[test]
fn tcp_lifecycle_smoke() {
    let Ok(acceptor) = TcpAcceptor::bind("127.0.0.1:0") else {
        eprintln!("skipping TCP lifecycle smoke: cannot bind loopback");
        return;
    };
    let addr = acceptor.local_addr().unwrap();
    let mut server: Server<TcpTransport> = Server::new(ServeConfig::default()).unwrap();

    let ccfg = ClientConfig {
        burst: 2,
        ..ClientConfig::default()
    };
    let p0 = payload(90);
    let p1 = payload(91);
    let mut c0 = ServeClient::new(TcpTransport::connect(addr).unwrap(), &ccfg, &p0).unwrap();
    let mut c1 = ServeClient::new(TcpTransport::connect(addr).unwrap(), &ccfg, &p1).unwrap();
    for _ in 0..64 {
        if let Some(t) = acceptor.accept().unwrap() {
            server.add_connection(t);
        }
        if server.stats().admitted == 2 {
            break;
        }
        c0.tick();
        c1.tick();
        server.tick();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Stream a while, then cut client 1's socket mid-stream.
    let mut cut = false;
    let mut resumed = false;
    for _ in 0..MAX_TICKS {
        if let Some(t) = acceptor.accept().unwrap() {
            server.add_connection(t);
        }
        c0.tick();
        c1.tick();
        server.tick();
        if !cut && !c1.is_done() && c1.resume_token().is_some() && server.stats().symbols_in > 8 {
            let stale = c1.reconnect(TcpTransport::connect(addr).unwrap());
            drop(stale);
            cut = true;
        }
        if cut && !resumed && server.stats().resumed == 1 {
            resumed = true;
        }
        if c0.is_done() && c1.is_done() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    assert!(matches!(c0.outcome(), Some(ClientOutcome::Decoded { .. })));
    assert!(
        matches!(c1.outcome(), Some(ClientOutcome::Decoded { .. })),
        "cut client must decode after resume, got {:?}",
        c1.outcome()
    );
    assert_eq!(c0.decoded_payload(), Some(&p0));
    assert_eq!(c1.decoded_payload(), Some(&p1));
    assert!(cut, "the mid-stream disconnect must actually have happened");
    assert_eq!(server.stats().decoded, 2);
}
