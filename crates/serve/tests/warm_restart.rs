//! Warm-restart coverage: kill/restore/resume identity against
//! uninterrupted twins (serial and sharded), secret pinning, detached
//! TTL survival across the restart, and adversarial snapshot bytes
//! (truncation at every boundary, single-byte corruption, forged
//! tokens, byte soup) — typed errors or accounted drops, never a panic
//! and never a wrong-session attach.

use proptest::prelude::*;
use spinal_core::bits::BitVec;
use spinal_core::error::{SnapshotErrorKind, SpinalError};
use spinal_core::sched::MultiConfig;
use spinal_serve::{
    loopback_pair, ClientConfig, ClientOutcome, LoopbackTransport, ServeClient, ServeConfig, Server,
};

const SECRET: u64 = 0x5EED_FACE;
const MAX_TICKS: u64 = 40_000;
const DETACH_TTL: u64 = 512;

fn serve_cfg(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        resume_secret: Some(SECRET),
        pool: MultiConfig {
            detach_ttl: DETACH_TTL,
            ..MultiConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn payload(flow: u64, bytes: usize, salt: u64) -> BitVec {
    let v: Vec<u8> = (0..bytes)
        .map(|i| {
            (flow
                .wrapping_mul(151)
                .wrapping_add(salt.wrapping_mul(97))
                .wrapping_add(i as u64 * 41)
                % 251) as u8
        })
        .collect();
    BitVec::from_bytes(&v)
}

fn client_cfg(flow: u64) -> ClientConfig {
    ClientConfig {
        beam: 4,
        burst: 2,
        seed: 1000 + flow,
        ..ClientConfig::default()
    }
}

fn new_fleet(
    n: usize,
    shards: usize,
    salt: u64,
    bytes: usize,
) -> (
    Server<LoopbackTransport>,
    Vec<ServeClient<LoopbackTransport>>,
) {
    let mut server = Server::new(serve_cfg(shards)).unwrap();
    let mut clients = Vec::with_capacity(n);
    for f in 0..n as u64 {
        let (local, remote) = loopback_pair(1 << 16);
        server.add_connection(remote);
        clients.push(ServeClient::new(local, &client_cfg(f), &payload(f, bytes, salt)).unwrap());
    }
    (server, clients)
}

fn tick_all(
    server: &mut Server<LoopbackTransport>,
    clients: &mut [ServeClient<LoopbackTransport>],
    sharded: bool,
) -> bool {
    if sharded {
        server.tick_sharded();
    } else {
        server.tick();
    }
    let mut all_done = true;
    for c in clients.iter_mut() {
        c.tick();
        all_done &= c.is_done();
    }
    all_done
}

type FlowResult = (Option<ClientOutcome>, Option<BitVec>);

fn results(clients: &[ServeClient<LoopbackTransport>]) -> Vec<FlowResult> {
    clients
        .iter()
        .map(|c| (c.outcome(), c.decoded_payload().cloned()))
        .collect()
}

fn run_uninterrupted(
    n: usize,
    shards: usize,
    sharded: bool,
    salt: u64,
    bytes: usize,
) -> Vec<FlowResult> {
    let (mut server, mut clients) = new_fleet(n, shards, salt, bytes);
    for _ in 0..MAX_TICKS {
        if tick_all(&mut server, &mut clients, sharded) {
            return results(&clients);
        }
    }
    panic!("uninterrupted fleet did not finish");
}

/// Runs a fleet, killing the server (snapshot → drop → restore →
/// reconnect every unfinished client) at each tick in `kill_ticks`.
/// Returns the per-flow results and the final server.
fn run_killed(
    n: usize,
    shards: usize,
    sharded: bool,
    salt: u64,
    bytes: usize,
    kill_ticks: &[u64],
) -> (Vec<FlowResult>, Server<LoopbackTransport>) {
    let (mut server, mut clients) = new_fleet(n, shards, salt, bytes);
    let mut buf = Vec::new();
    let mut done = false;
    for t in 1..=MAX_TICKS {
        if tick_all(&mut server, &mut clients, sharded) {
            done = true;
            break;
        }
        if kill_ticks.contains(&t) {
            server.snapshot_into(&mut buf).unwrap();
            // Dropping the old server severs every loopback; the
            // restored one only knows the snapshot.
            server = Server::restore(serve_cfg(shards), &buf).unwrap();
            for c in clients.iter_mut().filter(|c| !c.is_done()) {
                let (local, remote) = loopback_pair(1 << 16);
                match c.resume_token() {
                    Some(token) => server.add_resume_connection(remote, token),
                    None => server.add_connection(remote),
                };
                drop(c.reconnect(local));
            }
        }
    }
    assert!(done, "killed fleet did not finish");
    (results(&clients), server)
}

/// One kill mid-decode: every flow must conclude with the same verdict
/// (`symbols_used`, `attempts`) and payload as a never-killed twin —
/// serial and sharded — and the restored server's conservation law
/// must close exactly with zero lost flows.
#[test]
fn kill_restart_is_bit_identical_to_uninterrupted() {
    let n = 4;
    let bytes = 6;
    let baseline = run_uninterrupted(n, 1, false, 7, bytes);
    for f in &baseline {
        assert!(matches!(f.0, Some(ClientOutcome::Decoded { .. })));
    }
    let (serial, server) = run_killed(n, 1, false, 7, bytes, &[6, 11]);
    assert_eq!(serial, baseline, "serial kill/restart must be invisible");
    let (sharded, _) = run_killed(n, 3, true, 7, bytes, &[6, 11]);
    assert_eq!(sharded, baseline, "sharded kill/restart must be invisible");

    let stats = server.stats();
    assert_eq!(stats.snapshots, 2);
    assert_eq!(stats.restore_dropped, 0);
    assert!(
        stats.restored >= n as u64,
        "every in-flight session restored"
    );
    assert_eq!(stats.decoded, n as u64);
    assert_eq!(
        stats.admitted,
        stats.decoded
            + stats.exhausted
            + stats.abandoned
            + stats.shed
            + stats.expired
            + stats.restore_dropped,
        "conservation must close with zero lost flows"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random dialogue prefixes: for any kill schedule, flow count and
    /// payload, snapshot→restore→resume is event-identical to the
    /// uninterrupted twin, serially and sharded.
    #[test]
    fn prop_restart_identity(
        n in 1usize..4,
        bytes in 2usize..6,
        salt in 0u64..1000,
        first_kill in 3u64..24,
        second_gap in 0u64..12,
    ) {
        let baseline = run_uninterrupted(n, 1, false, salt, bytes);
        let kills: Vec<u64> = if second_gap == 0 {
            vec![first_kill]
        } else {
            vec![first_kill, first_kill + second_gap]
        };
        let (serial, server) = run_killed(n, 1, false, salt, bytes, &kills);
        prop_assert_eq!(&serial, &baseline);
        let (sharded, _) = run_killed(n, 3, true, salt, bytes, &kills);
        prop_assert_eq!(&sharded, &baseline);

        let stats = server.stats();
        prop_assert_eq!(stats.restore_dropped, 0);
        prop_assert_eq!(
            stats.admitted,
            stats.decoded + stats.exhausted + stats.abandoned + stats.shed
                + stats.expired + stats.restore_dropped
        );
    }
}

/// The detach TTL survives the restart: a session detached before the
/// kill expires at its original absolute deadline on the restored
/// server — neither instantly (the restored clock resumes, it does not
/// restart at zero) nor never (the deadline is persisted).
#[test]
fn detached_ttl_survives_restore() {
    let (mut server, mut clients) = new_fleet(1, 1, 3, 6);
    for _ in 0..6 {
        tick_all(&mut server, &mut clients, false);
    }
    assert!(!clients[0].is_done(), "flow must still be mid-stream");
    // Sever the connection without resuming: the session detaches.
    let (dead_local, _dead_remote) = loopback_pair(16);
    drop(clients[0].reconnect(dead_local));
    for _ in 0..3 {
        server.tick();
    }
    assert_eq!(server.detached_sessions(), 1);

    let mut buf = Vec::new();
    server.snapshot_into(&mut buf).unwrap();
    let mut restored = Server::<LoopbackTransport>::restore(serve_cfg(1), &buf).unwrap();
    assert_eq!(restored.detached_sessions(), 1);

    // Not even close to the TTL yet: the orphan must survive.
    for _ in 0..32 {
        restored.tick();
    }
    assert_eq!(
        restored.detached_sessions(),
        1,
        "TTL must not restart at zero-but-expired"
    );
    assert_eq!(restored.stats().expired, 0);

    // Past the absolute deadline it expires exactly once.
    for _ in 0..DETACH_TTL {
        restored.tick();
    }
    assert_eq!(
        restored.detached_sessions(),
        0,
        "TTL must not become immortal"
    );
    assert_eq!(restored.stats().expired, 1);
    assert_eq!(restored.live_sessions(), 0);
}

/// Secret pinning is mandatory on both sides, and a mismatched secret
/// is a typed refusal — restoring under a different secret would leave
/// every client's token unverifiable.
#[test]
fn secret_pinning_is_enforced() {
    let mut unpinned: Server<LoopbackTransport> = Server::new(ServeConfig::default()).unwrap();
    let mut buf = Vec::new();
    assert!(matches!(
        unpinned.snapshot_into(&mut buf),
        Err(SpinalError::Snapshot {
            kind: SnapshotErrorKind::SecretNotPinned
        })
    ));

    let (mut server, mut clients) = new_fleet(2, 1, 9, 4);
    for _ in 0..5 {
        tick_all(&mut server, &mut clients, false);
    }
    server.snapshot_into(&mut buf).unwrap();

    assert!(matches!(
        Server::<LoopbackTransport>::restore(ServeConfig::default(), &buf),
        Err(SpinalError::Snapshot {
            kind: SnapshotErrorKind::SecretNotPinned
        })
    ));
    let other = ServeConfig {
        resume_secret: Some(SECRET ^ 1),
        ..serve_cfg(1)
    };
    assert!(matches!(
        Server::<LoopbackTransport>::restore(other, &buf),
        Err(SpinalError::Snapshot {
            kind: SnapshotErrorKind::SecretMismatch
        })
    ));
}

/// Builds a mid-dialogue snapshot with both in-flight and settled
/// sessions for the adversarial arms.
fn sample_snapshot() -> (Vec<u8>, usize) {
    let (mut server, mut clients) = new_fleet(3, 1, 5, 4);
    for _ in 0..8 {
        tick_all(&mut server, &mut clients, false);
    }
    let mut buf = Vec::new();
    server.snapshot_into(&mut buf).unwrap();
    let pending = server.live_sessions();
    assert!(pending >= 1, "snapshot must carry in-flight sessions");
    (buf, pending)
}

/// Truncation at every prefix length: a typed `Snapshot` error or a
/// clean restore whose drop accounting covers every lost in-flight
/// session — never a panic, never a lost flow.
#[test]
fn truncation_at_every_boundary_is_typed_or_accounted() {
    let (snap, pending) = sample_snapshot();
    let mut restored_any = 0usize;
    for cut in 0..snap.len() {
        match Server::<LoopbackTransport>::restore(serve_cfg(1), &snap[..cut]) {
            Err(SpinalError::Snapshot { .. }) => {}
            Err(e) => panic!("prefix {cut}: non-snapshot error {e:?}"),
            Ok(server) => {
                restored_any += 1;
                let stats = server.stats();
                assert_eq!(
                    server.live_sessions() as u64 + stats.restore_dropped,
                    pending as u64,
                    "prefix {cut}: every in-flight session restored or counted dropped"
                );
            }
        }
    }
    assert!(
        restored_any > 0,
        "some boundary prefixes must restore with drops"
    );
    // The untruncated image restores everything.
    let full = Server::<LoopbackTransport>::restore(serve_cfg(1), &snap).unwrap();
    assert_eq!(full.live_sessions(), pending);
    assert_eq!(full.stats().restore_dropped, 0);
}

/// Single-byte corruption at every position: typed error or a restore
/// whose drops are accounted; a flow that does resume must get its own
/// payload (wrong-session attach is impossible — token auth binds the
/// entry to the secret).
#[test]
fn single_byte_corruption_never_panics_and_never_misattaches() {
    let (snap, pending) = sample_snapshot();
    for pos in 0..snap.len() {
        let mut dmg = snap.clone();
        dmg[pos] ^= 0x20;
        match Server::<LoopbackTransport>::restore(serve_cfg(1), &dmg) {
            Err(SpinalError::Snapshot { .. }) => {}
            Err(e) => panic!("corrupt byte {pos}: non-snapshot error {e:?}"),
            Ok(server) => {
                let stats = server.stats();
                assert!(
                    server.live_sessions() as u64 + stats.restore_dropped >= pending as u64,
                    "corrupt byte {pos}: in-flight sessions neither restored nor counted"
                );
            }
        }
    }
}

/// A forged entry (valid framing, wrong token auth) is dropped and
/// charged to `restore_dropped`; honest entries restore around it.
#[test]
fn forged_token_auth_is_dropped_not_attached() {
    let (snap, pending) = sample_snapshot();
    // Flip a bit inside some entry's token-auth field, then re-frame:
    // easiest robust forgery is corrupting bytes until a case restores
    // with drops — covered above — so here forge at the source: restore
    // under the right secret after snapshotting under it, but hand the
    // restorer a snapshot whose *secret probe* matches while one entry
    // was minted under a different secret. Build it by splicing an
    // entry section from a snapshot taken under another secret.
    let other_cfg = ServeConfig {
        resume_secret: Some(SECRET ^ 0xFFFF),
        ..serve_cfg(1)
    };
    let mut other_server = Server::new(other_cfg).unwrap();
    let (local, remote) = loopback_pair(1 << 16);
    other_server.add_connection(remote);
    let mut other_client = ServeClient::new(local, &client_cfg(9), &payload(9, 4, 5)).unwrap();
    for _ in 0..8 {
        other_server.tick();
        other_client.tick();
    }
    let mut foreign = Vec::new();
    other_server.snapshot_into(&mut foreign).unwrap();

    // Sections: [len u32][payload][crc u32] after the 5-byte preamble.
    let section = |img: &[u8], idx: usize| -> (usize, usize) {
        let mut at = 5;
        for _ in 0..idx {
            let len = u32::from_le_bytes(img[at..at + 4].try_into().unwrap()) as usize;
            at += 8 + len;
        }
        let len = u32::from_le_bytes(img[at..at + 4].try_into().unwrap()) as usize;
        (at, 8 + len)
    };
    let (f_at, f_len) = section(&foreign, 1);
    let mut spliced = snap.clone();
    spliced.extend_from_slice(&foreign[f_at..f_at + f_len]);

    let server = Server::<LoopbackTransport>::restore(serve_cfg(1), &spliced).unwrap();
    // The spliced entry's auth was minted under the other secret: it
    // must not attach. Honest sessions restore untouched; the forged
    // pending entry is not charged against *this* snapshot's pending
    // count, so the conservation delta stays zero.
    assert_eq!(server.live_sessions(), pending);
    assert_eq!(server.stats().restore_dropped, 0);
    assert_eq!(server.detached_sessions(), {
        let honest = Server::<LoopbackTransport>::restore(serve_cfg(1), &snap).unwrap();
        honest.detached_sessions()
    });
}

/// Deterministic byte soup never panics the restorer.
#[test]
fn byte_soup_is_rejected_typed() {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut soup = Vec::new();
    for len in [0usize, 1, 4, 5, 64, 256, 1024] {
        soup.clear();
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            soup.push((x >> 53) as u8);
        }
        match Server::<LoopbackTransport>::restore(serve_cfg(1), &soup) {
            Err(SpinalError::Snapshot { .. }) => {}
            Err(e) => panic!("soup len {len}: non-snapshot error {e:?}"),
            Ok(_) => panic!("soup len {len}: random bytes must not restore"),
        }
    }
}

/// After `ResumeRejected` (the restored server no longer holds the
/// session — here: shed by TTL), `ServeClient::restart` renounces the
/// token, replays HELLO from a rewound transmitter, and the flow still
/// decodes its own payload.
#[test]
fn resume_rejected_then_restart_recovers() {
    let (mut server, mut clients) = new_fleet(1, 1, 11, 4);
    for _ in 0..6 {
        tick_all(&mut server, &mut clients, false);
    }
    let token = clients[0].resume_token().expect("admitted");
    assert!(!clients[0].is_done());

    // Kill the server; restore; let the detached session expire.
    let mut buf = Vec::new();
    server.snapshot_into(&mut buf).unwrap();
    let mut server = Server::restore(serve_cfg(1), &buf).unwrap();
    for _ in 0..(DETACH_TTL + 8) {
        server.tick();
    }
    assert_eq!(server.detached_sessions(), 0);
    assert_eq!(server.stats().expired, 1);

    // Resume with the stale token: typed rejection, not a hang.
    let (local, remote) = loopback_pair(1 << 16);
    server.add_resume_connection(remote, token);
    drop(clients[0].reconnect(local));
    for _ in 0..MAX_TICKS {
        if tick_all(&mut server, &mut clients, false) {
            break;
        }
    }
    assert_eq!(clients[0].outcome(), Some(ClientOutcome::ResumeRejected));

    // Restart from scratch: fresh HELLO, rewound stream, full decode.
    let (local, remote) = loopback_pair(1 << 16);
    server.add_connection(remote);
    drop(clients[0].restart(local));
    for _ in 0..MAX_TICKS {
        if tick_all(&mut server, &mut clients, false) {
            break;
        }
    }
    assert!(
        matches!(clients[0].outcome(), Some(ClientOutcome::Decoded { .. })),
        "restarted flow must decode, got {:?}",
        clients[0].outcome()
    );
    assert_eq!(clients[0].decoded_payload(), Some(&payload(0, 4, 11)));
    assert_eq!(server.stats().resume_rejected, 1);
}
