//! The versioned warm-restart snapshot format.
//!
//! A snapshot is a self-delimiting byte image of a server's pool state:
//! a 5-byte preamble (magic + version) followed by CRC-framed
//! *sections*, each `[len: u32 LE][payload][crc32: u32 LE]` with the
//! CRC taken over the payload alone. Section 0 is the header (tick
//! counters, resume-secret probe, aggregate stats, latency samples);
//! every further section is one session *entry* — either a pending
//! in-flight decode (code shape, receive dynamics, the full observation
//! set, and optionally the packed checkpoint blob) or a terminal
//! verdict held for replay.
//!
//! The framing is built for graceful degradation on untrusted bytes:
//!
//! * a bad preamble or an unparseable header rejects the whole snapshot
//!   with a typed [`SpinalError::Snapshot`] — there is nothing safe to
//!   restore without the header;
//! * an entry section whose CRC or body fails validation is *skipped*,
//!   dropping only that session (the header's pending count lets the
//!   restorer account for every drop);
//! * a section length that does not fit the remaining bytes is a
//!   truncation — typed error, never a panic and never an out-of-range
//!   slice.
//!
//! Nothing here checks resume-token authenticity; the restorer does,
//! against its own pinned secret, so a snapshot (or a forgery) can
//! never attach a session the server would not itself have minted a
//! token for.

use spinal_core::bits::BitVec;
use spinal_core::decode::Observations;
use spinal_core::error::{SnapshotErrorKind, SpinalError};
use spinal_core::symbol::{IqSymbol, Slot};
use spinal_link::FeedbackMode;

use crate::wire::ResumeToken;

/// The four magic bytes opening every snapshot.
pub(crate) const SNAP_MAGIC: [u8; 4] = *b"SNAP";

/// The snapshot-format version this build writes and restores.
pub(crate) const SNAP_VERSION: u8 = 1;

/// Preamble length: magic + version byte.
const PREAMBLE_LEN: usize = SNAP_MAGIC.len() + 1;

/// Section frame overhead: length prefix + CRC trailer.
const SECTION_OVERHEAD: usize = 8;

fn snap_err(kind: SnapshotErrorKind) -> SpinalError {
    SpinalError::Snapshot { kind }
}

/// Bitwise CRC-32 (IEEE 802.3, reflected 0xEDB88320) — a handful of
/// sections per snapshot, so table-free is plenty.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends the magic + version preamble.
pub(crate) fn write_preamble(out: &mut Vec<u8>) {
    out.extend_from_slice(&SNAP_MAGIC);
    out.push(SNAP_VERSION);
}

/// Appends one CRC-framed section whose payload `fill` writes, then
/// backpatches the length prefix and appends the CRC trailer.
pub(crate) fn write_section(out: &mut Vec<u8>, fill: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    let payload_at = out.len();
    fill(out);
    let len = (out.len() - payload_at) as u32;
    out[len_at..payload_at].copy_from_slice(&len.to_le_bytes());
    let crc = crc32(&out[payload_at..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// The header section: restart-critical counters and aggregate
/// telemetry.
pub(crate) struct SnapshotHeader {
    /// Server tick at snapshot time (all persisted deadlines are
    /// absolute ticks against this clock).
    pub tick: u64,
    /// Next admission-order connection id (persisting it keeps restored
    /// token ids collision-free with post-restart admissions).
    pub next_conn_id: u64,
    /// `resume_auth(secret, PROBE_ID)` — lets the restorer detect a
    /// secret mismatch without ever writing the secret itself.
    pub secret_probe: u64,
    /// Highest shard-pool drive round (detach bookkeeping is
    /// round-relative; the restored pools carry it forward).
    pub pool_round: u64,
    /// How many entries are pending (in-flight) sessions — the restorer
    /// charges `restore_dropped` against this so conservation closes
    /// even when corrupt entries are skipped.
    pub pending: u64,
    /// Entry sections that follow the header (diagnostic; framing is
    /// self-delimiting).
    pub entry_count: u32,
    /// Aggregate stats counters, in `ServeStats` field order.
    pub stats: Vec<u64>,
    /// Completion-latency samples, shard-concatenated.
    pub latencies: Vec<u64>,
}

/// Code shape of a pending session — exactly the HELLO fields, so the
/// restorer re-admits through the same validation path as the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PendingShape {
    pub message_bits: u32,
    pub k: u32,
    pub c: u32,
    pub beam: u32,
    pub max_symbols: u64,
    pub seed: u64,
}

/// One session entry, write side (borrows live server state).
pub(crate) struct EntryRef<'a> {
    pub token: ResumeToken,
    pub mode: FeedbackMode,
    pub expected_seq: u64,
    pub first_data_tick: u64,
    pub expires_tick: u64,
    pub body: EntryBodyRef<'a>,
}

/// Entry body, write side.
pub(crate) enum EntryBodyRef<'a> {
    /// In-flight decode: shape + receive dynamics + observations (+ the
    /// packed checkpoint blob when the session holds one).
    Pending {
        shape: PendingShape,
        attempts: u32,
        next_attempt: u64,
        dirty_from: u32,
        obs: &'a Observations<IqSymbol>,
        packed: Option<&'a [u8]>,
    },
    /// Decoded while the snapshot was taken; verdict held for replay.
    Done {
        bits: Option<&'a BitVec>,
        ack: (u64, u32),
    },
    /// Exhausted its symbol budget; close held for replay.
    Exhausted,
    /// Abandoned by the pool; close held for replay.
    Abandoned,
}

/// One session entry, read side (owns its data).
pub(crate) struct ParsedEntry {
    pub token: ResumeToken,
    pub mode: FeedbackMode,
    pub expected_seq: u64,
    pub first_data_tick: u64,
    pub expires_tick: u64,
    pub body: ParsedBody,
}

/// Entry body, read side.
pub(crate) enum ParsedBody {
    Pending {
        shape: PendingShape,
        attempts: u32,
        next_attempt: u64,
        dirty_from: u32,
        obs: Vec<(Slot, IqSymbol)>,
        packed: Option<Vec<u8>>,
    },
    Done {
        bits: Option<BitVec>,
        ack: (u64, u32),
    },
    Exhausted,
    Abandoned,
}

const KIND_PENDING: u8 = 0;
const KIND_DONE: u8 = 1;
const KIND_EXHAUSTED: u8 = 2;
const KIND_ABANDONED: u8 = 3;

/// Serialized size of one observation: pass `u32` + I/Q as two `f64`
/// bit patterns. Used to bound untrusted counts before any allocation.
const OBS_WIRE_LEN: usize = 4 + 8 + 8;

/// Writes the header section.
pub(crate) fn write_header(out: &mut Vec<u8>, h: &SnapshotHeader) {
    write_section(out, |p| {
        p.extend_from_slice(&h.tick.to_le_bytes());
        p.extend_from_slice(&h.next_conn_id.to_le_bytes());
        p.extend_from_slice(&h.secret_probe.to_le_bytes());
        p.extend_from_slice(&h.pool_round.to_le_bytes());
        p.extend_from_slice(&h.pending.to_le_bytes());
        p.extend_from_slice(&h.entry_count.to_le_bytes());
        p.extend_from_slice(&(h.stats.len() as u32).to_le_bytes());
        for &s in &h.stats {
            p.extend_from_slice(&s.to_le_bytes());
        }
        p.extend_from_slice(&(h.latencies.len() as u32).to_le_bytes());
        for &l in &h.latencies {
            p.extend_from_slice(&l.to_le_bytes());
        }
    });
}

/// Writes one entry section.
pub(crate) fn write_entry(out: &mut Vec<u8>, e: &EntryRef<'_>) {
    write_section(out, |p| {
        p.extend_from_slice(&e.token.id.to_le_bytes());
        p.extend_from_slice(&e.token.auth.to_le_bytes());
        // Same (tag, period) convention the wire's HELLO uses.
        let (mode_tag, period) = match e.mode {
            FeedbackMode::AckOnly => (0u8, 0u64),
            FeedbackMode::Nack => (1, 0),
            FeedbackMode::CumulativeAck { period } => (2, period),
        };
        p.push(mode_tag);
        p.extend_from_slice(&period.to_le_bytes());
        p.extend_from_slice(&e.expected_seq.to_le_bytes());
        p.extend_from_slice(&e.first_data_tick.to_le_bytes());
        p.extend_from_slice(&e.expires_tick.to_le_bytes());
        match &e.body {
            EntryBodyRef::Pending {
                shape,
                attempts,
                next_attempt,
                dirty_from,
                obs,
                packed,
            } => {
                p.push(KIND_PENDING);
                p.extend_from_slice(&shape.message_bits.to_le_bytes());
                p.extend_from_slice(&shape.k.to_le_bytes());
                p.extend_from_slice(&shape.c.to_le_bytes());
                p.extend_from_slice(&shape.beam.to_le_bytes());
                p.extend_from_slice(&shape.max_symbols.to_le_bytes());
                p.extend_from_slice(&shape.seed.to_le_bytes());
                p.extend_from_slice(&attempts.to_le_bytes());
                p.extend_from_slice(&next_attempt.to_le_bytes());
                p.extend_from_slice(&dirty_from.to_le_bytes());
                // Per level in arrival order — the order the decoder's
                // float folds consume, which is what keeps a restored
                // session bit-identical.
                p.extend_from_slice(&obs.n_levels().to_le_bytes());
                for t in 0..obs.n_levels() {
                    let level = obs.at_level(t);
                    p.extend_from_slice(&(level.len() as u32).to_le_bytes());
                    for &(pass, sym) in level {
                        p.extend_from_slice(&pass.to_le_bytes());
                        p.extend_from_slice(&sym.i.to_bits().to_le_bytes());
                        p.extend_from_slice(&sym.q.to_bits().to_le_bytes());
                    }
                }
                match packed {
                    Some(blob) => {
                        p.push(1);
                        p.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                        p.extend_from_slice(blob);
                    }
                    None => p.push(0),
                }
            }
            EntryBodyRef::Done { bits, ack } => {
                p.push(KIND_DONE);
                match bits {
                    Some(b) => {
                        p.push(1);
                        p.extend_from_slice(&(b.len() as u32).to_le_bytes());
                        p.extend_from_slice(b.as_bytes());
                    }
                    None => p.push(0),
                }
                p.extend_from_slice(&ack.0.to_le_bytes());
                p.extend_from_slice(&ack.1.to_le_bytes());
            }
            EntryBodyRef::Exhausted => p.push(KIND_EXHAUSTED),
            EntryBodyRef::Abandoned => p.push(KIND_ABANDONED),
        }
    });
}

/// Bounds-checked little-endian cursor over one section payload.
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.b.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn done(&self) -> bool {
        self.pos == self.b.len()
    }
}

/// Walks a snapshot's preamble and CRC-framed sections.
pub(crate) struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the preamble.
    ///
    /// # Errors
    ///
    /// [`SpinalError::Snapshot`] — `Truncated` under the preamble
    /// length, `BadMagic` / `BadVersion` on a foreign image.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SpinalError> {
        if bytes.len() < PREAMBLE_LEN {
            return Err(snap_err(SnapshotErrorKind::Truncated));
        }
        if bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return Err(snap_err(SnapshotErrorKind::BadMagic));
        }
        if bytes[SNAP_MAGIC.len()] != SNAP_VERSION {
            return Err(snap_err(SnapshotErrorKind::BadVersion));
        }
        Ok(Self {
            bytes,
            pos: PREAMBLE_LEN,
        })
    }

    /// Whether every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Takes the next section. `Ok(Some(payload))` on a CRC-clean
    /// section, `Ok(None)` for a well-framed section whose CRC fails
    /// (the caller skips just that section).
    ///
    /// # Errors
    ///
    /// [`SpinalError::Snapshot`] with `Truncated` when the frame
    /// cannot fit the remaining bytes.
    pub fn take_section(&mut self) -> Result<Option<&'a [u8]>, SpinalError> {
        let rest = &self.bytes[self.pos..];
        if rest.len() < SECTION_OVERHEAD {
            return Err(snap_err(SnapshotErrorKind::Truncated));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if rest.len() - SECTION_OVERHEAD < len {
            return Err(snap_err(SnapshotErrorKind::Truncated));
        }
        let payload = &rest[4..4 + len];
        let crc = u32::from_le_bytes(rest[4 + len..SECTION_OVERHEAD + len].try_into().expect("4"));
        self.pos += SECTION_OVERHEAD + len;
        if crc32(payload) != crc {
            return Ok(None);
        }
        Ok(Some(payload))
    }
}

/// Parses the header payload.
///
/// # Errors
///
/// [`SpinalError::Snapshot`] with `Corrupt` on any structural
/// violation (the header is load-bearing; there is no partial header).
pub(crate) fn parse_header(payload: &[u8]) -> Result<SnapshotHeader, SpinalError> {
    let corrupt = || snap_err(SnapshotErrorKind::Corrupt);
    let mut r = Rd::new(payload);
    let tick = r.u64().ok_or_else(corrupt)?;
    let next_conn_id = r.u64().ok_or_else(corrupt)?;
    let secret_probe = r.u64().ok_or_else(corrupt)?;
    let pool_round = r.u64().ok_or_else(corrupt)?;
    let pending = r.u64().ok_or_else(corrupt)?;
    let entry_count = r.u32().ok_or_else(corrupt)?;
    let n_stats = r.u32().ok_or_else(corrupt)? as usize;
    if n_stats > r.remaining() / 8 {
        return Err(corrupt());
    }
    let mut stats = Vec::with_capacity(n_stats);
    for _ in 0..n_stats {
        stats.push(r.u64().ok_or_else(corrupt)?);
    }
    let n_lat = r.u32().ok_or_else(corrupt)? as usize;
    if n_lat > r.remaining() / 8 {
        return Err(corrupt());
    }
    let mut latencies = Vec::with_capacity(n_lat);
    for _ in 0..n_lat {
        latencies.push(r.u64().ok_or_else(corrupt)?);
    }
    if !r.done() {
        return Err(corrupt());
    }
    Ok(SnapshotHeader {
        tick,
        next_conn_id,
        secret_probe,
        pool_round,
        pending,
        entry_count,
        stats,
        latencies,
    })
}

/// Parses one entry payload. `None` means the entry is structurally
/// invalid and must be dropped (never a panic, never a partial entry).
pub(crate) fn parse_entry(payload: &[u8]) -> Option<ParsedEntry> {
    let mut r = Rd::new(payload);
    let id = r.u64()?;
    let auth = r.u64()?;
    let mode_tag = r.u8()?;
    let period = r.u64()?;
    let mode = match (mode_tag, period) {
        (0, 0) => FeedbackMode::AckOnly,
        (1, 0) => FeedbackMode::Nack,
        (2, p) if p > 0 => FeedbackMode::CumulativeAck { period: p },
        _ => return None,
    };
    let expected_seq = r.u64()?;
    let first_data_tick = r.u64()?;
    let expires_tick = r.u64()?;
    let body = match r.u8()? {
        KIND_PENDING => {
            let shape = PendingShape {
                message_bits: r.u32()?,
                k: r.u32()?,
                c: r.u32()?,
                beam: r.u32()?,
                max_symbols: r.u64()?,
                seed: r.u64()?,
            };
            let attempts = r.u32()?;
            let next_attempt = r.u64()?;
            let dirty_from = r.u32()?;
            let n_levels = r.u32()?;
            let mut obs = Vec::new();
            for t in 0..n_levels {
                let count = r.u32()? as usize;
                if count > r.remaining() / OBS_WIRE_LEN {
                    return None;
                }
                obs.reserve(count);
                for _ in 0..count {
                    let pass = r.u32()?;
                    let i = f64::from_bits(r.u64()?);
                    let q = f64::from_bits(r.u64()?);
                    if !i.is_finite() || !q.is_finite() {
                        return None;
                    }
                    obs.push((Slot::new(t, pass), IqSymbol::new(i, q)));
                }
            }
            let packed = match r.u8()? {
                0 => None,
                1 => {
                    let len = r.u32()? as usize;
                    Some(r.bytes(len)?.to_vec())
                }
                _ => return None,
            };
            ParsedBody::Pending {
                shape,
                attempts,
                next_attempt,
                dirty_from,
                obs,
                packed,
            }
        }
        KIND_DONE => {
            let bits = match r.u8()? {
                0 => None,
                1 => {
                    let n_bits = r.u32()? as usize;
                    let bytes = r.bytes(n_bits.div_ceil(8))?;
                    let mut b = BitVec::from_bytes(bytes);
                    b.truncate(n_bits);
                    // Canonical padding: re-encoding must reproduce the
                    // stored bytes exactly.
                    if b.as_bytes() != bytes {
                        return None;
                    }
                    Some(b)
                }
                _ => return None,
            };
            let ack = (r.u64()?, r.u32()?);
            ParsedBody::Done { bits, ack }
        }
        KIND_EXHAUSTED => ParsedBody::Exhausted,
        KIND_ABANDONED => ParsedBody::Abandoned,
        _ => return None,
    };
    if !r.done() {
        return None;
    }
    Some(ParsedEntry {
        token: ResumeToken { id, auth },
        mode,
        expected_seq,
        first_data_tick,
        expires_tick,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> SnapshotHeader {
        SnapshotHeader {
            tick: 42,
            next_conn_id: 7,
            secret_probe: 0xdead_beef,
            pool_round: 99,
            pending: 1,
            entry_count: 2,
            stats: vec![1, 2, 3],
            latencies: vec![10, 20],
        }
    }

    fn write_sample(obs: &Observations<IqSymbol>) -> Vec<u8> {
        let mut out = Vec::new();
        write_preamble(&mut out);
        write_header(&mut out, &sample_header());
        write_entry(
            &mut out,
            &EntryRef {
                token: ResumeToken { id: 5, auth: 77 },
                mode: FeedbackMode::CumulativeAck { period: 3 },
                expected_seq: 12,
                first_data_tick: 4,
                expires_tick: 600,
                body: EntryBodyRef::Pending {
                    shape: PendingShape {
                        message_bits: 96,
                        k: 4,
                        c: 6,
                        beam: 8,
                        max_symbols: 1 << 12,
                        seed: 0x5eed,
                    },
                    attempts: 2,
                    next_attempt: 9,
                    dirty_from: u32::MAX,
                    obs,
                    packed: Some(&[1, 2, 3, 4]),
                },
            },
        );
        let bits = BitVec::from_bools(&[true, false, true]);
        write_entry(
            &mut out,
            &EntryRef {
                token: ResumeToken { id: 6, auth: 78 },
                mode: FeedbackMode::AckOnly,
                expected_seq: 40,
                first_data_tick: u64::MAX,
                expires_tick: 700,
                body: EntryBodyRef::Done {
                    bits: Some(&bits),
                    ack: (40, 3),
                },
            },
        );
        out
    }

    fn sample_obs() -> Observations<IqSymbol> {
        let mut obs = Observations::new(3);
        obs.push(Slot::new(0, 0), IqSymbol::new(1.5, -2.25));
        obs.push(Slot::new(2, 0), IqSymbol::new(0.0, 4.0));
        obs.push(Slot::new(0, 1), IqSymbol::new(-1.0, 0.5));
        obs
    }

    #[test]
    fn roundtrip_preserves_header_and_entries() {
        let obs = sample_obs();
        let img = write_sample(&obs);
        let mut r = SnapshotReader::new(&img).unwrap();
        let h = parse_header(r.take_section().unwrap().unwrap()).unwrap();
        assert_eq!(h.tick, 42);
        assert_eq!(h.next_conn_id, 7);
        assert_eq!(h.secret_probe, 0xdead_beef);
        assert_eq!(h.pool_round, 99);
        assert_eq!(h.pending, 1);
        assert_eq!(h.entry_count, 2);
        assert_eq!(h.stats, vec![1, 2, 3]);
        assert_eq!(h.latencies, vec![10, 20]);

        let e1 = parse_entry(r.take_section().unwrap().unwrap()).unwrap();
        assert_eq!(e1.token, ResumeToken { id: 5, auth: 77 });
        assert_eq!(e1.mode, FeedbackMode::CumulativeAck { period: 3 });
        assert_eq!(e1.expected_seq, 12);
        assert_eq!(e1.expires_tick, 600);
        match e1.body {
            ParsedBody::Pending {
                shape,
                attempts,
                next_attempt,
                dirty_from,
                obs: got,
                packed,
            } => {
                assert_eq!(shape.message_bits, 96);
                assert_eq!(shape.seed, 0x5eed);
                assert_eq!(attempts, 2);
                assert_eq!(next_attempt, 9);
                assert_eq!(dirty_from, u32::MAX);
                // Flattened level-major, arrival order within a level.
                assert_eq!(
                    got,
                    vec![
                        (Slot::new(0, 0), IqSymbol::new(1.5, -2.25)),
                        (Slot::new(0, 1), IqSymbol::new(-1.0, 0.5)),
                        (Slot::new(2, 0), IqSymbol::new(0.0, 4.0)),
                    ]
                );
                assert_eq!(packed.as_deref(), Some(&[1u8, 2, 3, 4][..]));
            }
            _ => panic!("expected pending body"),
        }

        let e2 = parse_entry(r.take_section().unwrap().unwrap()).unwrap();
        match e2.body {
            ParsedBody::Done { bits, ack } => {
                assert_eq!(bits.unwrap(), BitVec::from_bools(&[true, false, true]));
                assert_eq!(ack, (40, 3));
            }
            _ => panic!("expected done body"),
        }
        assert!(r.done());
    }

    #[test]
    fn preamble_violations_are_typed() {
        let img = write_sample(&sample_obs());
        for cut in 0..PREAMBLE_LEN {
            assert!(matches!(
                SnapshotReader::new(&img[..cut]),
                Err(SpinalError::Snapshot {
                    kind: SnapshotErrorKind::Truncated
                })
            ));
        }
        let mut bad = img.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            SnapshotReader::new(&bad),
            Err(SpinalError::Snapshot {
                kind: SnapshotErrorKind::BadMagic
            })
        ));
        let mut skew = img;
        skew[SNAP_MAGIC.len()] = SNAP_VERSION + 1;
        assert!(matches!(
            SnapshotReader::new(&skew),
            Err(SpinalError::Snapshot {
                kind: SnapshotErrorKind::BadVersion
            })
        ));
    }

    #[test]
    fn truncated_sections_are_typed() {
        // Every proper prefix either ends cleanly at a section boundary
        // (fewer sections — the restorer's pending accounting charges
        // the drops) or surfaces a typed Truncated error; no prefix
        // panics or mis-frames.
        let img = write_sample(&sample_obs());
        let full_sections = 3;
        for cut in PREAMBLE_LEN..img.len() {
            let mut r = SnapshotReader::new(&img[..cut]).unwrap();
            let mut sections = 0;
            let outcome = loop {
                if r.done() {
                    break Ok(());
                }
                match r.take_section() {
                    Ok(_) => sections += 1,
                    Err(e) => break Err(e),
                }
            };
            match outcome {
                Ok(()) => assert!(
                    sections < full_sections,
                    "prefix of {cut} bytes cannot hold every section"
                ),
                Err(SpinalError::Snapshot {
                    kind: SnapshotErrorKind::Truncated,
                }) => {}
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn crc_damage_skips_only_the_hit_section() {
        let full = write_sample(&sample_obs());
        // Flip one payload byte in the *second* section (first entry):
        // the header and the final entry must still parse.
        let mut r = SnapshotReader::new(&full).unwrap();
        let _header = r.take_section().unwrap().unwrap();
        let entry1_payload = r.take_section().unwrap().unwrap();
        let entry1_at = entry1_payload.as_ptr() as usize - full.as_ptr() as usize;
        let mut dmg = full.clone();
        dmg[entry1_at + 3] ^= 0x40;

        let mut r = SnapshotReader::new(&dmg).unwrap();
        let h = parse_header(r.take_section().unwrap().unwrap()).unwrap();
        assert_eq!(h.stats.len(), 3);
        assert!(r.take_section().unwrap().is_none(), "hit section skipped");
        let e2 = parse_entry(r.take_section().unwrap().unwrap()).unwrap();
        assert!(matches!(e2.body, ParsedBody::Done { .. }));
        assert!(r.done());
    }

    #[test]
    fn entry_parser_rejects_structural_violations() {
        // Bad feedback mode.
        let mut out = Vec::new();
        write_entry(
            &mut out,
            &EntryRef {
                token: ResumeToken { id: 1, auth: 2 },
                mode: FeedbackMode::AckOnly,
                expected_seq: 0,
                first_data_tick: 0,
                expires_tick: 0,
                body: EntryBodyRef::Exhausted,
            },
        );
        let payload = &out[4..out.len() - 4];
        assert!(parse_entry(payload).is_some());
        let mut bad_mode = payload.to_vec();
        bad_mode[16] = 9;
        assert!(parse_entry(&bad_mode).is_none());
        // Trailing garbage.
        let mut trailing = payload.to_vec();
        trailing.push(0);
        assert!(parse_entry(&trailing).is_none());
        // Non-canonical Done padding.
        let bits = BitVec::from_bools(&[true]);
        let mut done = Vec::new();
        write_entry(
            &mut done,
            &EntryRef {
                token: ResumeToken { id: 1, auth: 2 },
                mode: FeedbackMode::AckOnly,
                expected_seq: 0,
                first_data_tick: 0,
                expires_tick: 0,
                body: EntryBodyRef::Done {
                    bits: Some(&bits),
                    ack: (1, 1),
                },
            },
        );
        let done_payload = done[4..done.len() - 4].to_vec();
        assert!(parse_entry(&done_payload).is_some());
        let mut noncanon = done_payload.clone();
        // The single stored byte holds bit 0 in its MSB; set a padding bit.
        let byte_at = done_payload.len() - 13;
        noncanon[byte_at] |= 0x01;
        assert!(parse_entry(&noncanon).is_none());
    }

    #[test]
    fn byte_soup_never_panics() {
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut soup = Vec::new();
        for len in 0..512usize {
            soup.clear();
            for _ in 0..len {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                soup.push((x >> 56) as u8);
            }
            match SnapshotReader::new(&soup) {
                Err(_) => {}
                Ok(mut r) => {
                    while !r.done() {
                        match r.take_section() {
                            Ok(Some(p)) => {
                                let _ = parse_header(p);
                                let _ = parse_entry(p);
                            }
                            Ok(None) => {}
                            Err(_) => break,
                        }
                    }
                }
            }
        }
    }
}
