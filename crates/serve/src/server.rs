//! The sharded codec-serving event loop.
//!
//! A [`Server`] owns `N` shards; each shard owns one
//! [`MultiDecoder`] pool plus the connections a stable hash assigned to
//! it. One [`tick`](Server::tick) runs every shard through the same
//! cycle:
//!
//! 1. **flush** — drain each connection's bounded egress queue into its
//!    transport (partial sends are backpressure, not errors);
//! 2. **ingress** — unless the egress queue sits above its high-water
//!    mark (backpressure: a slow reader stops being read from), pull
//!    transport bytes through the [`WireDecoder`] and handle each frame
//!    (HELLO admission, DATA ingest with gap-triggered NACKs);
//! 3. **drive** — one [`MultiDecoder::drive_until_into`] round under
//!    the per-tick level budget, turning pool events into feedback
//!    frames (ACK + decoded bits, Close on exhaustion/abandonment) and
//!    completion-latency samples;
//! 4. **snapshot** — periodic cumulative-ACK frames for sessions that
//!    negotiated [`FeedbackMode::CumulativeAck`].
//!
//! Shards never share mutable state, so
//! [`tick_sharded`](Server::tick_sharded) runs them on scoped threads
//! with bit-identical results to the serial [`tick`](Server::tick) —
//! the same contract the pool's own `workers` knob upholds. The serial
//! path is the allocation-free steady state (the sharded path allocates
//! only its thread stacks).

use std::thread;

use spinal_core::bits::BitVec;
use spinal_core::decode::{AwgnCost, BeamConfig};
use spinal_core::error::{SpinalError, WireErrorKind};
use spinal_core::frame::{AnyTerminator, Checksum};
use spinal_core::hash::Lookup3;
use spinal_core::map::LinearMapper;
use spinal_core::params::CodeParams;
use spinal_core::puncture::{StridedPuncture, SubpassOrder};
use spinal_core::sched::{MultiConfig, MultiDecoder, SessionEvent, SessionId, SessionOutcome};
use spinal_core::session::{Poll, RxConfig};
use spinal_core::symbol::{IqSymbol, Slot};
use spinal_core::SpinalCode;
use spinal_link::FeedbackMode;
use spinal_sim::stats::derive_seed;

use crate::transport::Transport;
use crate::wire::{encode_frame, CloseReason, Frame, Hello, WireDecoder};

type Pool = MultiDecoder<Lookup3, LinearMapper, AwgnCost, StridedPuncture>;

/// The decoder-shape profile a server imposes on admitted sessions.
///
/// Clients negotiate code shape (`k`, `c`, beam, seed) per session; the
/// puncturing schedule is serving policy. The default is the paper's
/// stride-8 bit-reversed order; [`deep_first`](ServeProfile::deep_first)
/// opts into the deep-first sub-pass order (validated at the Figure 2
/// shape by `bench_session`'s `deep_first_grid`, where finishing
/// sub-passes deepest-first reaches decodable prefixes sooner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeProfile {
    /// Sub-pass emission order within each stride group.
    pub order: SubpassOrder,
    /// Puncture stride (power of two in `2..=64`).
    pub stride: u32,
}

impl ServeProfile {
    /// The paper's schedule: stride 8, bit-reversed sub-pass order.
    pub fn paper_default() -> Self {
        Self {
            order: SubpassOrder::BitReversed,
            stride: 8,
        }
    }

    /// Opt-in deep-first serving schedule (stride 8).
    pub fn deep_first() -> Self {
        Self {
            order: SubpassOrder::DeepFirst,
            stride: 8,
        }
    }
}

impl Default for ServeProfile {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Shard (event-loop) count; connections are spread by stable hash.
    pub shards: usize,
    /// Per-shard decoder-pool configuration. `workers` is forced to 1 —
    /// shards are the parallelism axis here.
    pub pool: MultiConfig,
    /// Tree-level budget one shard tick may spend driving its pool
    /// (the deadline knob of [`MultiDecoder::drive_until_into`]).
    pub drive_budget: u64,
    /// Egress bytes queued per connection above which its ingress stops
    /// being drained (backpressure).
    pub egress_high_water: usize,
    /// Hard cap on queued egress bytes per connection; feedback frames
    /// that would exceed it are dropped (and counted — the protocol
    /// heals via re-ACKs and snapshots).
    pub egress_capacity: usize,
    /// Admission cap on `HELLO.message_bits`.
    pub max_message_bits: u32,
    /// Admission cap on `HELLO.beam`.
    pub max_beam: u32,
    /// Serving schedule profile.
    pub profile: ServeProfile,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            pool: MultiConfig::default(),
            drive_budget: u64::MAX,
            egress_high_water: 16 * 1024,
            egress_capacity: 64 * 1024,
            max_message_bits: 4096,
            max_beam: 1024,
            profile: ServeProfile::paper_default(),
        }
    }
}

impl ServeConfig {
    /// Checks the configuration's invariants.
    ///
    /// # Errors
    ///
    /// [`SpinalError::Wire`] with [`WireErrorKind::Corrupt`] on any
    /// violation (zero shards, inverted egress watermarks, zero caps).
    pub fn validate(&self) -> Result<(), SpinalError> {
        let ok = self.shards >= 1
            && self.egress_high_water >= 1
            && self.egress_capacity >= self.egress_high_water
            && self.max_message_bits >= 1
            && self.max_beam >= 1
            && self.pool.max_sessions >= 1;
        if ok {
            Ok(())
        } else {
            Err(SpinalError::Wire {
                kind: WireErrorKind::Corrupt,
            })
        }
    }
}

/// Aggregate serving counters (summed over shards by
/// [`Server::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Ticks the server has run.
    pub ticks: u64,
    /// Sessions admitted (HELLO → HELLO-ACK).
    pub admitted: u64,
    /// Sessions rejected with BUSY (shard pool full).
    pub busy_rejected: u64,
    /// Sessions that decoded.
    pub decoded: u64,
    /// Sessions that exhausted their symbol budget.
    pub exhausted: u64,
    /// Sessions abandoned by the pool's attempt ceiling.
    pub abandoned: u64,
    /// Connections closed for protocol violations (malformed frames,
    /// bad dialogue order, inadmissible HELLO).
    pub protocol_errors: u64,
    /// Connections whose transport failed or closed.
    pub transport_closed: u64,
    /// Connection-ticks spent in backpressure (ingress not drained).
    pub backpressure_ticks: u64,
    /// Feedback frames dropped at the egress capacity cap.
    pub egress_overflow: u64,
    /// Frames handled.
    pub frames_in: u64,
    /// Symbols ingested.
    pub symbols_in: u64,
}

impl ServeStats {
    fn absorb(&mut self, other: &ServeStats) {
        self.admitted += other.admitted;
        self.busy_rejected += other.busy_rejected;
        self.decoded += other.decoded;
        self.exhausted += other.exhausted;
        self.abandoned += other.abandoned;
        self.protocol_errors += other.protocol_errors;
        self.transport_closed += other.transport_closed;
        self.backpressure_ticks += other.backpressure_ticks;
        self.egress_overflow += other.egress_overflow;
        self.frames_in += other.frames_in;
        self.symbols_in += other.symbols_in;
    }
}

/// Names a connection accepted by [`Server::add_connection`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnHandle {
    shard: u32,
    idx: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    /// Awaiting HELLO.
    Greeting,
    /// Session live in the pool.
    Streaming,
    /// Decoded; later arrivals are re-ACKed.
    Done,
    /// Terminal; egress still flushes, ingress is ignored.
    Closed,
}

struct Conn<T> {
    transport: T,
    wire: WireDecoder,
    egress: Vec<u8>,
    state: ConnState,
    session: Option<SessionId>,
    mode: FeedbackMode,
    expected_seq: u64,
    nacked: bool,
    first_data_tick: u64,
    done_ack: Option<(u64, u32)>,
    decoded_bits: Option<BitVec>,
    last_snapshot: u64,
    backpressured: bool,
    dead: bool,
}

impl<T> Conn<T> {
    fn new(transport: T) -> Self {
        Self {
            transport,
            wire: WireDecoder::new(),
            egress: Vec::new(),
            state: ConnState::Greeting,
            session: None,
            mode: FeedbackMode::AckOnly,
            expected_seq: 0,
            nacked: false,
            first_data_tick: u64::MAX,
            done_ack: None,
            decoded_bits: None,
            last_snapshot: 0,
            backpressured: false,
            dead: false,
        }
    }
}

struct Shard<T> {
    pool: Pool,
    conns: Vec<Option<Conn<T>>>,
    free: Vec<usize>,
    /// Pool slot → connection index (`usize::MAX` = unmapped).
    session_conn: Vec<usize>,
    events: Vec<SessionEvent>,
    rxbuf: Vec<u8>,
    symbols: Vec<(Slot, IqSymbol)>,
    latencies: Vec<u64>,
    stats: ServeStats,
}

impl<T: Transport> Shard<T> {
    fn new(pool_cfg: MultiConfig) -> Self {
        Self {
            pool: Pool::new(pool_cfg),
            conns: Vec::new(),
            free: Vec::new(),
            session_conn: Vec::new(),
            events: Vec::new(),
            rxbuf: Vec::with_capacity(16 * 1024),
            symbols: Vec::new(),
            latencies: Vec::new(),
            stats: ServeStats::default(),
        }
    }
}

/// The sharded codec service. Generic over the byte [`Transport`]
/// (in-process loopback for deterministic benches and tests, TCP for a
/// real deployment).
pub struct Server<T: Transport> {
    cfg: ServeConfig,
    shards: Vec<Shard<T>>,
    tick: u64,
    next_conn_id: u64,
}

impl<T: Transport> Server<T> {
    /// Builds a server.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeConfig::validate`] failures.
    pub fn new(cfg: ServeConfig) -> Result<Self, SpinalError> {
        cfg.validate()?;
        // The serving profile's stride must itself be constructible.
        StridedPuncture::with_order(cfg.profile.stride, cfg.profile.order)?;
        let mut pool_cfg = cfg.pool;
        pool_cfg.workers = 1;
        let shards = (0..cfg.shards).map(|_| Shard::new(pool_cfg)).collect();
        Ok(Self {
            cfg,
            shards,
            tick: 0,
            next_conn_id: 0,
        })
    }

    /// Accepts a connection, assigning it to a shard by stable hash of
    /// its admission order (so a given arrival sequence always lands on
    /// the same shards, regardless of shard-thread scheduling).
    pub fn add_connection(&mut self, transport: T) -> ConnHandle {
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        let shard_i = (derive_seed(0x5EED_C0DE, 41, id) % self.shards.len() as u64) as usize;
        let shard = &mut self.shards[shard_i];
        let conn = Conn::new(transport);
        let idx = match shard.free.pop() {
            Some(i) => {
                shard.conns[i] = Some(conn);
                i
            }
            None => {
                shard.conns.push(Some(conn));
                shard.conns.len() - 1
            }
        };
        ConnHandle {
            shard: shard_i as u32,
            idx: idx as u32,
        }
    }

    /// Runs one serving cycle over every shard, serially. This is the
    /// allocation-free steady-state path.
    pub fn tick(&mut self) {
        self.tick += 1;
        let t = self.tick;
        for shard in &mut self.shards {
            shard_tick(shard, &self.cfg, t);
        }
    }

    /// Reaps connections that are finished: dead transports, and closed
    /// dialogues whose egress has fully flushed. Returns how many were
    /// removed. Call between ticks (it is not part of the zero-alloc
    /// cycle).
    pub fn reap_closed(&mut self) -> usize {
        let mut reaped = 0;
        for shard in &mut self.shards {
            for idx in 0..shard.conns.len() {
                let done = match &shard.conns[idx] {
                    Some(c) => c.dead || (c.state == ConnState::Closed && c.egress.is_empty()),
                    None => false,
                };
                if done {
                    let mut conn = shard.conns[idx].take().expect("checked live");
                    release_session(&mut conn.session, &mut shard.pool, &mut shard.session_conn);
                    shard.free.push(idx);
                    reaped += 1;
                }
            }
        }
        reaped
    }

    /// Aggregate counters, summed over shards.
    pub fn stats(&self) -> ServeStats {
        let mut out = ServeStats {
            ticks: self.tick,
            ..ServeStats::default()
        };
        for shard in &self.shards {
            out.absorb(&shard.stats);
        }
        out
    }

    /// Completion latencies (in ticks, DATA-first-seen → decoded) of
    /// every session that decoded, appended shard by shard.
    pub fn latencies(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend_from_slice(&shard.latencies);
        }
        out
    }

    /// Sessions currently live across all shard pools.
    pub fn live_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.pool.len()).sum()
    }

    /// Whether a connection is currently backpressured (its egress sat
    /// above the high-water mark at its last tick, so its ingress was
    /// not drained).
    pub fn is_backpressured(&self, h: ConnHandle) -> bool {
        self.conn(h).is_some_and(|c| c.backpressured)
    }

    /// Whether a connection has reached a terminal state (closed
    /// dialogue or dead transport).
    pub fn is_closed(&self, h: ConnHandle) -> bool {
        self.conn(h)
            .is_none_or(|c| c.dead || c.state == ConnState::Closed)
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn conn(&self, h: ConnHandle) -> Option<&Conn<T>> {
        self.shards
            .get(h.shard as usize)?
            .conns
            .get(h.idx as usize)?
            .as_ref()
    }
}

impl<T: Transport + Send> Server<T> {
    /// Runs one serving cycle with one scoped thread per shard.
    ///
    /// Shards share no mutable state — each owns its pool, connections
    /// and counters — so the result is bit-identical to the serial
    /// [`tick`](Server::tick): same frames, same latencies, same stats,
    /// for any shard count.
    pub fn tick_sharded(&mut self) {
        self.tick += 1;
        let t = self.tick;
        let cfg = &self.cfg;
        thread::scope(|scope| {
            for shard in &mut self.shards {
                scope.spawn(move || shard_tick(shard, cfg, t));
            }
        });
    }
}

/// What one parsed frame asks the connection to do, decoupled from the
/// frame's borrow of the reassembly buffer (symbols land in the shard
/// scratch before the borrow ends).
enum Action {
    Hello(Hello),
    Data { seq: u64, count: usize },
    ClientClose,
    Violation,
}

fn shard_tick<T: Transport>(shard: &mut Shard<T>, cfg: &ServeConfig, tick: u64) {
    let Shard {
        pool,
        conns,
        free: _,
        session_conn,
        events,
        rxbuf,
        symbols,
        latencies,
        stats,
    } = shard;

    // Phases 1 + 2: per-connection flush, then ingress unless
    // backpressured.
    for (idx, conn_slot) in conns.iter_mut().enumerate() {
        let Some(conn) = conn_slot.as_mut() else {
            continue;
        };
        if conn.dead {
            continue;
        }

        if !conn.egress.is_empty() {
            match conn.transport.send(&conn.egress) {
                Ok(0) => {}
                Ok(n) => {
                    conn.egress.drain(..n);
                }
                Err(_) => {
                    kill(conn, pool, session_conn, stats);
                    continue;
                }
            }
        }
        conn.backpressured = conn.egress.len() >= cfg.egress_high_water;
        if conn.backpressured {
            stats.backpressure_ticks += 1;
            continue;
        }

        rxbuf.clear();
        match conn.transport.recv(rxbuf) {
            Ok(0) => {}
            Ok(_) => conn.wire.push_bytes(rxbuf),
            Err(_) => {
                // Let buffered frames finish the dialogue before the
                // close is surfaced; a dead transport with a clean
                // buffer is an orderly close.
                conn.dead = true;
                stats.transport_closed += 1;
            }
        }

        loop {
            if conn.state == ConnState::Closed {
                break;
            }
            let action = match conn.wire.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame::Hello(h))) => Action::Hello(h),
                Ok(Some(Frame::Data { seq, run })) => {
                    symbols.clear();
                    run.copy_into(symbols);
                    Action::Data {
                        seq,
                        count: symbols.len(),
                    }
                }
                Ok(Some(Frame::Close { .. })) => Action::ClientClose,
                // Server-to-client frames arriving at the server are a
                // dialogue violation, as is anything malformed.
                Ok(Some(_)) => Action::Violation,
                Err(_) => Action::Violation,
            };
            stats.frames_in += 1;
            match action {
                Action::Hello(h) => {
                    if conn.state != ConnState::Greeting {
                        protocol_close(conn, pool, session_conn, stats, cfg);
                        break;
                    }
                    match admit(&h, cfg, pool) {
                        Ok(id) => {
                            let slot = id.slot();
                            if session_conn.len() <= slot {
                                session_conn.resize(slot + 1, usize::MAX);
                            }
                            session_conn[slot] = idx;
                            conn.session = Some(id);
                            conn.mode = h.mode;
                            conn.state = ConnState::Streaming;
                            conn.last_snapshot = tick;
                            stats.admitted += 1;
                            enqueue(
                                &mut conn.egress,
                                cfg,
                                &Frame::HelloAck { token: slot as u64 },
                                stats,
                            );
                        }
                        Err(SpinalError::PoolFull {
                            live,
                            max_sessions: max,
                        }) => {
                            stats.busy_rejected += 1;
                            enqueue(
                                &mut conn.egress,
                                cfg,
                                &Frame::Busy {
                                    live: live.min(u32::MAX as usize) as u32,
                                    max_sessions: max.min(u32::MAX as usize) as u32,
                                },
                                stats,
                            );
                            conn.state = ConnState::Closed;
                        }
                        Err(_) => {
                            protocol_close(conn, pool, session_conn, stats, cfg);
                            break;
                        }
                    }
                }
                Action::Data { seq, count } => match conn.state {
                    ConnState::Greeting => {
                        protocol_close(conn, pool, session_conn, stats, cfg);
                        break;
                    }
                    ConnState::Done => {
                        // Re-ACK so a lost ACK heals off the sender's
                        // own continued transmissions.
                        if let Some((symbols_used, attempts)) = conn.done_ack {
                            enqueue(
                                &mut conn.egress,
                                cfg,
                                &Frame::Ack {
                                    symbols_used,
                                    attempts,
                                },
                                stats,
                            );
                        }
                    }
                    ConnState::Closed => {}
                    ConnState::Streaming => {
                        stats.symbols_in += count as u64;
                        if conn.first_data_tick == u64::MAX {
                            conn.first_data_tick = tick;
                        }
                        if seq > conn.expected_seq {
                            if conn.mode == FeedbackMode::Nack && !conn.nacked {
                                enqueue(
                                    &mut conn.egress,
                                    cfg,
                                    &Frame::Nack {
                                        expected_seq: conn.expected_seq,
                                    },
                                    stats,
                                );
                                conn.nacked = true;
                            }
                        } else {
                            // In-order or replayed-from-the-gap data:
                            // the NACK did its job (or none was owed).
                            conn.nacked = false;
                        }
                        conn.expected_seq = conn.expected_seq.max(seq + count as u64);
                        let id = conn.session.expect("streaming implies session");
                        match pool.ingest_at(id, symbols) {
                            Ok(()) => {}
                            Err(_) => {
                                protocol_close(conn, pool, session_conn, stats, cfg);
                                break;
                            }
                        }
                    }
                },
                Action::ClientClose => {
                    release_session(&mut conn.session, pool, session_conn);
                    conn.state = ConnState::Closed;
                }
                Action::Violation => {
                    protocol_close(conn, pool, session_conn, stats, cfg);
                    break;
                }
            }
        }
    }

    // Phase 3: drive the pool and turn events into feedback.
    pool.drive_until_into(cfg.drive_budget, events);
    for ev in events.iter().copied() {
        let Some(&cidx) = session_conn.get(ev.id.slot()) else {
            continue;
        };
        let Some(conn) = conns.get_mut(cidx).and_then(|c| c.as_mut()) else {
            continue;
        };
        match ev.outcome {
            SessionOutcome::Poll(Poll::NeedMore { .. }) | SessionOutcome::Deferred { .. } => {}
            SessionOutcome::Poll(Poll::Decoded {
                symbols_used,
                attempts,
            }) => {
                if conn.first_data_tick != u64::MAX {
                    latencies.push(tick - conn.first_data_tick);
                }
                let rx = pool.remove(ev.id).expect("decoded session is live");
                session_conn[ev.id.slot()] = usize::MAX;
                conn.session = None;
                conn.decoded_bits = rx.payload().cloned();
                conn.done_ack = Some((symbols_used, attempts));
                conn.state = ConnState::Done;
                stats.decoded += 1;
                if let Some(bits) = &conn.decoded_bits {
                    enqueue(
                        &mut conn.egress,
                        cfg,
                        &Frame::Decoded(crate::wire::DecodedBits::from_bits(bits)),
                        stats,
                    );
                }
                if !matches!(conn.mode, FeedbackMode::CumulativeAck { .. }) {
                    enqueue(
                        &mut conn.egress,
                        cfg,
                        &Frame::Ack {
                            symbols_used,
                            attempts,
                        },
                        stats,
                    );
                }
            }
            SessionOutcome::Poll(Poll::Exhausted { .. }) => {
                release_session(&mut conn.session, pool, session_conn);
                conn.state = ConnState::Closed;
                stats.exhausted += 1;
                enqueue(
                    &mut conn.egress,
                    cfg,
                    &Frame::Close {
                        reason: CloseReason::Exhausted,
                    },
                    stats,
                );
            }
            SessionOutcome::Abandoned { .. } => {
                release_session(&mut conn.session, pool, session_conn);
                conn.state = ConnState::Closed;
                stats.abandoned += 1;
                enqueue(
                    &mut conn.egress,
                    cfg,
                    &Frame::Close {
                        reason: CloseReason::Abandoned,
                    },
                    stats,
                );
            }
        }
    }

    // Phase 4: cumulative-ACK snapshots.
    for conn in conns.iter_mut().flatten() {
        let FeedbackMode::CumulativeAck { period } = conn.mode else {
            continue;
        };
        let live = matches!(conn.state, ConnState::Streaming | ConnState::Done);
        if !live || tick.saturating_sub(conn.last_snapshot) < period {
            continue;
        }
        conn.last_snapshot = tick;
        let (decoded, symbols_used) = match (conn.state, conn.done_ack) {
            (ConnState::Done, Some((s, _))) => (true, s),
            _ => {
                let s = conn
                    .session
                    .and_then(|id| pool.get(id))
                    .map_or(0, |rx| rx.symbols());
                (false, s)
            }
        };
        enqueue(
            &mut conn.egress,
            cfg,
            &Frame::CumAck {
                decoded,
                symbols_used,
            },
            stats,
        );
    }
}

/// Validates a HELLO and inserts the session into the shard pool.
fn admit(h: &Hello, cfg: &ServeConfig, pool: &mut Pool) -> Result<SessionId, SpinalError> {
    let shape_ok = h.message_bits >= 1
        && h.message_bits <= cfg.max_message_bits
        && (1..=16).contains(&h.k)
        && (2..=16).contains(&h.c)
        && h.beam >= 1
        && h.beam <= cfg.max_beam
        && h.max_symbols >= 1;
    if !shape_ok {
        return Err(SpinalError::Wire {
            kind: WireErrorKind::Corrupt,
        });
    }
    let params = CodeParams::builder()
        .message_bits(h.message_bits)
        .k(h.k)
        .seed(h.seed)
        .build()
        .map_err(|_| SpinalError::Wire {
            kind: WireErrorKind::Corrupt,
        })?;
    let code = SpinalCode::new(
        params,
        Lookup3::new(h.seed),
        LinearMapper::new(h.c),
        StridedPuncture::with_order(cfg.profile.stride, cfg.profile.order)?,
    );
    let rx = code.rx_session(
        AwgnCost,
        AnyTerminator::crc(Checksum::Crc16),
        RxConfig {
            beam: BeamConfig::with_beam(h.beam as usize),
            max_symbols: h.max_symbols,
            attempt_growth: 1.0,
        },
    )?;
    pool.insert(rx)
}

fn release_session(session: &mut Option<SessionId>, pool: &mut Pool, session_conn: &mut [usize]) {
    if let Some(id) = session.take() {
        let _ = pool.remove(id);
        if let Some(slot) = session_conn.get_mut(id.slot()) {
            *slot = usize::MAX;
        }
    }
}

fn kill<T>(
    conn: &mut Conn<T>,
    pool: &mut Pool,
    session_conn: &mut [usize],
    stats: &mut ServeStats,
) {
    release_session(&mut conn.session, pool, session_conn);
    conn.dead = true;
    stats.transport_closed += 1;
}

fn protocol_close<T>(
    conn: &mut Conn<T>,
    pool: &mut Pool,
    session_conn: &mut [usize],
    stats: &mut ServeStats,
    cfg: &ServeConfig,
) {
    release_session(&mut conn.session, pool, session_conn);
    conn.state = ConnState::Closed;
    stats.protocol_errors += 1;
    enqueue(
        &mut conn.egress,
        cfg,
        &Frame::Close {
            reason: CloseReason::Protocol,
        },
        stats,
    );
}

/// Appends a frame to a connection's bounded egress queue, dropping it
/// (counted) at the capacity cap.
fn enqueue(egress: &mut Vec<u8>, cfg: &ServeConfig, frame: &Frame<'_>, stats: &mut ServeStats) {
    if egress.len() >= cfg.egress_capacity {
        stats.egress_overflow += 1;
        return;
    }
    // Oversized cannot trigger: every server frame is bounded by
    // max_message_bits, far under the frame cap.
    let _ = encode_frame(frame, egress);
}
