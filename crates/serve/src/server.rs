//! The sharded codec-serving event loop.
//!
//! A [`Server`] owns `N` shards; each shard owns one
//! [`MultiDecoder`] pool plus the connections a stable hash assigned to
//! it. One [`tick`](Server::tick) runs every shard through the same
//! cycle:
//!
//! 1. **expire** — detached sessions past their tick TTL are reaped;
//! 2. **flush** — drain each connection's bounded egress queue into its
//!    transport (partial sends are backpressure, not errors), then
//!    re-enqueue any result frame (`Decoded`/`Close`) deferred at the
//!    capacity cap — results are undroppable, they retry every tick;
//! 3. **ingress** — unless the egress queue sits above its high-water
//!    mark (backpressure: a slow reader stops being read from), pull
//!    transport bytes through the [`WireDecoder`] and handle each frame
//!    (HELLO admission, DATA ingest with gap-triggered NACKs, PING/PONG
//!    keepalive, RESUME re-attachment); then enforce the tick-counted
//!    idle deadlines (keepalive probe past `keepalive_idle`, detach and
//!    close past `idle_deadline`);
//! 4. **resume** — deferred RESUME requests re-attach detached sessions
//!    (or replay a verdict reached while detached);
//! 5. **drive** — one [`MultiDecoder::drive_until_into`] round under
//!    the per-tick level budget, turning pool events into feedback
//!    frames (ACK + decoded bits, Close on exhaustion/abandonment) and
//!    completion-latency samples — detached sessions are driven exactly
//!    like attached ones, which is what keeps a later resume
//!    bit-identical to an uninterrupted run;
//! 6. **snapshot** — periodic cumulative-ACK frames for sessions that
//!    negotiated [`FeedbackMode::CumulativeAck`].
//!
//! Connection failure is a first-class event: a dead transport, an idle
//! deadline, a drain deadline or a mid-stream protocol violation
//! *detaches* the session (keyed by the [`ResumeToken`] issued in
//! HELLO-ACK) instead of dropping it, so a reconnecting client resumes
//! mid-decode. Under pool pressure the server sheds the
//! highest-predicted-cost detached session first instead of answering
//! every HELLO with a flat BUSY. [`Server::begin_drain`] starts a
//! graceful drain: GO-AWAY to every peer, no new admissions (resume is
//! still honoured), and sessions still streaming at the deadline are
//! detached with their token and closed.
//!
//! All timers count ticks, never wall-clock time, so every lifecycle
//! path is deterministic. Shards never share mutable state, so
//! [`tick_sharded`](Server::tick_sharded) runs them on scoped threads
//! with bit-identical results to the serial [`tick`](Server::tick) —
//! the same contract the pool's own `workers` knob upholds. The serial
//! path is the allocation-free steady state (the sharded path allocates
//! only its thread stacks).

use std::thread;

use spinal_core::bits::BitVec;
use spinal_core::decode::{AwgnCost, BeamConfig};
use spinal_core::error::{SnapshotErrorKind, SpinalError, WireErrorKind};
use spinal_core::frame::{AnyTerminator, Checksum};
use spinal_core::hash::Lookup3;
use spinal_core::map::LinearMapper;
use spinal_core::params::CodeParams;
use spinal_core::puncture::{StridedPuncture, SubpassOrder};
use spinal_core::sched::{MultiConfig, MultiDecoder, SessionEvent, SessionId, SessionOutcome};
use spinal_core::session::{Poll, RxConfig, RxSession};
use spinal_core::symbol::{IqSymbol, Slot};
use spinal_core::SpinalCode;
use spinal_link::FeedbackMode;
use spinal_sim::stats::derive_seed;

use crate::snapshot::{
    parse_entry, parse_header, write_entry, write_header, write_preamble, EntryBodyRef, EntryRef,
    ParsedBody, PendingShape, SnapshotHeader, SnapshotReader,
};
use crate::transport::Transport;
use crate::wire::{encode_frame, CloseReason, Frame, Hello, ResumeToken, WireDecoder};

type Pool = MultiDecoder<Lookup3, LinearMapper, AwgnCost, StridedPuncture>;

/// `session_conn` values at or above this base point into the shard's
/// detached-entry list instead of its connection list.
const DETACHED_BASE: usize = usize::MAX / 2;

/// Reserved token id whose authenticator a snapshot header carries as
/// its secret probe: a restorer whose pinned secret derives a different
/// authenticator for this id holds a different secret, and every token
/// in the snapshot would be unverifiable — better one typed error than
/// a silent full drop. Connection ids grow from zero and could reach
/// this value only after 2^63 admissions.
const SECRET_PROBE_ID: u64 = u64::MAX;

/// The authenticator half of a [`ResumeToken`] for a given token id,
/// keyed by the server's per-instance resume secret: without the
/// secret a token cannot be minted, so sequential token ids leak no
/// resumption capability. For one server instance the function is
/// pure, so serial and sharded ticks issue identical tokens.
fn resume_auth(secret: u64, id: u64) -> u64 {
    derive_seed(secret, 43, id)
}

/// A process-random 64-bit value for the default resume secret, drawn
/// from the standard library's per-process SipHash keys (no extra
/// dependency, not in any per-tick path).
fn random_secret() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut h = RandomState::new().build_hasher();
    h.write_u64(0x5EED_C0DE);
    h.finish()
}

/// The decoder-shape profile a server imposes on admitted sessions.
///
/// Clients negotiate code shape (`k`, `c`, beam, seed) per session; the
/// puncturing schedule is serving policy. The default is the paper's
/// stride-8 bit-reversed order; [`deep_first`](ServeProfile::deep_first)
/// opts into the deep-first sub-pass order (validated at the Figure 2
/// shape by `bench_session`'s `deep_first_grid`, where finishing
/// sub-passes deepest-first reaches decodable prefixes sooner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeProfile {
    /// Sub-pass emission order within each stride group.
    pub order: SubpassOrder,
    /// Puncture stride (power of two in `2..=64`).
    pub stride: u32,
}

impl ServeProfile {
    /// The paper's schedule: stride 8, bit-reversed sub-pass order.
    pub fn paper_default() -> Self {
        Self {
            order: SubpassOrder::BitReversed,
            stride: 8,
        }
    }

    /// Opt-in deep-first serving schedule (stride 8).
    pub fn deep_first() -> Self {
        Self {
            order: SubpassOrder::DeepFirst,
            stride: 8,
        }
    }
}

impl Default for ServeProfile {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Shard (event-loop) count; connections are spread by stable hash.
    pub shards: usize,
    /// Per-shard decoder-pool configuration. `workers` is forced to 1 —
    /// shards are the parallelism axis here. `detach_ttl` is read as a
    /// *tick* TTL for detached sessions and enforced by the server
    /// itself (the pool's round-based TTL is disabled to avoid
    /// round/tick skew); `detached_budget` bounds orphaned checkpoint
    /// bytes demote-first inside each shard pool.
    pub pool: MultiConfig,
    /// Tree-level budget one shard tick may spend driving its pool
    /// (the deadline knob of [`MultiDecoder::drive_until_into`]).
    pub drive_budget: u64,
    /// Egress bytes queued per connection above which its ingress stops
    /// being drained (backpressure).
    pub egress_high_water: usize,
    /// Hard cap on queued egress bytes per connection; droppable
    /// feedback frames that would exceed it are dropped (and counted —
    /// the protocol heals via re-ACKs and snapshots). Result-bearing
    /// frames (`Decoded`, `Close`) are never dropped: they defer and
    /// retry every tick until the queue has room.
    pub egress_capacity: usize,
    /// Admission cap on `HELLO.message_bits`.
    pub max_message_bits: u32,
    /// Admission cap on `HELLO.beam`.
    pub max_beam: u32,
    /// Ticks without inbound bytes after which a connection is probed
    /// with PING (one outstanding probe until activity resumes).
    /// `u64::MAX` disables probing.
    pub keepalive_idle: u64,
    /// Ticks without inbound bytes after which a connection is declared
    /// dead: its session is detached (resumable by token) and the
    /// transport abandoned. `u64::MAX` disables the deadline.
    pub idle_deadline: u64,
    /// Serving schedule profile.
    pub profile: ServeProfile,
    /// Secret keying the `auth` half of every [`ResumeToken`] this
    /// server issues. `None` (the default) draws a fresh process-random
    /// secret at [`Server::new`], so tokens are unforgeable by network
    /// peers; pin it to `Some(seed)` only where token bytes must
    /// reproduce across separate server instances (e.g. cross-process
    /// determinism harnesses).
    pub resume_secret: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            pool: MultiConfig::default(),
            drive_budget: u64::MAX,
            egress_high_water: 16 * 1024,
            egress_capacity: 64 * 1024,
            max_message_bits: 4096,
            max_beam: 1024,
            keepalive_idle: u64::MAX,
            idle_deadline: u64::MAX,
            profile: ServeProfile::paper_default(),
            resume_secret: None,
        }
    }
}

impl ServeConfig {
    /// Checks the configuration's invariants.
    ///
    /// # Errors
    ///
    /// [`SpinalError::Wire`] with [`WireErrorKind::Corrupt`] on any
    /// violation (zero shards, inverted egress watermarks, zero caps or
    /// deadlines).
    pub fn validate(&self) -> Result<(), SpinalError> {
        let ok = self.shards >= 1
            && self.egress_high_water >= 1
            && self.egress_capacity >= self.egress_high_water
            && self.max_message_bits >= 1
            && self.max_beam >= 1
            && self.keepalive_idle >= 1
            && self.idle_deadline >= 1
            && self.pool.max_sessions >= 1;
        if ok {
            Ok(())
        } else {
            Err(SpinalError::Wire {
                kind: WireErrorKind::Corrupt,
            })
        }
    }
}

/// Aggregate serving counters (summed over shards by
/// [`Server::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Ticks the server has run.
    pub ticks: u64,
    /// Sessions admitted (HELLO → HELLO-ACK).
    pub admitted: u64,
    /// Sessions rejected with BUSY (shard pool full, or draining).
    pub busy_rejected: u64,
    /// Sessions that decoded.
    pub decoded: u64,
    /// Sessions that exhausted their symbol budget.
    pub exhausted: u64,
    /// Sessions abandoned by the pool's attempt ceiling.
    pub abandoned: u64,
    /// Connections closed for protocol violations (malformed frames,
    /// bad dialogue order, inadmissible HELLO).
    pub protocol_errors: u64,
    /// Connections whose transport failed or closed.
    pub transport_closed: u64,
    /// Connection-ticks spent in backpressure (ingress not drained).
    pub backpressure_ticks: u64,
    /// Droppable feedback frames dropped at the egress capacity cap.
    pub egress_overflow: u64,
    /// Frames handled.
    pub frames_in: u64,
    /// Symbols ingested.
    pub symbols_in: u64,
    /// Sessions detached with resumable state on connection loss (dead
    /// transport, idle deadline, drain deadline, mid-stream protocol
    /// failure).
    pub detached: u64,
    /// Valid RESUME handshakes served (re-attachment or verdict
    /// replay).
    pub resumed: u64,
    /// RESUME requests refused (unknown, corrupted or expired token).
    pub resume_rejected: u64,
    /// Detached sessions abandoned to make room for a new admission
    /// (highest predicted cost first).
    pub shed: u64,
    /// Detached sessions that expired un-resumed at the tick TTL.
    pub expired: u64,
    /// Connections closed by the idle deadline.
    pub idle_closed: u64,
    /// Keepalive PING probes sent.
    pub keepalive_pings: u64,
    /// Result-bearing frames (`Decoded`/`Close`) deferred at the egress
    /// capacity cap (retried, never dropped).
    pub result_deferred: u64,
    /// Warm-restart snapshots serialized by
    /// [`Server::snapshot_into`].
    pub snapshots: u64,
    /// Sessions re-established from a warm-restart snapshot by
    /// [`Server::restore`] — in-flight sessions waiting detached for a
    /// RESUME, plus terminal verdicts held for replay.
    pub restored: u64,
    /// In-flight sessions lost at [`Server::restore`] because their
    /// snapshot section failed validation (CRC damage, structural
    /// corruption, a forged token, or restore-time admission limits).
    /// Counted so the lifecycle conservation law still closes across a
    /// degraded restore: every admitted session ends in exactly one of
    /// decoded / exhausted / abandoned / shed / expired /
    /// restore-dropped.
    pub restore_dropped: u64,
}

/// Number of `u64` counters a [`ServeStats`] serializes to (field
/// order; bumping this bumps the snapshot version).
const STAT_WORDS: usize = 23;

impl ServeStats {
    fn to_words(self) -> [u64; STAT_WORDS] {
        [
            self.ticks,
            self.admitted,
            self.busy_rejected,
            self.decoded,
            self.exhausted,
            self.abandoned,
            self.protocol_errors,
            self.transport_closed,
            self.backpressure_ticks,
            self.egress_overflow,
            self.frames_in,
            self.symbols_in,
            self.detached,
            self.resumed,
            self.resume_rejected,
            self.shed,
            self.expired,
            self.idle_closed,
            self.keepalive_pings,
            self.result_deferred,
            self.snapshots,
            self.restored,
            self.restore_dropped,
        ]
    }

    fn from_words(w: &[u64; STAT_WORDS]) -> Self {
        Self {
            ticks: w[0],
            admitted: w[1],
            busy_rejected: w[2],
            decoded: w[3],
            exhausted: w[4],
            abandoned: w[5],
            protocol_errors: w[6],
            transport_closed: w[7],
            backpressure_ticks: w[8],
            egress_overflow: w[9],
            frames_in: w[10],
            symbols_in: w[11],
            detached: w[12],
            resumed: w[13],
            resume_rejected: w[14],
            shed: w[15],
            expired: w[16],
            idle_closed: w[17],
            keepalive_pings: w[18],
            result_deferred: w[19],
            snapshots: w[20],
            restored: w[21],
            restore_dropped: w[22],
        }
    }

    fn absorb(&mut self, other: &ServeStats) {
        self.admitted += other.admitted;
        self.busy_rejected += other.busy_rejected;
        self.decoded += other.decoded;
        self.exhausted += other.exhausted;
        self.abandoned += other.abandoned;
        self.protocol_errors += other.protocol_errors;
        self.transport_closed += other.transport_closed;
        self.backpressure_ticks += other.backpressure_ticks;
        self.egress_overflow += other.egress_overflow;
        self.frames_in += other.frames_in;
        self.symbols_in += other.symbols_in;
        self.detached += other.detached;
        self.resumed += other.resumed;
        self.resume_rejected += other.resume_rejected;
        self.shed += other.shed;
        self.expired += other.expired;
        self.idle_closed += other.idle_closed;
        self.keepalive_pings += other.keepalive_pings;
        self.result_deferred += other.result_deferred;
        self.snapshots += other.snapshots;
        self.restored += other.restored;
        self.restore_dropped += other.restore_dropped;
    }
}

/// Names a connection accepted by [`Server::add_connection`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnHandle {
    shard: u32,
    idx: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    /// Awaiting HELLO or RESUME.
    Greeting,
    /// Session live in the pool.
    Streaming,
    /// Decoded; later arrivals are re-ACKed.
    Done,
    /// Terminal; egress still flushes, ingress is ignored.
    Closed,
}

struct Conn<T> {
    transport: T,
    wire: WireDecoder,
    egress: Vec<u8>,
    state: ConnState,
    session: Option<SessionId>,
    mode: FeedbackMode,
    expected_seq: u64,
    nacked: bool,
    first_data_tick: u64,
    done_ack: Option<(u64, u32)>,
    decoded_bits: Option<BitVec>,
    last_snapshot: u64,
    backpressured: bool,
    dead: bool,
    /// Admission-order id (global across shards, deterministic).
    conn_id: u64,
    /// Token id this connection's session detaches under — the
    /// original connection's id, carried across resumes so one token
    /// stays valid for the whole session lifetime.
    resume_id: u64,
    last_rx_tick: u64,
    pinged: bool,
    goaway_sent: bool,
    resume_pending: bool,
    /// Decoded result frames deferred at the egress cap; retried from
    /// the cached `decoded_bits`/`done_ack` every tick.
    result_pending: bool,
    /// Close frame deferred at the egress cap.
    close_pending: Option<CloseReason>,
}

impl<T> Conn<T> {
    fn new(transport: T, conn_id: u64, tick: u64) -> Self {
        Self {
            transport,
            wire: WireDecoder::new(),
            egress: Vec::new(),
            state: ConnState::Greeting,
            session: None,
            mode: FeedbackMode::AckOnly,
            expected_seq: 0,
            nacked: false,
            first_data_tick: u64::MAX,
            done_ack: None,
            decoded_bits: None,
            last_snapshot: 0,
            backpressured: false,
            dead: false,
            conn_id,
            resume_id: conn_id,
            last_rx_tick: tick,
            pinged: false,
            goaway_sent: false,
            resume_pending: false,
            result_pending: false,
            close_pending: None,
        }
    }
}

/// What a detached session has concluded so far.
enum DetachedOutcome {
    /// Still decoding (and still driven every tick).
    Pending,
    /// Decoded while detached; held for replay on resume.
    Done {
        bits: Option<BitVec>,
        ack: (u64, u32),
    },
    /// Exhausted its symbol budget while detached.
    Exhausted,
    /// Abandoned by the pool while detached.
    Abandoned,
}

/// A session orphaned by connection loss, resumable by token until its
/// TTL.
struct DetachedEntry {
    token: ResumeToken,
    /// Live pool session for `Pending`; `None` once a verdict landed.
    session: Option<SessionId>,
    outcome: DetachedOutcome,
    mode: FeedbackMode,
    expected_seq: u64,
    first_data_tick: u64,
    expires_tick: u64,
}

struct Shard<T> {
    pool: Pool,
    conns: Vec<Option<Conn<T>>>,
    free: Vec<usize>,
    /// Pool slot → connection index, `DETACHED_BASE + i` for detached
    /// entry `i`, or `usize::MAX` when unmapped.
    session_conn: Vec<usize>,
    detached: Vec<DetachedEntry>,
    /// RESUME requests deferred to after ingress, so re-attachment
    /// never races the death of the connection it supersedes.
    resumes: Vec<(usize, ResumeToken)>,
    events: Vec<SessionEvent>,
    rxbuf: Vec<u8>,
    symbols: Vec<(Slot, IqSymbol)>,
    latencies: Vec<u64>,
    stats: ServeStats,
}

impl<T: Transport> Shard<T> {
    fn new(pool_cfg: MultiConfig) -> Self {
        Self {
            pool: Pool::new(pool_cfg),
            conns: Vec::new(),
            free: Vec::new(),
            session_conn: Vec::new(),
            detached: Vec::new(),
            resumes: Vec::new(),
            events: Vec::new(),
            rxbuf: Vec::with_capacity(16 * 1024),
            symbols: Vec::new(),
            latencies: Vec::new(),
            stats: ServeStats::default(),
        }
    }
}

/// The sharded codec service. Generic over the byte [`Transport`]
/// (in-process loopback for deterministic benches and tests, TCP for a
/// real deployment).
pub struct Server<T: Transport> {
    cfg: ServeConfig,
    shards: Vec<Shard<T>>,
    tick: u64,
    next_conn_id: u64,
    drain_deadline: Option<u64>,
    /// Resolved resume-token secret ([`ServeConfig::resume_secret`] or
    /// process-random).
    resume_secret: u64,
}

impl<T: Transport> Server<T> {
    /// Builds a server.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeConfig::validate`] failures.
    pub fn new(cfg: ServeConfig) -> Result<Self, SpinalError> {
        cfg.validate()?;
        // The serving profile's stride must itself be constructible.
        StridedPuncture::with_order(cfg.profile.stride, cfg.profile.order)?;
        let mut pool_cfg = cfg.pool;
        pool_cfg.workers = 1;
        // Detach TTL is enforced in ticks by the server; the pool's
        // round TTL would skew against it (rounds pause with the
        // drive budget), so it stays disabled.
        pool_cfg.detach_ttl = u64::MAX;
        let shards = (0..cfg.shards).map(|_| Shard::new(pool_cfg)).collect();
        let resume_secret = cfg.resume_secret.unwrap_or_else(random_secret);
        Ok(Self {
            cfg,
            shards,
            tick: 0,
            next_conn_id: 0,
            drain_deadline: None,
            resume_secret,
        })
    }

    /// Accepts a connection, assigning it to a shard by stable hash of
    /// its admission order (so a given arrival sequence always lands on
    /// the same shards, regardless of shard-thread scheduling).
    pub fn add_connection(&mut self, transport: T) -> ConnHandle {
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        let shard_i = (derive_seed(0x5EED_C0DE, 41, id) % self.shards.len() as u64) as usize;
        self.install(transport, id, shard_i)
    }

    /// Accepts a connection that intends to RESUME `token`, routing it
    /// to the shard that owns the token's detached session (the shard
    /// the original connection hashed to). A resume sent to any other
    /// shard is refused with `Close { ResumeInvalid }` — shards share
    /// no state.
    pub fn add_resume_connection(&mut self, transport: T, token: ResumeToken) -> ConnHandle {
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        let shard_i = (derive_seed(0x5EED_C0DE, 41, token.id) % self.shards.len() as u64) as usize;
        self.install(transport, id, shard_i)
    }

    fn install(&mut self, transport: T, id: u64, shard_i: usize) -> ConnHandle {
        let shard = &mut self.shards[shard_i];
        let conn = Conn::new(transport, id, self.tick);
        let idx = match shard.free.pop() {
            Some(i) => {
                shard.conns[i] = Some(conn);
                i
            }
            None => {
                shard.conns.push(Some(conn));
                shard.conns.len() - 1
            }
        };
        ConnHandle {
            shard: shard_i as u32,
            idx: idx as u32,
        }
    }

    /// Starts a graceful drain: from the next tick every peer receives
    /// `GoAway` with the remaining tick budget, new HELLOs are refused
    /// with BUSY (RESUME is still honoured), and sessions still
    /// streaming when the deadline passes are detached under their
    /// resume token and closed with `Close { Shed }`.
    ///
    /// Idempotent; a second call can only shorten the deadline.
    pub fn begin_drain(&mut self, drain_ticks: u64) {
        let deadline = self.tick.saturating_add(drain_ticks).saturating_add(1);
        self.drain_deadline = Some(match self.drain_deadline {
            Some(d) => d.min(deadline),
            None => deadline,
        });
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.drain_deadline.is_some()
    }

    /// Runs one serving cycle over every shard, serially. This is the
    /// allocation-free steady-state path.
    pub fn tick(&mut self) {
        self.tick += 1;
        let t = self.tick;
        let drain = self.drain_deadline;
        let secret = self.resume_secret;
        for shard in &mut self.shards {
            shard_tick(shard, &self.cfg, t, drain, secret);
        }
    }

    /// Reaps connections that are finished: dead transports, and closed
    /// dialogues whose egress has fully flushed. Returns how many were
    /// removed. Call between ticks (it is not part of the zero-alloc
    /// cycle). Sessions detached on connection loss are *not* touched —
    /// they stay resumable until their TTL.
    pub fn reap_closed(&mut self) -> usize {
        let mut reaped = 0;
        for shard in &mut self.shards {
            for idx in 0..shard.conns.len() {
                let done = match &shard.conns[idx] {
                    Some(c) => c.dead || (c.state == ConnState::Closed && c.egress.is_empty()),
                    None => false,
                };
                if done {
                    let mut conn = shard.conns[idx].take().expect("checked live");
                    // Lifecycle paths detach before marking a conn dead;
                    // anything still attached here chose not to resume
                    // (orderly close) and is released for real.
                    release_session(&mut conn.session, &mut shard.pool, &mut shard.session_conn);
                    shard.free.push(idx);
                    reaped += 1;
                }
            }
        }
        reaped
    }

    /// Aggregate counters, summed over shards.
    pub fn stats(&self) -> ServeStats {
        let mut out = ServeStats {
            ticks: self.tick,
            ..ServeStats::default()
        };
        for shard in &self.shards {
            out.absorb(&shard.stats);
        }
        out
    }

    /// Completion latencies (in ticks, DATA-first-seen → decoded) of
    /// every session that decoded, appended shard by shard.
    pub fn latencies(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend_from_slice(&shard.latencies);
        }
        out
    }

    /// Sessions currently live across all shard pools (attached and
    /// detached).
    pub fn live_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.pool.len()).sum()
    }

    /// Detached sessions currently held for resumption (pending,
    /// decoded-awaiting-replay, or terminal-awaiting-replay).
    pub fn detached_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.detached.len()).sum()
    }

    /// Whether a connection is currently backpressured (its egress sat
    /// above the high-water mark at its last tick, so its ingress was
    /// not drained).
    pub fn is_backpressured(&self, h: ConnHandle) -> bool {
        self.conn(h).is_some_and(|c| c.backpressured)
    }

    /// Whether a connection has reached a terminal state (closed
    /// dialogue or dead transport).
    pub fn is_closed(&self, h: ConnHandle) -> bool {
        self.conn(h)
            .is_none_or(|c| c.dead || c.state == ConnState::Closed)
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn conn(&self, h: ConnHandle) -> Option<&Conn<T>> {
        self.shards
            .get(h.shard as usize)?
            .conns
            .get(h.idx as usize)?
            .as_ref()
    }

    /// Serializes the server's session state into `out` as a versioned,
    /// CRC-framed warm-restart snapshot — the image [`Server::restore`]
    /// rebuilds a bit-identical server from.
    ///
    /// Every in-flight session is first demoted to its packed
    /// checkpoint tier (~20× smaller; demotion changes decode *work*,
    /// never results), then written with its code shape, receive
    /// dynamics and full observation set. Sessions attached to live
    /// connections are imaged as *detached* under their resume token:
    /// transports do not survive a process, so after a restore every
    /// client re-attaches through the ordinary RESUME path with the
    /// token it already holds. Verdicts held for replay (decoded bits,
    /// exhaustion, abandonment) are imaged verbatim.
    ///
    /// `out` is cleared and refilled, so one buffer amortizes across
    /// periodic snapshots. Counted in [`ServeStats::snapshots`]
    /// (including in the image itself).
    ///
    /// # Errors
    ///
    /// [`SpinalError::Snapshot`] with
    /// [`SnapshotErrorKind::SecretNotPinned`] when
    /// [`ServeConfig::resume_secret`] is `None`: with a process-random
    /// secret, no token a client holds would verify after a restart, so
    /// the snapshot would be unresumable by construction.
    pub fn snapshot_into(&mut self, out: &mut Vec<u8>) -> Result<(), SpinalError> {
        if self.cfg.resume_secret.is_none() {
            return Err(SpinalError::Snapshot {
                kind: SnapshotErrorKind::SecretNotPinned,
            });
        }
        let secret = self.resume_secret;
        let ttl = self.cfg.pool.detach_ttl;
        let tick = self.tick;

        // Demote every pending session's checkpoints to the packed tier
        // (best effort: a session with nothing packable restores cold —
        // same results, more first-attempt work).
        for shard in &mut self.shards {
            let Shard {
                pool,
                conns,
                detached,
                ..
            } = shard;
            for entry in detached.iter() {
                if let Some(sid) = entry.session {
                    if let Some(rx) = pool.get_mut(sid) {
                        let _ = rx.demote_checkpoints();
                    }
                }
            }
            for conn in conns.iter().flatten() {
                if conn.dead || conn.state != ConnState::Streaming {
                    continue;
                }
                if let Some(sid) = conn.session {
                    if let Some(rx) = pool.get_mut(sid) {
                        let _ = rx.demote_checkpoints();
                    }
                }
            }
        }

        self.shards[0].stats.snapshots += 1;
        let mut entry_count = 0u32;
        let mut pending = 0u64;
        for shard in &self.shards {
            for e in &shard.detached {
                entry_count += 1;
                if matches!(e.outcome, DetachedOutcome::Pending) {
                    pending += 1;
                }
            }
            for conn in shard.conns.iter().flatten() {
                if conn.dead {
                    continue;
                }
                match conn.state {
                    ConnState::Streaming if conn.session.is_some() => {
                        entry_count += 1;
                        pending += 1;
                    }
                    ConnState::Done if conn.done_ack.is_some() => entry_count += 1,
                    _ => {}
                }
            }
        }

        out.clear();
        write_preamble(out);
        write_header(
            out,
            &SnapshotHeader {
                tick,
                next_conn_id: self.next_conn_id,
                secret_probe: resume_auth(secret, SECRET_PROBE_ID),
                pool_round: self
                    .shards
                    .iter()
                    .map(|s| s.pool.rounds())
                    .max()
                    .unwrap_or(0),
                pending,
                entry_count,
                stats: self.stats().to_words().to_vec(),
                latencies: self.latencies(),
            },
        );

        for shard in &self.shards {
            for e in &shard.detached {
                let body = match &e.outcome {
                    DetachedOutcome::Pending => {
                        let sid = e.session.expect("pending detached entry holds a session");
                        let rx = shard.pool.get(sid).expect("pending session is live");
                        pending_body(rx)
                    }
                    DetachedOutcome::Done { bits, ack } => EntryBodyRef::Done {
                        bits: bits.as_ref(),
                        ack: *ack,
                    },
                    DetachedOutcome::Exhausted => EntryBodyRef::Exhausted,
                    DetachedOutcome::Abandoned => EntryBodyRef::Abandoned,
                };
                write_entry(
                    out,
                    &EntryRef {
                        token: e.token,
                        mode: e.mode,
                        expected_seq: e.expected_seq,
                        first_data_tick: e.first_data_tick,
                        expires_tick: e.expires_tick,
                        body,
                    },
                );
            }
            for conn in shard.conns.iter().flatten() {
                if conn.dead {
                    continue;
                }
                let token = ResumeToken {
                    id: conn.resume_id,
                    auth: resume_auth(secret, conn.resume_id),
                };
                // An attached session was not on the detach clock; its
                // restored TTL starts at the snapshot tick.
                let expires_tick = tick.saturating_add(ttl);
                match conn.state {
                    ConnState::Streaming => {
                        let Some(sid) = conn.session else { continue };
                        let rx = shard.pool.get(sid).expect("streaming session is live");
                        write_entry(
                            out,
                            &EntryRef {
                                token,
                                mode: conn.mode,
                                expected_seq: conn.expected_seq,
                                first_data_tick: conn.first_data_tick,
                                expires_tick,
                                body: pending_body(rx),
                            },
                        );
                    }
                    ConnState::Done => {
                        let Some(ack) = conn.done_ack else { continue };
                        write_entry(
                            out,
                            &EntryRef {
                                token,
                                mode: conn.mode,
                                expected_seq: conn.expected_seq,
                                first_data_tick: u64::MAX,
                                expires_tick,
                                body: EntryBodyRef::Done {
                                    bits: conn.decoded_bits.as_ref(),
                                    ack,
                                },
                            },
                        );
                    }
                    ConnState::Greeting | ConnState::Closed => {}
                }
            }
        }
        Ok(())
    }

    /// Rebuilds a server from a warm-restart snapshot written by
    /// [`Server::snapshot_into`].
    ///
    /// The restored server resumes the snapshot's tick clock,
    /// connection-id sequence and pool round counter, so every
    /// persisted absolute deadline (detach TTLs) and round-relative
    /// stamp keeps meaning — no restored session expires instantly and
    /// none becomes immortal. Every in-flight session comes back
    /// *detached* under its original resume token: clients reconnect
    /// and re-attach through the ordinary RESUME path, and a resumed
    /// flow is bit-identical (same `symbols_used`, same `attempts`) to
    /// one the restart never interrupted. Drain state is deliberately
    /// *not* carried: a restore is a fresh process accepting work, so a
    /// pre-crash [`Server::begin_drain`] must be re-issued if still
    /// wanted.
    ///
    /// Degradation is per-section: an entry whose CRC or structure
    /// fails validation (or whose token does not verify against the
    /// pinned secret, or that no longer fits this configuration's
    /// admission limits) is dropped alone; in-flight sessions lost this
    /// way are counted in [`ServeStats::restore_dropped`] so the
    /// lifecycle conservation law closes exactly. Restored entries are
    /// counted in [`ServeStats::restored`]; the snapshot's aggregate
    /// stats and latency samples carry over.
    ///
    /// # Errors
    ///
    /// [`SpinalError::Snapshot`] — `SecretNotPinned` when `cfg` has no
    /// pinned [`ServeConfig::resume_secret`]; `SecretMismatch` when the
    /// pinned secret differs from the snapshotting server's; `BadMagic`
    /// / `BadVersion` on a foreign image; `Truncated` / `Corrupt` on a
    /// damaged preamble or header (the header is load-bearing — entries
    /// degrade, the header does not). Also propagates
    /// [`ServeConfig::validate`] failures. Never panics, for any input.
    pub fn restore(cfg: ServeConfig, bytes: &[u8]) -> Result<Self, SpinalError> {
        let Some(secret) = cfg.resume_secret else {
            return Err(SpinalError::Snapshot {
                kind: SnapshotErrorKind::SecretNotPinned,
            });
        };
        let mut reader = SnapshotReader::new(bytes)?;
        let header_payload = reader.take_section()?.ok_or(SpinalError::Snapshot {
            kind: SnapshotErrorKind::Corrupt,
        })?;
        let mut header = parse_header(header_payload)?;
        if header.stats.len() != STAT_WORDS {
            return Err(SpinalError::Snapshot {
                kind: SnapshotErrorKind::Corrupt,
            });
        }
        if header.secret_probe != resume_auth(secret, SECRET_PROBE_ID) {
            return Err(SpinalError::Snapshot {
                kind: SnapshotErrorKind::SecretMismatch,
            });
        }
        let mut server = Server::new(cfg)?;
        let cfg = server.cfg;
        server.tick = header.tick;
        server.next_conn_id = header.next_conn_id;
        let mut words = [0u64; STAT_WORDS];
        words.copy_from_slice(&header.stats);
        server.shards[0].stats = ServeStats::from_words(&words);
        server.shards[0].latencies = std::mem::take(&mut header.latencies);
        for shard in &mut server.shards {
            shard.pool.restore_round(header.pool_round);
        }

        let n_shards = server.shards.len() as u64;
        let mut pending_restored = 0u64;
        let mut restored = 0u64;
        while !reader.done() {
            // A CRC-damaged section or an unparseable/forged entry
            // drops that session alone.
            let Some(payload) = reader.take_section()? else {
                continue;
            };
            let Some(entry) = parse_entry(payload) else {
                continue;
            };
            if entry.token.auth != resume_auth(secret, entry.token.id) {
                continue;
            }
            let shard_i = (derive_seed(0x5EED_C0DE, 41, entry.token.id) % n_shards) as usize;
            let shard = &mut server.shards[shard_i];
            if shard.detached.iter().any(|e| e.token.id == entry.token.id) {
                continue;
            }
            let (session, outcome) = match entry.body {
                ParsedBody::Pending {
                    shape,
                    attempts,
                    next_attempt,
                    dirty_from,
                    obs,
                    packed,
                } => {
                    let h = Hello {
                        message_bits: shape.message_bits,
                        k: shape.k,
                        c: shape.c,
                        beam: shape.beam,
                        max_symbols: shape.max_symbols,
                        seed: shape.seed,
                        mode: entry.mode,
                    };
                    // Same admission path as the network, same caps.
                    let Ok(sid) = admit(&h, &cfg, &mut shard.pool) else {
                        continue;
                    };
                    let ok = shard
                        .pool
                        .get_mut(sid)
                        .expect("freshly admitted session is live")
                        .restore_receive_state(&obs, attempts, next_attempt, dirty_from)
                        .is_ok();
                    if !ok {
                        let _ = shard.pool.remove(sid);
                        continue;
                    }
                    if let Some(blob) = &packed {
                        // Best effort: a blob that fails validation
                        // leaves the checkpoint store cold — identical
                        // results, more first-attempt work.
                        let _ = shard
                            .pool
                            .get_mut(sid)
                            .expect("restored session is live")
                            .adopt_packed_checkpoints(blob);
                    }
                    shard
                        .pool
                        .detach(sid, entry.token.id)
                        .expect("freshly admitted session detaches");
                    pending_restored += 1;
                    (Some(sid), DetachedOutcome::Pending)
                }
                ParsedBody::Done { bits, ack } => (None, DetachedOutcome::Done { bits, ack }),
                ParsedBody::Exhausted => (None, DetachedOutcome::Exhausted),
                ParsedBody::Abandoned => (None, DetachedOutcome::Abandoned),
            };
            if let Some(sid) = session {
                let slot = sid.slot();
                if shard.session_conn.len() <= slot {
                    shard.session_conn.resize(slot + 1, usize::MAX);
                }
                shard.session_conn[slot] = DETACHED_BASE + shard.detached.len();
            }
            shard.detached.push(DetachedEntry {
                token: entry.token,
                session,
                outcome,
                mode: entry.mode,
                expected_seq: entry.expected_seq,
                first_data_tick: entry.first_data_tick,
                expires_tick: entry.expires_tick,
            });
            restored += 1;
        }
        server.shards[0].stats.restored += restored;
        server.shards[0].stats.restore_dropped += header.pending.saturating_sub(pending_restored);
        Ok(server)
    }
}

impl<T: Transport + Send> Server<T> {
    /// Runs one serving cycle with one scoped thread per shard.
    ///
    /// Shards share no mutable state — each owns its pool, connections
    /// and counters — so the result is bit-identical to the serial
    /// [`tick`](Server::tick): same frames, same latencies, same stats,
    /// for any shard count.
    pub fn tick_sharded(&mut self) {
        self.tick += 1;
        let t = self.tick;
        let cfg = &self.cfg;
        let drain = self.drain_deadline;
        let secret = self.resume_secret;
        thread::scope(|scope| {
            for shard in &mut self.shards {
                scope.spawn(move || shard_tick(shard, cfg, t, drain, secret));
            }
        });
    }
}

/// What one parsed frame asks the connection to do, decoupled from the
/// frame's borrow of the reassembly buffer (symbols land in the shard
/// scratch before the borrow ends).
enum Action {
    Hello(Hello),
    Data { seq: u64, count: usize },
    ClientClose,
    Ping(u64),
    Ignore,
    Resume(ResumeToken),
    Violation,
}

fn shard_tick<T: Transport>(
    shard: &mut Shard<T>,
    cfg: &ServeConfig,
    tick: u64,
    drain: Option<u64>,
    secret: u64,
) {
    let Shard {
        pool,
        conns,
        free: _,
        session_conn,
        detached,
        resumes,
        events,
        rxbuf,
        symbols,
        latencies,
        stats,
    } = shard;
    let ttl = cfg.pool.detach_ttl;

    // Phase 0: expire detached sessions past the tick TTL. Entries
    // whose verdict already landed (session == None) vanish silently —
    // their outcome was counted when it happened.
    if ttl != u64::MAX {
        let mut i = 0;
        while i < detached.len() {
            if tick < detached[i].expires_tick {
                i += 1;
                continue;
            }
            if let Some(sid) = detached[i].session {
                let _ = pool.remove(sid);
                if let Some(s) = session_conn.get_mut(sid.slot()) {
                    if *s == DETACHED_BASE + i {
                        *s = usize::MAX;
                    }
                }
                stats.expired += 1;
            }
            remove_detached_entry(detached, session_conn, i);
        }
    }

    // Phases 1 + 2: per-connection flush (with deferred-result retry),
    // then ingress unless backpressured, then the tick-counted
    // lifecycle deadlines.
    for (idx, conn_slot) in conns.iter_mut().enumerate() {
        let Some(conn) = conn_slot.as_mut() else {
            continue;
        };
        if conn.dead {
            continue;
        }

        if let Some(deadline) = drain {
            if !conn.goaway_sent && conn.state != ConnState::Closed {
                conn.goaway_sent = enqueue(
                    &mut conn.egress,
                    cfg,
                    &Frame::GoAway {
                        drain_ticks: deadline.saturating_sub(tick),
                    },
                    stats,
                );
            }
        }

        if !conn.egress.is_empty() {
            match conn.transport.send(&conn.egress) {
                Ok(0) => {}
                Ok(n) => {
                    conn.egress.drain(..n);
                }
                Err(_) => {
                    detach_conn(conn, pool, session_conn, detached, tick, ttl, stats, secret);
                    conn.dead = true;
                    stats.transport_closed += 1;
                    continue;
                }
            }
        }

        // Undroppable result frames deferred at the capacity cap retry
        // as soon as the queue has room again.
        if conn.egress.len() < cfg.egress_capacity {
            if conn.result_pending {
                conn.result_pending = false;
                emit_result(conn);
            }
            if let Some(reason) = conn.close_pending.take() {
                let _ = encode_frame(&Frame::Close { reason }, &mut conn.egress);
            }
        }

        conn.backpressured = conn.egress.len() >= cfg.egress_high_water;
        if conn.backpressured {
            stats.backpressure_ticks += 1;
            continue;
        }

        rxbuf.clear();
        match conn.transport.recv(rxbuf) {
            Ok(0) => {}
            Ok(_) => {
                conn.last_rx_tick = tick;
                conn.pinged = false;
                conn.wire.push_bytes(rxbuf);
            }
            Err(_) => {
                // Let buffered frames finish the dialogue before the
                // close is surfaced; a dead transport with a clean
                // buffer is an orderly close.
                conn.dead = true;
                stats.transport_closed += 1;
            }
        }

        loop {
            if conn.state == ConnState::Closed {
                break;
            }
            let action = match conn.wire.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame::Hello(h))) => Action::Hello(h),
                Ok(Some(Frame::Data { seq, run })) => {
                    symbols.clear();
                    run.copy_into(symbols);
                    Action::Data {
                        seq,
                        count: symbols.len(),
                    }
                }
                Ok(Some(Frame::Close { .. })) => Action::ClientClose,
                Ok(Some(Frame::Ping { nonce })) => Action::Ping(nonce),
                Ok(Some(Frame::Pong { .. })) => Action::Ignore,
                Ok(Some(Frame::Resume { token })) => Action::Resume(token),
                // Server-to-client frames arriving at the server are a
                // dialogue violation, as is anything malformed.
                Ok(Some(_)) => Action::Violation,
                Err(_) => Action::Violation,
            };
            stats.frames_in += 1;
            match action {
                Action::Hello(h) => {
                    if conn.state != ConnState::Greeting || conn.resume_pending {
                        protocol_close(
                            conn,
                            pool,
                            session_conn,
                            detached,
                            tick,
                            ttl,
                            stats,
                            cfg,
                            secret,
                        );
                        break;
                    }
                    if drain.is_some() {
                        // Draining: no new admissions.
                        stats.busy_rejected += 1;
                        enqueue(
                            &mut conn.egress,
                            cfg,
                            &Frame::Busy {
                                live: pool.len().min(u32::MAX as usize) as u32,
                                max_sessions: cfg.pool.max_sessions.min(u32::MAX as usize) as u32,
                            },
                            stats,
                        );
                        conn.state = ConnState::Closed;
                        continue;
                    }
                    match admit_or_shed(&h, cfg, pool, detached, session_conn, stats) {
                        Ok(id) => {
                            let slot = id.slot();
                            if session_conn.len() <= slot {
                                session_conn.resize(slot + 1, usize::MAX);
                            }
                            session_conn[slot] = idx;
                            conn.session = Some(id);
                            conn.mode = h.mode;
                            conn.state = ConnState::Streaming;
                            conn.last_snapshot = tick;
                            stats.admitted += 1;
                            enqueue(
                                &mut conn.egress,
                                cfg,
                                &Frame::HelloAck {
                                    token: slot as u64,
                                    resume: ResumeToken {
                                        id: conn.conn_id,
                                        auth: resume_auth(secret, conn.conn_id),
                                    },
                                },
                                stats,
                            );
                        }
                        Err(SpinalError::PoolFull {
                            live,
                            max_sessions: max,
                        }) => {
                            stats.busy_rejected += 1;
                            enqueue(
                                &mut conn.egress,
                                cfg,
                                &Frame::Busy {
                                    live: live.min(u32::MAX as usize) as u32,
                                    max_sessions: max.min(u32::MAX as usize) as u32,
                                },
                                stats,
                            );
                            conn.state = ConnState::Closed;
                        }
                        Err(_) => {
                            protocol_close(
                                conn,
                                pool,
                                session_conn,
                                detached,
                                tick,
                                ttl,
                                stats,
                                cfg,
                                secret,
                            );
                            break;
                        }
                    }
                }
                Action::Data { seq, count } => match conn.state {
                    ConnState::Greeting => {
                        protocol_close(
                            conn,
                            pool,
                            session_conn,
                            detached,
                            tick,
                            ttl,
                            stats,
                            cfg,
                            secret,
                        );
                        break;
                    }
                    ConnState::Done => {
                        // Re-ACK so a lost ACK heals off the sender's
                        // own continued transmissions (unless the full
                        // result is still deferred — it already carries
                        // the ACK).
                        if !conn.result_pending {
                            if let Some((symbols_used, attempts)) = conn.done_ack {
                                enqueue(
                                    &mut conn.egress,
                                    cfg,
                                    &Frame::Ack {
                                        symbols_used,
                                        attempts,
                                    },
                                    stats,
                                );
                            }
                        }
                    }
                    ConnState::Closed => {}
                    ConnState::Streaming => {
                        stats.symbols_in += count as u64;
                        if conn.first_data_tick == u64::MAX {
                            conn.first_data_tick = tick;
                        }
                        if seq > conn.expected_seq {
                            if conn.mode == FeedbackMode::Nack && !conn.nacked {
                                enqueue(
                                    &mut conn.egress,
                                    cfg,
                                    &Frame::Nack {
                                        expected_seq: conn.expected_seq,
                                    },
                                    stats,
                                );
                                conn.nacked = true;
                            }
                        } else {
                            // In-order or replayed-from-the-gap data:
                            // the NACK did its job (or none was owed).
                            conn.nacked = false;
                        }
                        conn.expected_seq = conn.expected_seq.max(seq + count as u64);
                        let id = conn.session.expect("streaming implies session");
                        match pool.ingest_at(id, symbols) {
                            Ok(()) => {}
                            Err(_) => {
                                protocol_close(
                                    conn,
                                    pool,
                                    session_conn,
                                    detached,
                                    tick,
                                    ttl,
                                    stats,
                                    cfg,
                                    secret,
                                );
                                break;
                            }
                        }
                    }
                },
                Action::ClientClose => {
                    // An orderly close renounces the session — nothing
                    // is kept for resumption.
                    release_session(&mut conn.session, pool, session_conn);
                    conn.state = ConnState::Closed;
                }
                Action::Ping(nonce) => {
                    enqueue(&mut conn.egress, cfg, &Frame::Pong { nonce }, stats);
                }
                Action::Ignore => {}
                Action::Resume(token) => {
                    if conn.state != ConnState::Greeting || conn.resume_pending {
                        protocol_close(
                            conn,
                            pool,
                            session_conn,
                            detached,
                            tick,
                            ttl,
                            stats,
                            cfg,
                            secret,
                        );
                        break;
                    }
                    conn.resume_pending = true;
                    resumes.push((idx, token));
                }
                Action::Violation => {
                    protocol_close(
                        conn,
                        pool,
                        session_conn,
                        detached,
                        tick,
                        ttl,
                        stats,
                        cfg,
                        secret,
                    );
                    break;
                }
            }
        }

        if conn.dead {
            detach_conn(conn, pool, session_conn, detached, tick, ttl, stats, secret);
            continue;
        }

        // Tick-counted idle lifecycle: probe past keepalive_idle, give
        // up (detaching the session for resumption) past idle_deadline.
        if conn.state != ConnState::Closed {
            let idle = tick.saturating_sub(conn.last_rx_tick);
            if idle >= cfg.idle_deadline {
                detach_conn(conn, pool, session_conn, detached, tick, ttl, stats, secret);
                conn.dead = true;
                stats.idle_closed += 1;
                continue;
            }
            if idle >= cfg.keepalive_idle && !conn.pinged {
                enqueue(&mut conn.egress, cfg, &Frame::Ping { nonce: tick }, stats);
                conn.pinged = true;
                stats.keepalive_pings += 1;
            }
        }

        // Drain deadline: whatever still streams is detached under its
        // token and the dialogue closed.
        if let Some(deadline) = drain {
            if tick >= deadline && conn.state != ConnState::Closed {
                detach_conn(conn, pool, session_conn, detached, tick, ttl, stats, secret);
                send_close(conn, cfg, stats, CloseReason::Shed);
                conn.state = ConnState::Closed;
            }
        }
    }

    // Phase 2.5: deferred RESUME requests. Deferral means every
    // connection has already processed this tick's ingress — including
    // the death of a connection this resume supersedes — so
    // re-attachment order is index-deterministic and never racy.
    for &(cidx, token) in resumes.iter() {
        let eidx = match detached.iter().position(|e| e.token == token) {
            Some(e) => Some(e),
            None if token.auth == resume_auth(secret, token.id) => {
                // Takeover: the token's session may still be attached
                // to an older connection the client abandoned (its
                // death not yet observed). Newest connection wins; the
                // stale one is detached here and closed.
                let owner = conns.iter().position(|c| {
                    c.as_ref().is_some_and(|c| {
                        !c.dead
                            && c.resume_id == token.id
                            && matches!(c.state, ConnState::Streaming | ConnState::Done)
                    })
                });
                match owner {
                    Some(o) if o != cidx => {
                        let oc = conns[o].as_mut().expect("owner checked live");
                        detach_conn(oc, pool, session_conn, detached, tick, ttl, stats, secret);
                        oc.dead = true;
                        detached.iter().position(|e| e.token == token)
                    }
                    _ => None,
                }
            }
            None => None,
        };
        let Some(conn) = conns.get_mut(cidx).and_then(|c| c.as_mut()) else {
            continue;
        };
        if conn.dead || conn.state != ConnState::Greeting {
            continue;
        }
        conn.resume_pending = false;
        let Some(eidx) = eidx else {
            stats.resume_rejected += 1;
            send_close(conn, cfg, stats, CloseReason::ResumeInvalid);
            conn.state = ConnState::Closed;
            continue;
        };
        let entry = remove_detached_entry(detached, session_conn, eidx);
        conn.resume_id = entry.token.id;
        conn.mode = entry.mode;
        conn.expected_seq = entry.expected_seq;
        match entry.outcome {
            DetachedOutcome::Pending => match pool.resume_detached(entry.token.id) {
                Ok(sid) => {
                    let slot = sid.slot();
                    if session_conn.len() <= slot {
                        session_conn.resize(slot + 1, usize::MAX);
                    }
                    session_conn[slot] = cidx;
                    conn.session = Some(sid);
                    conn.first_data_tick = entry.first_data_tick;
                    conn.state = ConnState::Streaming;
                    conn.last_snapshot = tick;
                    conn.nacked = false;
                    stats.resumed += 1;
                    enqueue(
                        &mut conn.egress,
                        cfg,
                        &Frame::ResumeAck {
                            expected_seq: entry.expected_seq,
                        },
                        stats,
                    );
                }
                Err(_) => {
                    // The pool let the session go (budget eviction):
                    // the token no longer resolves.
                    stats.resume_rejected += 1;
                    send_close(conn, cfg, stats, CloseReason::ResumeInvalid);
                    conn.state = ConnState::Closed;
                }
            },
            DetachedOutcome::Done { bits, ack } => {
                conn.decoded_bits = bits;
                conn.done_ack = Some(ack);
                conn.state = ConnState::Done;
                conn.last_snapshot = tick;
                stats.resumed += 1;
                enqueue(
                    &mut conn.egress,
                    cfg,
                    &Frame::ResumeAck {
                        expected_seq: entry.expected_seq,
                    },
                    stats,
                );
                enqueue_result(conn, cfg, stats);
            }
            DetachedOutcome::Exhausted => {
                stats.resumed += 1;
                send_close(conn, cfg, stats, CloseReason::Exhausted);
                conn.state = ConnState::Closed;
            }
            DetachedOutcome::Abandoned => {
                stats.resumed += 1;
                send_close(conn, cfg, stats, CloseReason::Abandoned);
                conn.state = ConnState::Closed;
            }
        }
    }
    resumes.clear();

    // Phase 3: drive the pool and turn events into feedback. Detached
    // sessions are driven exactly like attached ones — a pending
    // attempt concludes in the same drive it would have with the
    // driver present, which is what keeps resume bit-identical.
    pool.drive_until_into(cfg.drive_budget, events);
    for ev in events.iter().copied() {
        let Some(&cidx) = session_conn.get(ev.id.slot()) else {
            continue;
        };
        if cidx >= DETACHED_BASE {
            let Some(entry) = detached.get_mut(cidx - DETACHED_BASE) else {
                continue;
            };
            match ev.outcome {
                SessionOutcome::Poll(Poll::NeedMore { .. }) | SessionOutcome::Deferred { .. } => {}
                SessionOutcome::Poll(Poll::Decoded {
                    symbols_used,
                    attempts,
                }) => {
                    if entry.first_data_tick != u64::MAX {
                        latencies.push(tick - entry.first_data_tick);
                    }
                    let rx = pool.remove(ev.id).expect("decoded session is live");
                    session_conn[ev.id.slot()] = usize::MAX;
                    entry.session = None;
                    entry.outcome = DetachedOutcome::Done {
                        bits: rx.payload().cloned(),
                        ack: (symbols_used, attempts),
                    };
                    stats.decoded += 1;
                }
                SessionOutcome::Poll(Poll::Exhausted { .. }) => {
                    let _ = pool.remove(ev.id);
                    session_conn[ev.id.slot()] = usize::MAX;
                    entry.session = None;
                    entry.outcome = DetachedOutcome::Exhausted;
                    stats.exhausted += 1;
                }
                SessionOutcome::Abandoned { .. } => {
                    let _ = pool.remove(ev.id);
                    session_conn[ev.id.slot()] = usize::MAX;
                    entry.session = None;
                    entry.outcome = DetachedOutcome::Abandoned;
                    stats.abandoned += 1;
                }
            }
            continue;
        }
        let Some(conn) = conns.get_mut(cidx).and_then(|c| c.as_mut()) else {
            continue;
        };
        match ev.outcome {
            SessionOutcome::Poll(Poll::NeedMore { .. }) | SessionOutcome::Deferred { .. } => {}
            SessionOutcome::Poll(Poll::Decoded {
                symbols_used,
                attempts,
            }) => {
                if conn.first_data_tick != u64::MAX {
                    latencies.push(tick - conn.first_data_tick);
                }
                let rx = pool.remove(ev.id).expect("decoded session is live");
                session_conn[ev.id.slot()] = usize::MAX;
                conn.session = None;
                conn.decoded_bits = rx.payload().cloned();
                conn.done_ack = Some((symbols_used, attempts));
                conn.state = ConnState::Done;
                stats.decoded += 1;
                enqueue_result(conn, cfg, stats);
            }
            SessionOutcome::Poll(Poll::Exhausted { .. }) => {
                release_session(&mut conn.session, pool, session_conn);
                conn.state = ConnState::Closed;
                stats.exhausted += 1;
                send_close(conn, cfg, stats, CloseReason::Exhausted);
            }
            SessionOutcome::Abandoned { .. } => {
                release_session(&mut conn.session, pool, session_conn);
                conn.state = ConnState::Closed;
                stats.abandoned += 1;
                send_close(conn, cfg, stats, CloseReason::Abandoned);
            }
        }
    }

    // Phase 4: cumulative-ACK snapshots.
    for conn in conns.iter_mut().flatten() {
        let FeedbackMode::CumulativeAck { period } = conn.mode else {
            continue;
        };
        let live = matches!(conn.state, ConnState::Streaming | ConnState::Done);
        if !live || tick.saturating_sub(conn.last_snapshot) < period {
            continue;
        }
        conn.last_snapshot = tick;
        let (decoded, symbols_used) = match (conn.state, conn.done_ack) {
            (ConnState::Done, Some((s, _))) => (true, s),
            _ => {
                let s = conn
                    .session
                    .and_then(|id| pool.get(id))
                    .map_or(0, |rx| rx.symbols());
                (false, s)
            }
        };
        enqueue(
            &mut conn.egress,
            cfg,
            &Frame::CumAck {
                decoded,
                symbols_used,
            },
            stats,
        );
    }
}

/// The snapshot image of one in-flight session: the HELLO-equivalent
/// shape (so restore re-admits through [`admit`]), the receive
/// dynamics that schedule the next attempt, the full observation set,
/// and the packed checkpoint blob when one is held.
fn pending_body(
    rx: &RxSession<Lookup3, LinearMapper, AwgnCost, StridedPuncture>,
) -> EntryBodyRef<'_> {
    EntryBodyRef::Pending {
        shape: PendingShape {
            message_bits: rx.params().message_bits(),
            k: rx.params().k(),
            c: rx.decoder().mapper().c(),
            beam: rx.config().beam.beam_width as u32,
            max_symbols: rx.config().max_symbols,
            seed: rx.params().seed(),
        },
        attempts: rx.attempts(),
        next_attempt: rx.next_attempt(),
        dirty_from: rx.dirty_from(),
        obs: rx.observations(),
        packed: rx.packed_checkpoint_image(),
    }
}

/// Validates a HELLO and inserts the session into the shard pool.
fn admit(h: &Hello, cfg: &ServeConfig, pool: &mut Pool) -> Result<SessionId, SpinalError> {
    let shape_ok = h.message_bits >= 1
        && h.message_bits <= cfg.max_message_bits
        && (1..=16).contains(&h.k)
        && (2..=16).contains(&h.c)
        && h.beam >= 1
        && h.beam <= cfg.max_beam
        && h.max_symbols >= 1;
    if !shape_ok {
        return Err(SpinalError::Wire {
            kind: WireErrorKind::Corrupt,
        });
    }
    let params = CodeParams::builder()
        .message_bits(h.message_bits)
        .k(h.k)
        .seed(h.seed)
        .build()
        .map_err(|_| SpinalError::Wire {
            kind: WireErrorKind::Corrupt,
        })?;
    let code = SpinalCode::new(
        params,
        Lookup3::new(h.seed),
        LinearMapper::new(h.c),
        StridedPuncture::with_order(cfg.profile.stride, cfg.profile.order)?,
    );
    let rx = code.rx_session(
        AwgnCost,
        AnyTerminator::crc(Checksum::Crc16),
        RxConfig {
            beam: BeamConfig::with_beam(h.beam as usize),
            max_symbols: h.max_symbols,
            attempt_growth: 1.0,
        },
    )?;
    pool.insert(rx)
}

/// [`admit`], shedding the highest-predicted-cost detached session (and
/// retrying) each time the pool reports full — new work preempts
/// orphaned work, never the other way around.
fn admit_or_shed(
    h: &Hello,
    cfg: &ServeConfig,
    pool: &mut Pool,
    detached: &mut Vec<DetachedEntry>,
    session_conn: &mut [usize],
    stats: &mut ServeStats,
) -> Result<SessionId, SpinalError> {
    loop {
        match admit(h, cfg, pool) {
            Err(SpinalError::PoolFull { live, max_sessions }) => {
                let Some((token_id, sid)) = pool.shed_costliest_detached() else {
                    return Err(SpinalError::PoolFull { live, max_sessions });
                };
                if let Some(s) = session_conn.get_mut(sid.slot()) {
                    *s = usize::MAX;
                }
                if let Some(eidx) = detached
                    .iter()
                    .position(|e| e.token.id == token_id && e.session.is_some())
                {
                    remove_detached_entry(detached, session_conn, eidx);
                }
                stats.shed += 1;
            }
            other => return other,
        }
    }
}

/// Moves a connection's session (or its cached verdict) into the
/// shard's detached list under the connection's resume token, so a
/// later RESUME can pick it up. Greeting/Closed connections have
/// nothing to keep.
#[allow(clippy::too_many_arguments)]
fn detach_conn<T>(
    conn: &mut Conn<T>,
    pool: &mut Pool,
    session_conn: &mut [usize],
    detached: &mut Vec<DetachedEntry>,
    tick: u64,
    ttl: u64,
    stats: &mut ServeStats,
    secret: u64,
) {
    let token = ResumeToken {
        id: conn.resume_id,
        auth: resume_auth(secret, conn.resume_id),
    };
    let expires_tick = tick.saturating_add(ttl);
    match conn.state {
        ConnState::Streaming => {
            let Some(id) = conn.session.take() else {
                return;
            };
            pool.detach(id, conn.resume_id)
                .expect("streaming session is live in the pool");
            session_conn[id.slot()] = DETACHED_BASE + detached.len();
            detached.push(DetachedEntry {
                token,
                session: Some(id),
                outcome: DetachedOutcome::Pending,
                mode: conn.mode,
                expected_seq: conn.expected_seq,
                first_data_tick: conn.first_data_tick,
                expires_tick,
            });
            stats.detached += 1;
        }
        ConnState::Done => {
            // The result may not have flushed; keep it replayable.
            let Some(ack) = conn.done_ack else {
                return;
            };
            detached.push(DetachedEntry {
                token,
                session: None,
                outcome: DetachedOutcome::Done {
                    bits: conn.decoded_bits.take(),
                    ack,
                },
                mode: conn.mode,
                expected_seq: conn.expected_seq,
                first_data_tick: u64::MAX,
                expires_tick,
            });
            conn.done_ack = None;
            conn.result_pending = false;
            stats.detached += 1;
        }
        ConnState::Greeting | ConnState::Closed => {}
    }
}

/// Removes detached entry `i` (swap-remove), re-pointing the moved
/// entry's `session_conn` mapping.
fn remove_detached_entry(
    detached: &mut Vec<DetachedEntry>,
    session_conn: &mut [usize],
    i: usize,
) -> DetachedEntry {
    let e = detached.swap_remove(i);
    if let Some(moved) = detached.get(i) {
        if let Some(sid) = moved.session {
            if let Some(s) = session_conn.get_mut(sid.slot()) {
                *s = DETACHED_BASE + i;
            }
        }
    }
    e
}

fn release_session(session: &mut Option<SessionId>, pool: &mut Pool, session_conn: &mut [usize]) {
    if let Some(id) = session.take() {
        let _ = pool.remove(id);
        if let Some(slot) = session_conn.get_mut(id.slot()) {
            *slot = usize::MAX;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn protocol_close<T>(
    conn: &mut Conn<T>,
    pool: &mut Pool,
    session_conn: &mut [usize],
    detached: &mut Vec<DetachedEntry>,
    tick: u64,
    ttl: u64,
    stats: &mut ServeStats,
    cfg: &ServeConfig,
    secret: u64,
) {
    // A mid-stream violation is treated as connection loss (a corrupted
    // byte at the transport boundary, say): the session detaches and
    // stays resumable instead of being dropped.
    if conn.state == ConnState::Streaming && conn.session.is_some() {
        detach_conn(conn, pool, session_conn, detached, tick, ttl, stats, secret);
    } else {
        release_session(&mut conn.session, pool, session_conn);
    }
    conn.state = ConnState::Closed;
    stats.protocol_errors += 1;
    send_close(conn, cfg, stats, CloseReason::Protocol);
}

/// Queues the cached decode result (`Decoded` + `Ack`) — undroppable:
/// at the capacity cap it defers and retries every tick instead.
fn enqueue_result<T>(conn: &mut Conn<T>, cfg: &ServeConfig, stats: &mut ServeStats) {
    if conn.egress.len() >= cfg.egress_capacity {
        conn.result_pending = true;
        stats.result_deferred += 1;
        return;
    }
    emit_result(conn);
}

/// Encodes the cached result frames unconditionally (capacity was
/// checked by the caller or the retry loop).
fn emit_result<T>(conn: &mut Conn<T>) {
    if let Some(bits) = &conn.decoded_bits {
        let _ = encode_frame(
            &Frame::Decoded(crate::wire::DecodedBits::from_bits(bits)),
            &mut conn.egress,
        );
    }
    if let Some((symbols_used, attempts)) = conn.done_ack {
        if !matches!(conn.mode, FeedbackMode::CumulativeAck { .. }) {
            let _ = encode_frame(
                &Frame::Ack {
                    symbols_used,
                    attempts,
                },
                &mut conn.egress,
            );
        }
    }
}

/// Queues a Close frame — undroppable: at the capacity cap it defers
/// (first reason wins) and retries every tick instead.
fn send_close<T>(
    conn: &mut Conn<T>,
    cfg: &ServeConfig,
    stats: &mut ServeStats,
    reason: CloseReason,
) {
    if conn.egress.len() >= cfg.egress_capacity {
        if conn.close_pending.is_none() {
            conn.close_pending = Some(reason);
            stats.result_deferred += 1;
        }
        return;
    }
    let _ = encode_frame(&Frame::Close { reason }, &mut conn.egress);
}

/// Appends a droppable frame to a connection's bounded egress queue,
/// dropping it (counted) at the capacity cap. Returns whether it was
/// queued.
fn enqueue(
    egress: &mut Vec<u8>,
    cfg: &ServeConfig,
    frame: &Frame<'_>,
    stats: &mut ServeStats,
) -> bool {
    if egress.len() >= cfg.egress_capacity {
        stats.egress_overflow += 1;
        return false;
    }
    // Oversized cannot trigger: every server frame is bounded by
    // max_message_bits, far under the frame cap.
    let _ = encode_frame(frame, egress);
    true
}
