//! The versioned binary wire format of the codec service.
//!
//! Every message on a serve connection is one *frame*: an 8-byte header
//! (magic, version, frame type, payload length) followed by a
//! little-endian payload. The dialogue mirrors the link-layer protocol
//! of `spinal-link`:
//!
//! | type | frame | direction | payload |
//! |---|---|---|---|
//! | 1 | [`Frame::Hello`] | client → server | code shape + feedback mode negotiation |
//! | 2 | [`Frame::HelloAck`] | server → client | admission token |
//! | 3 | [`Frame::Busy`] | server → client | admission rejected (pool full) |
//! | 4 | [`Frame::Data`] | client → server | a run of I-Q symbols with explicit slot cursors |
//! | 5 | [`Frame::Ack`] | server → client | decode succeeded |
//! | 6 | [`Frame::Nack`] | server → client | first missing symbol sequence number |
//! | 7 | [`Frame::CumAck`] | server → client | periodic cumulative state snapshot |
//! | 8 | [`Frame::Decoded`] | server → client | the decoded message bits |
//! | 9 | [`Frame::Close`] | either | terminal close with reason |
//! | 10 | [`Frame::Ping`] | either | keepalive probe with echo nonce |
//! | 11 | [`Frame::Pong`] | either | keepalive probe reply |
//! | 12 | [`Frame::GoAway`] | server → client | graceful-drain notice with tick budget |
//! | 13 | [`Frame::Resume`] | client → server | re-attach a detached session by token |
//! | 14 | [`Frame::ResumeAck`] | server → client | re-attach granted + replay cursor |
//!
//! Decoding is zero-copy: [`WireDecoder`] reassembles frames out of
//! arbitrarily chunked byte arrivals into one reusable buffer, and the
//! returned [`Frame`] borrows payload bytes from it. Every malformed
//! input yields a typed [`SpinalError::Wire`] — never a panic: bad
//! magic, unsupported version, unknown frame type, over-limit length,
//! short payloads ([`WireErrorKind::Truncated`]) and structural
//! mismatches ([`WireErrorKind::Corrupt`]) are all distinguished.

use spinal_core::bits::BitVec;
use spinal_core::error::{SpinalError, WireErrorKind};
use spinal_core::symbol::{IqSymbol, Slot};
use spinal_link::FeedbackMode;

/// The two magic bytes opening every frame header.
pub const WIRE_MAGIC: [u8; 2] = [0xC0, 0xDE];

/// The wire-format version this build speaks. Version 2 grew
/// [`Frame::HelloAck`] by a [`ResumeToken`] and added the five
/// lifecycle frames (`Ping`/`Pong`, `GoAway`, `Resume`/`ResumeAck`);
/// a version-1 peer fails the handshake with a clean
/// [`WireErrorKind::BadVersion`] instead of a payload parse error.
pub const WIRE_VERSION: u8 = 2;

/// Frame header length in bytes: magic (2) + version (1) + type (1) +
/// payload length (4, little-endian).
pub const HEADER_LEN: usize = 8;

/// Hard cap on a single frame's payload length. A header declaring more
/// is rejected as [`WireErrorKind::Oversized`] before any buffering, so
/// a corrupt length field cannot balloon the reassembly buffer.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Bytes per symbol entry in a [`Frame::Data`] payload:
/// slot `t` (4) + slot `pass` (4) + I (8) + Q (8).
pub const SYMBOL_WIRE_LEN: usize = 24;

const FT_HELLO: u8 = 1;
const FT_HELLO_ACK: u8 = 2;
const FT_BUSY: u8 = 3;
const FT_DATA: u8 = 4;
const FT_ACK: u8 = 5;
const FT_NACK: u8 = 6;
const FT_CUM_ACK: u8 = 7;
const FT_DECODED: u8 = 8;
const FT_CLOSE: u8 = 9;
const FT_PING: u8 = 10;
const FT_PONG: u8 = 11;
const FT_GO_AWAY: u8 = 12;
const FT_RESUME: u8 = 13;
const FT_RESUME_ACK: u8 = 14;

fn wire_err(kind: WireErrorKind) -> SpinalError {
    SpinalError::Wire { kind }
}

/// The client's opening frame: everything the server must know to build
/// the decoder session — code shape, beam width, symbol budget and the
/// feedback mode the client wants (matching `spinal-link`'s
/// [`FeedbackMode`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Message length in bits (CRC framing included); must divide by `k`.
    pub message_bits: u32,
    /// Segment width `k` of the spine.
    pub k: u32,
    /// Constellation bit depth `c` of the linear mapper.
    pub c: u32,
    /// Beam width `B` the decoder should run with.
    pub beam: u32,
    /// Receiver gives up after this many symbols.
    pub max_symbols: u64,
    /// Code seed both endpoints derive their hash from.
    pub seed: u64,
    /// Feedback mode for the session.
    pub mode: FeedbackMode,
}

/// Why a [`Frame::Close`] was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// The session completed normally.
    Done,
    /// The receiver exhausted its symbol budget without decoding.
    Exhausted,
    /// The server abandoned the session (attempt cap / quarantine).
    Abandoned,
    /// A protocol violation (malformed frame, bad dialogue order).
    Protocol,
    /// A [`Frame::Resume`] token was unknown, expired, already shed, or
    /// failed its integrity check. The client must start over with a
    /// fresh [`Frame::Hello`]; the server never guesses a session.
    ResumeInvalid,
    /// The server shed this detached session under overload pressure.
    Shed,
}

impl CloseReason {
    fn to_wire(self) -> u8 {
        match self {
            CloseReason::Done => 0,
            CloseReason::Exhausted => 1,
            CloseReason::Abandoned => 2,
            CloseReason::Protocol => 3,
            CloseReason::ResumeInvalid => 4,
            CloseReason::Shed => 5,
        }
    }

    fn from_wire(v: u8) -> Result<Self, SpinalError> {
        match v {
            0 => Ok(CloseReason::Done),
            1 => Ok(CloseReason::Exhausted),
            2 => Ok(CloseReason::Abandoned),
            3 => Ok(CloseReason::Protocol),
            4 => Ok(CloseReason::ResumeInvalid),
            5 => Ok(CloseReason::Shed),
            _ => Err(wire_err(WireErrorKind::Corrupt)),
        }
    }
}

/// An opaque resumption credential handed out in [`Frame::HelloAck`] and
/// presented back in [`Frame::Resume`] after a reconnect.
///
/// `id` names the detached session; `auth` is derived from the
/// session's admission identity under a per-server secret (see
/// `ServeConfig::resume_secret`), so a corrupted or guessed token
/// cannot be minted without that secret and cannot attach to another
/// session: both halves must match the server's own derivation exactly
/// or the resume is refused with a typed
/// [`CloseReason::ResumeInvalid`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResumeToken {
    /// Server-assigned detached-session identity.
    pub id: u64,
    /// Integrity check value bound to the admission.
    pub auth: u64,
}

/// A run of slot-labelled symbols inside a [`Frame::Data`] payload.
///
/// On the encode side it borrows the sender's `(Slot, IqSymbol)` batch;
/// on the decode side it borrows the raw payload bytes of the
/// reassembly buffer (zero-copy) and decodes entries on access. The two
/// representations compare equal element-wise (I/Q compared by exact
/// bit pattern), which is what the roundtrip property tests pin.
#[derive(Clone, Copy, Debug)]
pub enum SymbolRun<'a> {
    /// Borrowed sender-side batch.
    Slots(&'a [(Slot, IqSymbol)]),
    /// Borrowed, already validated wire bytes (`len × SYMBOL_WIRE_LEN`).
    Wire {
        /// Entry count.
        count: u32,
        /// Raw payload bytes backing the entries.
        bytes: &'a [u8],
    },
}

impl<'a> SymbolRun<'a> {
    /// Number of symbols in the run.
    pub fn len(&self) -> usize {
        match self {
            SymbolRun::Slots(s) => s.len(),
            SymbolRun::Wire { count, .. } => *count as usize,
        }
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th slot-labelled symbol.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()` — the run's bytes themselves were
    /// validated at frame-decode time, so in-range access cannot fail.
    pub fn get(&self, i: usize) -> (Slot, IqSymbol) {
        match self {
            SymbolRun::Slots(s) => s[i],
            SymbolRun::Wire { bytes, count } => {
                assert!(i < *count as usize, "symbol index {i} out of run");
                let e = &bytes[i * SYMBOL_WIRE_LEN..(i + 1) * SYMBOL_WIRE_LEN];
                let t = u32::from_le_bytes(e[0..4].try_into().unwrap());
                let pass = u32::from_le_bytes(e[4..8].try_into().unwrap());
                let iv = f64::from_bits(u64::from_le_bytes(e[8..16].try_into().unwrap()));
                let qv = f64::from_bits(u64::from_le_bytes(e[16..24].try_into().unwrap()));
                (Slot::new(t, pass), IqSymbol::new(iv, qv))
            }
        }
    }

    /// Iterates the run in order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, IqSymbol)> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Appends every entry to `out` (which is not cleared), for handing
    /// the run to [`spinal_core::sched::MultiDecoder::ingest_at`].
    pub fn copy_into(&self, out: &mut Vec<(Slot, IqSymbol)>) {
        out.extend(self.iter());
    }
}

impl PartialEq for SymbolRun<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self.iter().zip(other.iter()).all(|((sa, xa), (sb, xb))| {
                sa == sb && xa.i.to_bits() == xb.i.to_bits() && xa.q.to_bits() == xb.q.to_bits()
            })
    }
}

/// The decoded message bits inside a [`Frame::Decoded`] payload: an
/// explicit bit count plus zero-padded bytes, borrowing either the
/// sender's [`BitVec`] storage or the decode buffer.
#[derive(Clone, Copy, Debug)]
pub struct DecodedBits<'a> {
    n_bits: u32,
    bytes: &'a [u8],
}

impl<'a> DecodedBits<'a> {
    /// Wraps a [`BitVec`]'s bits for encoding (zero-copy; padding bits
    /// are masked to zero on the wire at encode time).
    pub fn from_bits(bits: &'a BitVec) -> Self {
        Self {
            n_bits: bits.len() as u32,
            bytes: bits.as_bytes(),
        }
    }

    /// Bit count.
    pub fn len(&self) -> usize {
        self.n_bits as usize
    }

    /// Whether the payload carries zero bits.
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Materialises an owned [`BitVec`] (allocates).
    pub fn to_bitvec(&self) -> BitVec {
        let mut out = BitVec::from_bytes(self.bytes);
        out.truncate(self.n_bits as usize);
        out
    }
}

impl PartialEq for DecodedBits<'_> {
    fn eq(&self, other: &Self) -> bool {
        if self.n_bits != other.n_bits {
            return false;
        }
        let n = self.n_bits as usize;
        let full = n / 8;
        if self.bytes[..full] != other.bytes[..full] {
            return false;
        }
        let tail = n % 8;
        if tail == 0 {
            return true;
        }
        let mask = 0xffu8 << (8 - tail);
        (self.bytes[full] & mask) == (other.bytes[full] & mask)
    }
}

/// One frame of the serve dialogue. Decoded frames borrow payload bytes
/// from the [`WireDecoder`] that produced them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Frame<'a> {
    /// Session open + config negotiation (client → server).
    Hello(Hello),
    /// Admission granted (server → client).
    HelloAck {
        /// Opaque server-assigned session token.
        token: u64,
        /// Credential for resuming this session after a disconnect.
        resume: ResumeToken,
    },
    /// Admission rejected: the shard's decoder pool is full.
    Busy {
        /// Sessions currently live on the shard.
        live: u32,
        /// The shard's session capacity.
        max_sessions: u32,
    },
    /// A run of symbols (client → server). `seq` numbers the first
    /// symbol of the run in the client's transmission stream, so the
    /// server can detect gaps; each symbol also carries its explicit
    /// [`Slot`], so replays and fault-reordered deliveries land on the
    /// right observations regardless of arrival order.
    Data {
        /// Stream sequence number of the first symbol in the run.
        seq: u64,
        /// The symbols.
        run: SymbolRun<'a>,
    },
    /// Decode succeeded (server → client). Re-sent on every later
    /// arrival for the session, so a lost ACK heals.
    Ack {
        /// Symbols the decoder consumed.
        symbols_used: u64,
        /// Decode attempts it ran.
        attempts: u32,
    },
    /// The receiver noticed a sequence gap; the client should seek its
    /// `TxSession` back to `expected_seq` and replay.
    Nack {
        /// First stream sequence number the server has not seen.
        expected_seq: u64,
    },
    /// Periodic cumulative snapshot (server → client, cumulative-ACK
    /// mode): the session's decode status as of this snapshot.
    CumAck {
        /// Whether the session has decoded.
        decoded: bool,
        /// Symbols consumed so far (or at decode).
        symbols_used: u64,
    },
    /// The decoded message bits (server → client), sent with the ACK.
    Decoded(DecodedBits<'a>),
    /// Terminal close with reason (either direction).
    Close {
        /// Why the sender is closing.
        reason: CloseReason,
    },
    /// Keepalive probe (either direction); the peer echoes `nonce` back
    /// in a [`Frame::Pong`]. Nonces are tick-derived, never wall-clock.
    Ping {
        /// Echo value identifying this probe.
        nonce: u64,
    },
    /// Keepalive probe reply (either direction).
    Pong {
        /// The nonce of the [`Frame::Ping`] being answered.
        nonce: u64,
    },
    /// Graceful-drain notice (server → client): no new work will be
    /// admitted; in-flight sessions get `drain_ticks` server ticks to
    /// finish before the server detaches them and closes.
    GoAway {
        /// Server ticks remaining before forced close.
        drain_ticks: u64,
    },
    /// Re-attach a detached session after a reconnect (client → server,
    /// in place of [`Frame::Hello`]).
    Resume {
        /// The credential from the original [`Frame::HelloAck`].
        token: ResumeToken,
    },
    /// Re-attach granted (server → client). The client must seek its
    /// transmitter back to `expected_seq` and replay from there.
    ResumeAck {
        /// First stream sequence number the server has not absorbed.
        expected_seq: u64,
    },
}

impl Frame<'_> {
    fn frame_type(&self) -> u8 {
        match self {
            Frame::Hello(_) => FT_HELLO,
            Frame::HelloAck { .. } => FT_HELLO_ACK,
            Frame::Busy { .. } => FT_BUSY,
            Frame::Data { .. } => FT_DATA,
            Frame::Ack { .. } => FT_ACK,
            Frame::Nack { .. } => FT_NACK,
            Frame::CumAck { .. } => FT_CUM_ACK,
            Frame::Decoded(_) => FT_DECODED,
            Frame::Close { .. } => FT_CLOSE,
            Frame::Ping { .. } => FT_PING,
            Frame::Pong { .. } => FT_PONG,
            Frame::GoAway { .. } => FT_GO_AWAY,
            Frame::Resume { .. } => FT_RESUME,
            Frame::ResumeAck { .. } => FT_RESUME_ACK,
        }
    }
}

/// Encodes one frame, appending header + payload to `out` (which is not
/// cleared, so a tick's worth of frames can share one egress buffer).
///
/// # Errors
///
/// [`WireErrorKind::Oversized`] when the payload would exceed
/// [`MAX_FRAME_PAYLOAD`]; `out` is left exactly as it was.
pub fn encode_frame(frame: &Frame<'_>, out: &mut Vec<u8>) -> Result<(), SpinalError> {
    let start = out.len();
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.push(frame.frame_type());
    out.extend_from_slice(&[0u8; 4]);
    let body = out.len();
    match frame {
        Frame::Hello(h) => {
            let (mode, period) = match h.mode {
                FeedbackMode::AckOnly => (0u8, 0u64),
                FeedbackMode::Nack => (1, 0),
                FeedbackMode::CumulativeAck { period } => (2, period),
            };
            out.extend_from_slice(&h.message_bits.to_le_bytes());
            out.extend_from_slice(&h.k.to_le_bytes());
            out.extend_from_slice(&h.c.to_le_bytes());
            out.extend_from_slice(&h.beam.to_le_bytes());
            out.extend_from_slice(&h.max_symbols.to_le_bytes());
            out.extend_from_slice(&h.seed.to_le_bytes());
            out.push(mode);
            out.extend_from_slice(&period.to_le_bytes());
        }
        Frame::HelloAck { token, resume } => {
            out.extend_from_slice(&token.to_le_bytes());
            out.extend_from_slice(&resume.id.to_le_bytes());
            out.extend_from_slice(&resume.auth.to_le_bytes());
        }
        Frame::Busy { live, max_sessions } => {
            out.extend_from_slice(&live.to_le_bytes());
            out.extend_from_slice(&max_sessions.to_le_bytes());
        }
        Frame::Data { seq, run } => {
            if run.len() > (MAX_FRAME_PAYLOAD - 12) / SYMBOL_WIRE_LEN {
                out.truncate(start);
                return Err(wire_err(WireErrorKind::Oversized));
            }
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&(run.len() as u32).to_le_bytes());
            for (slot, sym) in run.iter() {
                out.extend_from_slice(&slot.t.to_le_bytes());
                out.extend_from_slice(&slot.pass.to_le_bytes());
                out.extend_from_slice(&sym.i.to_bits().to_le_bytes());
                out.extend_from_slice(&sym.q.to_bits().to_le_bytes());
            }
        }
        Frame::Ack {
            symbols_used,
            attempts,
        } => {
            out.extend_from_slice(&symbols_used.to_le_bytes());
            out.extend_from_slice(&attempts.to_le_bytes());
        }
        Frame::Nack { expected_seq } => out.extend_from_slice(&expected_seq.to_le_bytes()),
        Frame::CumAck {
            decoded,
            symbols_used,
        } => {
            out.push(u8::from(*decoded));
            out.extend_from_slice(&symbols_used.to_le_bytes());
        }
        Frame::Decoded(bits) => {
            let n = bits.n_bits as usize;
            if n.div_ceil(8) + 4 > MAX_FRAME_PAYLOAD {
                out.truncate(start);
                return Err(wire_err(WireErrorKind::Oversized));
            }
            out.extend_from_slice(&bits.n_bits.to_le_bytes());
            let full = n / 8;
            out.extend_from_slice(&bits.bytes[..full]);
            let tail = n % 8;
            if tail != 0 {
                // Zero the padding so the wire bytes are canonical.
                out.push(bits.bytes[full] & (0xffu8 << (8 - tail)));
            }
        }
        Frame::Close { reason } => out.push(reason.to_wire()),
        Frame::Ping { nonce } | Frame::Pong { nonce } => {
            out.extend_from_slice(&nonce.to_le_bytes());
        }
        Frame::GoAway { drain_ticks } => out.extend_from_slice(&drain_ticks.to_le_bytes()),
        Frame::Resume { token } => {
            out.extend_from_slice(&token.id.to_le_bytes());
            out.extend_from_slice(&token.auth.to_le_bytes());
        }
        Frame::ResumeAck { expected_seq } => out.extend_from_slice(&expected_seq.to_le_bytes()),
    }
    let len = out.len() - body;
    debug_assert!(len <= MAX_FRAME_PAYLOAD);
    out[body - 4..body].copy_from_slice(&(len as u32).to_le_bytes());
    Ok(())
}

/// Cursor over one frame payload; every short read is a typed error.
struct Rd<'a> {
    p: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(p: &'a [u8]) -> Self {
        Self { p, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SpinalError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.p.len())
            .ok_or_else(|| wire_err(WireErrorKind::Truncated))?;
        let s = &self.p[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SpinalError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SpinalError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SpinalError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Payloads must be consumed exactly: trailing garbage is corruption.
    fn done(self) -> Result<(), SpinalError> {
        if self.pos == self.p.len() {
            Ok(())
        } else {
            Err(wire_err(WireErrorKind::Corrupt))
        }
    }
}

fn parse_payload(ty: u8, p: &[u8]) -> Result<Frame<'_>, SpinalError> {
    let mut r = Rd::new(p);
    let frame = match ty {
        FT_HELLO => {
            let message_bits = r.u32()?;
            let k = r.u32()?;
            let c = r.u32()?;
            let beam = r.u32()?;
            let max_symbols = r.u64()?;
            let seed = r.u64()?;
            let mode_tag = r.u8()?;
            let period = r.u64()?;
            let mode = match (mode_tag, period) {
                (0, 0) => FeedbackMode::AckOnly,
                (1, 0) => FeedbackMode::Nack,
                (2, p) if p > 0 => FeedbackMode::CumulativeAck { period: p },
                _ => return Err(wire_err(WireErrorKind::Corrupt)),
            };
            Frame::Hello(Hello {
                message_bits,
                k,
                c,
                beam,
                max_symbols,
                seed,
                mode,
            })
        }
        FT_HELLO_ACK => Frame::HelloAck {
            token: r.u64()?,
            resume: ResumeToken {
                id: r.u64()?,
                auth: r.u64()?,
            },
        },
        FT_BUSY => Frame::Busy {
            live: r.u32()?,
            max_sessions: r.u32()?,
        },
        FT_DATA => {
            let seq = r.u64()?;
            let count = r.u32()?;
            let bytes = r.bytes(
                (count as usize)
                    .checked_mul(SYMBOL_WIRE_LEN)
                    .ok_or_else(|| wire_err(WireErrorKind::Corrupt))?,
            )?;
            // Validate every entry now so SymbolRun::get is infallible:
            // non-finite I/Q cannot enter the decoder's cost model.
            for e in bytes.chunks_exact(SYMBOL_WIRE_LEN) {
                let iv = f64::from_bits(u64::from_le_bytes(e[8..16].try_into().unwrap()));
                let qv = f64::from_bits(u64::from_le_bytes(e[16..24].try_into().unwrap()));
                if !iv.is_finite() || !qv.is_finite() {
                    return Err(wire_err(WireErrorKind::Corrupt));
                }
            }
            Frame::Data {
                seq,
                run: SymbolRun::Wire { count, bytes },
            }
        }
        FT_ACK => Frame::Ack {
            symbols_used: r.u64()?,
            attempts: r.u32()?,
        },
        FT_NACK => Frame::Nack {
            expected_seq: r.u64()?,
        },
        FT_CUM_ACK => {
            let decoded = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(wire_err(WireErrorKind::Corrupt)),
            };
            Frame::CumAck {
                decoded,
                symbols_used: r.u64()?,
            }
        }
        FT_DECODED => {
            let n_bits = r.u32()?;
            let bytes = r.bytes((n_bits as usize).div_ceil(8))?;
            let tail = (n_bits as usize) % 8;
            if tail != 0 && bytes[bytes.len() - 1] & !(0xffu8 << (8 - tail)) != 0 {
                // Non-canonical padding: reject rather than silently mask.
                return Err(wire_err(WireErrorKind::Corrupt));
            }
            Frame::Decoded(DecodedBits { n_bits, bytes })
        }
        FT_CLOSE => Frame::Close {
            reason: CloseReason::from_wire(r.u8()?)?,
        },
        FT_PING => Frame::Ping { nonce: r.u64()? },
        FT_PONG => Frame::Pong { nonce: r.u64()? },
        FT_GO_AWAY => Frame::GoAway {
            drain_ticks: r.u64()?,
        },
        FT_RESUME => Frame::Resume {
            token: ResumeToken {
                id: r.u64()?,
                auth: r.u64()?,
            },
        },
        FT_RESUME_ACK => Frame::ResumeAck {
            expected_seq: r.u64()?,
        },
        _ => unreachable!("frame type gated by header check"),
    };
    r.done()?;
    Ok(frame)
}

/// Incremental frame reassembly over arbitrarily chunked byte arrivals.
///
/// Push transport reads in with [`push_bytes`](WireDecoder::push_bytes),
/// then drain complete frames with [`next_frame`](WireDecoder::next_frame)
/// until it returns `Ok(None)` (more bytes needed). The internal buffer
/// is reused across frames: once it has grown to a connection's
/// high-water mark the steady state allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct WireDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl WireDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly arrived bytes (any chunking, including mid-header).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        if self.start > 0 {
            // Compact the consumed prefix before growing: a memmove,
            // never an allocation, and it bounds the buffer at the
            // high-water mark of one burst.
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a returned frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes" (a partial header or payload
    /// is not an error until the stream ends — see
    /// [`finish`](WireDecoder::finish)).
    ///
    /// # Errors
    ///
    /// A typed [`SpinalError::Wire`] for every malformed input; wire
    /// errors are fatal to the connection (no resynchronisation is
    /// attempted).
    pub fn next_frame(&mut self) -> Result<Option<Frame<'_>>, SpinalError> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        if avail[..2] != WIRE_MAGIC {
            return Err(wire_err(WireErrorKind::BadMagic));
        }
        if avail[2] != WIRE_VERSION {
            return Err(wire_err(WireErrorKind::BadVersion));
        }
        let ty = avail[3];
        if !(FT_HELLO..=FT_RESUME_ACK).contains(&ty) {
            return Err(wire_err(WireErrorKind::UnknownFrame));
        }
        let len = u32::from_le_bytes(avail[4..8].try_into().unwrap()) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(wire_err(WireErrorKind::Oversized));
        }
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let base = self.start;
        self.start += HEADER_LEN + len;
        let payload = &self.buf[base + HEADER_LEN..base + HEADER_LEN + len];
        parse_payload(ty, payload).map(Some)
    }

    /// Declares end-of-stream: any buffered partial frame becomes a
    /// typed [`WireErrorKind::Truncated`] error.
    pub fn finish(&self) -> Result<(), SpinalError> {
        if self.pending() == 0 {
            Ok(())
        } else {
            Err(wire_err(WireErrorKind::Truncated))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame<'_>) {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes).unwrap();
        let mut dec = WireDecoder::new();
        dec.push_bytes(&bytes);
        let got = dec.next_frame().unwrap().expect("one full frame");
        assert_eq!(got, frame);
        assert!(dec.next_frame().unwrap().is_none());
        dec.finish().unwrap();
    }

    #[test]
    fn every_frame_type_roundtrips() {
        roundtrip(Frame::Hello(Hello {
            message_bits: 32,
            k: 8,
            c: 10,
            beam: 256,
            max_symbols: 4096,
            seed: 0x5eed,
            mode: FeedbackMode::CumulativeAck { period: 12 },
        }));
        roundtrip(Frame::HelloAck {
            token: u64::MAX,
            resume: ResumeToken {
                id: 0x1234_5678_9abc_def0,
                auth: 0x0fed_cba9_8765_4321,
            },
        });
        roundtrip(Frame::Busy {
            live: 7,
            max_sessions: 7,
        });
        let symbols = [
            (Slot::new(0, 0), IqSymbol::new(1.5, -2.25)),
            (Slot::new(3, 17), IqSymbol::new(-0.0, 1023.0)),
        ];
        roundtrip(Frame::Data {
            seq: 99,
            run: SymbolRun::Slots(&symbols),
        });
        roundtrip(Frame::Ack {
            symbols_used: 12,
            attempts: 3,
        });
        roundtrip(Frame::Nack { expected_seq: 42 });
        roundtrip(Frame::CumAck {
            decoded: true,
            symbols_used: 8,
        });
        let bits = BitVec::from_bytes(&[0xab, 0xcd]);
        roundtrip(Frame::Decoded(DecodedBits::from_bits(&bits)));
        roundtrip(Frame::Close {
            reason: CloseReason::Exhausted,
        });
        roundtrip(Frame::Close {
            reason: CloseReason::ResumeInvalid,
        });
        roundtrip(Frame::Close {
            reason: CloseReason::Shed,
        });
        roundtrip(Frame::Ping { nonce: 0xabcd });
        roundtrip(Frame::Pong { nonce: u64::MAX });
        roundtrip(Frame::GoAway { drain_ticks: 640 });
        roundtrip(Frame::Resume {
            token: ResumeToken {
                id: 7,
                auth: 0x5eed_c0de,
            },
        });
        roundtrip(Frame::ResumeAck { expected_seq: 321 });
    }

    #[test]
    fn decoded_bits_mask_padding() {
        let mut bits = BitVec::from_bytes(&[0xff, 0xff]);
        bits.truncate(11);
        let mut bytes = Vec::new();
        encode_frame(&Frame::Decoded(DecodedBits::from_bits(&bits)), &mut bytes).unwrap();
        let mut dec = WireDecoder::new();
        dec.push_bytes(&bytes);
        match dec.next_frame().unwrap().unwrap() {
            Frame::Decoded(d) => assert_eq!(d.to_bitvec(), bits),
            f => panic!("wrong frame {f:?}"),
        }
    }

    #[test]
    fn byte_at_a_time_chunking() {
        let symbols: Vec<(Slot, IqSymbol)> = (0..5)
            .map(|i| {
                (
                    Slot::new(i, i * 2),
                    IqSymbol::new(f64::from(i), -f64::from(i)),
                )
            })
            .collect();
        let frames = [
            Frame::Nack { expected_seq: 7 },
            Frame::Data {
                seq: 0,
                run: SymbolRun::Slots(&symbols),
            },
            Frame::Close {
                reason: CloseReason::Done,
            },
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            encode_frame(f, &mut bytes).unwrap();
        }
        let mut dec = WireDecoder::new();
        let mut seen = 0;
        for b in bytes {
            dec.push_bytes(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                assert_eq!(f, frames[seen]);
                seen += 1;
            }
        }
        assert_eq!(seen, frames.len());
        dec.finish().unwrap();
    }

    fn kind_of(bytes: &[u8]) -> WireErrorKind {
        let mut dec = WireDecoder::new();
        dec.push_bytes(bytes);
        loop {
            match dec.next_frame() {
                Ok(Some(_)) => continue,
                Ok(None) => match dec.finish() {
                    Ok(()) => panic!("input accepted"),
                    Err(SpinalError::Wire { kind }) => return kind,
                    Err(e) => panic!("unexpected error {e}"),
                },
                Err(SpinalError::Wire { kind }) => return kind,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }

    #[test]
    fn malformed_inputs_yield_typed_errors() {
        let mut good = Vec::new();
        encode_frame(&Frame::Nack { expected_seq: 1 }, &mut good).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0x40;
        assert_eq!(kind_of(&bad_magic), WireErrorKind::BadMagic);

        let mut bad_version = good.clone();
        bad_version[2] = 99;
        assert_eq!(kind_of(&bad_version), WireErrorKind::BadVersion);

        let mut unknown = good.clone();
        unknown[3] = 200;
        assert_eq!(kind_of(&unknown), WireErrorKind::UnknownFrame);

        let mut oversized = good.clone();
        oversized[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(kind_of(&oversized), WireErrorKind::Oversized);

        // Header promises fewer payload bytes than the frame type needs.
        let mut short = good.clone();
        short[4..8].copy_from_slice(&4u32.to_le_bytes());
        short.truncate(HEADER_LEN + 4);
        assert_eq!(kind_of(&short), WireErrorKind::Truncated);

        // Stream ends mid-frame.
        assert_eq!(kind_of(&good[..good.len() - 2]), WireErrorKind::Truncated);

        // Trailing garbage inside the declared payload.
        let mut long = good.clone();
        long[4..8].copy_from_slice(&12u32.to_le_bytes());
        long.extend_from_slice(&[0; 4]);
        assert_eq!(kind_of(&long), WireErrorKind::Corrupt);

        // Non-finite I/Q in a data run.
        let sym = [(Slot::new(0, 0), IqSymbol::new(f64::NAN, 0.0))];
        let mut nan = Vec::new();
        encode_frame(
            &Frame::Data {
                seq: 0,
                run: SymbolRun::Slots(&sym),
            },
            &mut nan,
        )
        .unwrap();
        assert_eq!(kind_of(&nan), WireErrorKind::Corrupt);

        // Unknown close reason.
        let mut close = Vec::new();
        encode_frame(
            &Frame::Close {
                reason: CloseReason::Done,
            },
            &mut close,
        )
        .unwrap();
        let last = close.len() - 1;
        close[last] = 9;
        assert_eq!(kind_of(&close), WireErrorKind::Corrupt);

        // Cumulative-ACK period of zero is contradictory.
        let mut hello = Vec::new();
        encode_frame(
            &Frame::Hello(Hello {
                message_bits: 8,
                k: 4,
                c: 8,
                beam: 4,
                max_symbols: 10,
                seed: 0,
                mode: FeedbackMode::CumulativeAck { period: 5 },
            }),
            &mut hello,
        )
        .unwrap();
        let period_at = hello.len() - 8;
        hello[period_at..].copy_from_slice(&0u64.to_le_bytes());
        assert_eq!(kind_of(&hello), WireErrorKind::Corrupt);
    }

    #[test]
    fn oversized_encode_is_rejected_and_rolls_back() {
        let symbols = vec![(Slot::new(0, 0), IqSymbol::new(0.0, 0.0)); 50_000];
        let mut out = vec![0xaa; 3];
        let err = encode_frame(
            &Frame::Data {
                seq: 0,
                run: SymbolRun::Slots(&symbols),
            },
            &mut out,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SpinalError::Wire {
                kind: WireErrorKind::Oversized
            }
        ));
        assert_eq!(out, vec![0xaa; 3]);
    }

    #[test]
    fn steady_state_reassembly_reuses_the_buffer() {
        let mut frame = Vec::new();
        encode_frame(
            &Frame::Ack {
                symbols_used: 5,
                attempts: 1,
            },
            &mut frame,
        )
        .unwrap();
        let mut dec = WireDecoder::new();
        for _ in 0..100 {
            dec.push_bytes(&frame);
            assert!(dec.next_frame().unwrap().is_some());
        }
        // All consumed; compaction keeps the buffer at one frame's size.
        assert_eq!(dec.pending(), 0);
        assert!(dec.buf.capacity() <= 4 * frame.len());
    }
}
