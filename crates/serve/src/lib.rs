//! # spinal-serve — the network-facing codec service
//!
//! Everything between a byte transport and the decoder pool:
//!
//! * [`wire`] — the versioned, length-prefixed binary frame format of
//!   the session dialogue (HELLO negotiation, slot-labelled DATA runs,
//!   ACK/NACK/cumulative-ACK feedback, typed decode errors, zero-copy
//!   reassembly).
//! * [`transport`] — the non-blocking byte-transport contract, with a
//!   deterministic bounded in-process loopback (optionally chunk-seeded)
//!   and a dependency-free non-blocking `std::net` TCP implementation.
//! * [`server`] — the sharded serving event loop: each shard owns one
//!   [`spinal_core::sched::MultiDecoder`] pool and its hash-assigned
//!   connections, every tick flushes feedback, drains ingress under
//!   per-connection backpressure, and drives the pool under a level
//!   budget. Serial and sharded ticks are bit-identical. Crash safety
//!   rides on the same machinery: [`server::Server::snapshot_into`]
//!   images every session into a versioned, per-section-CRC'd blob and
//!   [`server::Server::restore`] rebuilds a server whose resumed flows
//!   are bit-identical to never-killed ones.
//! * [`client`] — a session driver for the other end of the wire, with
//!   NACK-seeking replay and composable link faults / noise.
//!
//! ```
//! use spinal_core::bits::BitVec;
//! use spinal_serve::{loopback_pair, ClientConfig, ClientOutcome, ServeConfig, ServeClient, Server};
//!
//! let mut server = Server::new(ServeConfig::default()).unwrap();
//! let (local, remote) = loopback_pair(1 << 16);
//! server.add_connection(remote);
//!
//! let payload = BitVec::from_bytes(&[0xa5]);
//! let mut client = ServeClient::new(local, &ClientConfig::default(), &payload).unwrap();
//! while !client.is_done() {
//!     server.tick();
//!     client.tick();
//! }
//! assert!(matches!(client.outcome(), Some(ClientOutcome::Decoded { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
mod snapshot;
pub mod transport;
pub mod wire;

pub use client::{ClientConfig, ClientOutcome, NoiseHook, ServeClient};
pub use server::{ConnHandle, ServeConfig, ServeProfile, ServeStats, Server};
pub use transport::{
    chaos_pair, loopback_pair, loopback_pair_chunked, ChaosEvent, ChaosPlan, ChaosTransport,
    LoopbackTransport, TcpAcceptor, TcpTransport, Transport,
};
pub use wire::{
    encode_frame, CloseReason, DecodedBits, Frame, Hello, ResumeToken, SymbolRun, WireDecoder,
    HEADER_LEN, MAX_FRAME_PAYLOAD, SYMBOL_WIRE_LEN, WIRE_MAGIC, WIRE_VERSION,
};
