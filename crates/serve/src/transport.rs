//! Byte transports under the serve wire format.
//!
//! Two implementations of one non-blocking [`Transport`] contract:
//!
//! * [`loopback_pair`] — a deterministic in-process pipe pair. With a
//!   chunking seed ([`loopback_pair_chunked`]) reads return
//!   pseudo-random partial chunks, derived counter-by-counter from
//!   [`spinal_sim::stats::derive_seed`], so reassembly paths are
//!   exercised bit-reproducibly. Bounded capacity makes backpressure
//!   real: `send` accepts only what fits and reports how much.
//! * [`TcpTransport`] / [`TcpAcceptor`] — non-blocking `std::net`
//!   sockets (no external async runtime), mapping `WouldBlock` to a
//!   zero-byte result and every I/O failure to the typed
//!   [`WireErrorKind::Transport`] error.
//!
//! The loopback is the crate's cost model: once buffers reach their
//! high-water marks, `send`/`recv` allocate nothing.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};

use spinal_core::error::{SpinalError, WireErrorKind};
use spinal_sim::stats::derive_seed;

fn transport_err() -> SpinalError {
    SpinalError::Wire {
        kind: WireErrorKind::Transport,
    }
}

/// A non-blocking, byte-oriented duplex channel.
///
/// Both methods never block: `send` returns how many bytes the
/// transport accepted (possibly `0` — backpressure), `recv` appends
/// whatever is currently available to `out` and returns the count
/// (possibly `0` — nothing pending). Errors mean the connection is
/// dead and carry [`WireErrorKind::Transport`].
pub trait Transport {
    /// Offers `bytes`; returns how many were accepted (`0..=len`).
    fn send(&mut self, bytes: &[u8]) -> Result<usize, SpinalError>;

    /// Appends available bytes to `out`; returns how many arrived.
    fn recv(&mut self, out: &mut Vec<u8>) -> Result<usize, SpinalError>;
}

#[derive(Debug)]
struct Pipe {
    buf: VecDeque<u8>,
    capacity: usize,
    closed: bool,
}

impl Pipe {
    fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            closed: false,
        }
    }
}

#[derive(Debug)]
struct LoopbackShared {
    /// Bytes flowing from the `forward` half to the other.
    ab: Mutex<Pipe>,
    /// Bytes flowing back.
    ba: Mutex<Pipe>,
}

/// One half of an in-process loopback pair (see [`loopback_pair`]).
#[derive(Debug)]
pub struct LoopbackTransport {
    shared: Arc<LoopbackShared>,
    forward: bool,
    chunk_seed: Option<u64>,
    recv_count: u64,
}

/// Creates a bounded in-process duplex pipe: bytes sent on one half
/// arrive on the other, FIFO, up to `capacity` bytes in flight per
/// direction. `send` beyond capacity accepts a prefix (backpressure);
/// `recv` drains everything available.
pub fn loopback_pair(capacity: usize) -> (LoopbackTransport, LoopbackTransport) {
    loopback(capacity, None)
}

/// Like [`loopback_pair`] but `recv` returns pseudo-random partial
/// chunks — sizes derived deterministically from `seed` and a per-half
/// receive counter — so frame reassembly across arbitrary read
/// boundaries is exercised bit-reproducibly.
pub fn loopback_pair_chunked(capacity: usize, seed: u64) -> (LoopbackTransport, LoopbackTransport) {
    loopback(capacity, Some(seed))
}

fn loopback(capacity: usize, seed: Option<u64>) -> (LoopbackTransport, LoopbackTransport) {
    let shared = Arc::new(LoopbackShared {
        ab: Mutex::new(Pipe::new(capacity)),
        ba: Mutex::new(Pipe::new(capacity)),
    });
    let a = LoopbackTransport {
        shared: Arc::clone(&shared),
        forward: true,
        chunk_seed: seed,
        recv_count: 0,
    };
    let b = LoopbackTransport {
        shared,
        forward: false,
        chunk_seed: seed.map(|s| s ^ 0x9e37_79b9_7f4a_7c15),
        recv_count: 0,
    };
    (a, b)
}

impl LoopbackTransport {
    fn tx_pipe(&self) -> &Mutex<Pipe> {
        if self.forward {
            &self.shared.ab
        } else {
            &self.shared.ba
        }
    }

    /// Bytes currently queued toward the peer (tests and benches peek
    /// at this to observe backpressure).
    pub fn queued_toward_peer(&self) -> usize {
        self.tx_pipe().lock().expect("loopback lock").buf.len()
    }
}

impl Transport for LoopbackTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<usize, SpinalError> {
        let mut pipe = self.tx_pipe().lock().expect("loopback lock");
        if pipe.closed {
            return Err(transport_err());
        }
        let room = pipe.capacity - pipe.buf.len();
        let n = room.min(bytes.len());
        pipe.buf.extend(bytes[..n].iter().copied());
        Ok(n)
    }

    fn recv(&mut self, out: &mut Vec<u8>) -> Result<usize, SpinalError> {
        let mut pipe = if self.forward {
            &self.shared.ba
        } else {
            &self.shared.ab
        }
        .lock()
        .expect("loopback lock");
        let avail = pipe.buf.len();
        if avail == 0 {
            return if pipe.closed {
                Err(transport_err())
            } else {
                Ok(0)
            };
        }
        let take = match self.chunk_seed {
            None => avail,
            Some(seed) => {
                self.recv_count += 1;
                1 + (derive_seed(seed, 0x10_0b, self.recv_count) % avail as u64) as usize
            }
        };
        let (head, tail) = pipe.buf.as_slices();
        if take <= head.len() {
            out.extend_from_slice(&head[..take]);
        } else {
            out.extend_from_slice(head);
            out.extend_from_slice(&tail[..take - head.len()]);
        }
        pipe.buf.drain(..take);
        Ok(take)
    }
}

impl Drop for LoopbackTransport {
    fn drop(&mut self) {
        // EOF toward the peer: it may drain what is queued, then its
        // recv reports the connection closed.
        self.tx_pipe().lock().expect("loopback lock").closed = true;
    }
}

/// A connection-level chaos event, triggered at a deterministic
/// transport-operation or byte offset (never wall-clock time).
///
/// Operation counters count every `send`/`recv` call made through the
/// wrapping [`ChaosTransport`], so a fixed call schedule replays the
/// exact same failure, bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Both directions return `Ok(0)` (no progress, no error) for
    /// `ops` consecutive operations starting at `from_op`.
    Stall {
        /// First stalled operation index.
        from_op: u64,
        /// Number of consecutive stalled operations.
        ops: u64,
    },
    /// From operation `at_op` onward, `recv` reports the connection
    /// closed while `send` keeps working (peer shut down its write
    /// half).
    HalfCloseRx {
        /// First failing receive-side operation index.
        at_op: u64,
    },
    /// From operation `at_op` onward, `send` reports the connection
    /// closed while `recv` keeps working (our write half is gone).
    HalfCloseTx {
        /// First failing send-side operation index.
        at_op: u64,
    },
    /// From operation `at_op` onward, both directions report the
    /// connection closed — a mid-stream disconnect.
    Disconnect {
        /// First failing operation index.
        at_op: u64,
    },
    /// Flips one bit of the `at_byte`-th cumulative received byte (bit
    /// index derived from the plan seed), corrupting the stream at the
    /// transport boundary without breaking the connection.
    CorruptByte {
        /// Cumulative received-byte offset to corrupt.
        at_byte: u64,
    },
}

/// A seeded, ordered composition of connection-level chaos events —
/// the full description of a misbehaving connection, reproducible from
/// `(events, seed)` alone. The connection-layer sibling of the link
/// layer's `FaultPlan`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
    seed: u64,
}

impl ChaosPlan {
    /// An empty (pass-through) plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        Self {
            events: Vec::new(),
            seed,
        }
    }

    /// Appends an event to the composition.
    #[must_use]
    pub fn with(mut self, event: ChaosEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The decision seed (selects which bit a [`ChaosEvent::CorruptByte`]
    /// flips).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The ordered event list.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The same composition under a different decision seed — the
    /// per-flow derivation hook (counter-based, like the simulation
    /// engine's trial seeds).
    #[must_use]
    pub fn reseeded(&self, seed: u64) -> Self {
        Self {
            events: self.events.clone(),
            seed,
        }
    }

    /// Wraps a transport so this plan is applied to its operations.
    pub fn wrap<T: Transport>(&self, inner: T) -> ChaosTransport<T> {
        ChaosTransport {
            inner,
            events: self.events.clone(),
            seed: self.seed,
            op: 0,
            rx_bytes: 0,
            stalled_ops: 0,
            corrupted_bytes: 0,
        }
    }
}

/// A [`Transport`] wrapper that injects a [`ChaosPlan`]'s events at
/// deterministic operation/byte offsets. Transparent (and free) when
/// the plan is empty.
#[derive(Debug)]
pub struct ChaosTransport<T> {
    inner: T,
    events: Vec<ChaosEvent>,
    seed: u64,
    op: u64,
    rx_bytes: u64,
    stalled_ops: u64,
    corrupted_bytes: u64,
}

impl<T> ChaosTransport<T> {
    /// Operations (`send` + `recv` calls) observed so far.
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// Operations answered with `Ok(0)` by a [`ChaosEvent::Stall`].
    pub fn stalled_ops(&self) -> u64 {
        self.stalled_ops
    }

    /// Received bytes garbled by [`ChaosEvent::CorruptByte`].
    pub fn corrupted_bytes(&self) -> u64 {
        self.corrupted_bytes
    }

    /// Unwraps the inner transport, discarding the chaos state.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn stalled(&self, op: u64) -> bool {
        self.events.iter().any(|e| match *e {
            ChaosEvent::Stall { from_op, ops } => op >= from_op && op - from_op < ops,
            _ => false,
        })
    }

    fn tx_closed(&self, op: u64) -> bool {
        self.events.iter().any(|e| match *e {
            ChaosEvent::HalfCloseTx { at_op } | ChaosEvent::Disconnect { at_op } => op >= at_op,
            _ => false,
        })
    }

    fn rx_closed(&self, op: u64) -> bool {
        self.events.iter().any(|e| match *e {
            ChaosEvent::HalfCloseRx { at_op } | ChaosEvent::Disconnect { at_op } => op >= at_op,
            _ => false,
        })
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&mut self, bytes: &[u8]) -> Result<usize, SpinalError> {
        let op = self.op;
        self.op += 1;
        if self.tx_closed(op) {
            return Err(transport_err());
        }
        if self.stalled(op) {
            self.stalled_ops += 1;
            return Ok(0);
        }
        self.inner.send(bytes)
    }

    fn recv(&mut self, out: &mut Vec<u8>) -> Result<usize, SpinalError> {
        let op = self.op;
        self.op += 1;
        if self.rx_closed(op) {
            return Err(transport_err());
        }
        if self.stalled(op) {
            self.stalled_ops += 1;
            return Ok(0);
        }
        let start = out.len();
        let n = self.inner.recv(out)?;
        for e in &self.events {
            if let ChaosEvent::CorruptByte { at_byte } = *e {
                if at_byte >= self.rx_bytes && at_byte - self.rx_bytes < n as u64 {
                    let idx = start + (at_byte - self.rx_bytes) as usize;
                    out[idx] ^= 1 << (derive_seed(self.seed, 0xC4A0, at_byte) % 8);
                    self.corrupted_bytes += 1;
                }
            }
        }
        self.rx_bytes += n as u64;
        Ok(n)
    }
}

/// [`loopback_pair`] with the first half wrapped in `plan` — the usual
/// client-side injection point for connection chaos.
pub fn chaos_pair(
    capacity: usize,
    plan: &ChaosPlan,
) -> (ChaosTransport<LoopbackTransport>, LoopbackTransport) {
    let (a, b) = loopback_pair(capacity);
    (plan.wrap(a), b)
}

/// A non-blocking TCP connection speaking the serve wire format.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    scratch: Box<[u8; 16 * 1024]>,
}

impl TcpTransport {
    /// Connects to `addr` and switches the socket to non-blocking mode
    /// (with Nagle disabled — frames are latency-sensitive).
    ///
    /// # Errors
    ///
    /// [`WireErrorKind::Transport`] when the connection cannot be
    /// established or configured.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, SpinalError> {
        let stream = TcpStream::connect(addr).map_err(|_| transport_err())?;
        Self::from_stream(stream)
    }

    /// Wraps an accepted stream (used by [`TcpAcceptor`]).
    ///
    /// # Errors
    ///
    /// [`WireErrorKind::Transport`] when the socket cannot be switched
    /// to non-blocking mode.
    pub fn from_stream(stream: TcpStream) -> Result<Self, SpinalError> {
        stream.set_nonblocking(true).map_err(|_| transport_err())?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            scratch: Box::new([0u8; 16 * 1024]),
        })
    }

    /// The peer's address.
    ///
    /// # Errors
    ///
    /// [`WireErrorKind::Transport`] when the socket has no peer.
    pub fn peer_addr(&self) -> Result<SocketAddr, SpinalError> {
        self.stream.peer_addr().map_err(|_| transport_err())
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<usize, SpinalError> {
        match self.stream.write(bytes) {
            Ok(n) => Ok(n),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => Ok(0),
            Err(_) => Err(transport_err()),
        }
    }

    fn recv(&mut self, out: &mut Vec<u8>) -> Result<usize, SpinalError> {
        let mut total = 0;
        loop {
            match self.stream.read(&mut self.scratch[..]) {
                Ok(0) => {
                    // Orderly shutdown by the peer.
                    return if total > 0 {
                        Ok(total)
                    } else {
                        Err(transport_err())
                    };
                }
                Ok(n) => {
                    out.extend_from_slice(&self.scratch[..n]);
                    total += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(total),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(transport_err()),
            }
        }
    }
}

/// A non-blocking TCP listener handing out [`TcpTransport`]s.
#[derive(Debug)]
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Binds `addr` (use port 0 for an ephemeral port) in non-blocking
    /// mode.
    ///
    /// # Errors
    ///
    /// [`WireErrorKind::Transport`] when binding fails.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Self, SpinalError> {
        let listener = TcpListener::bind(addr).map_err(|_| transport_err())?;
        listener
            .set_nonblocking(true)
            .map_err(|_| transport_err())?;
        Ok(Self { listener })
    }

    /// The bound local address.
    ///
    /// # Errors
    ///
    /// [`WireErrorKind::Transport`] when the socket is unbound.
    pub fn local_addr(&self) -> Result<SocketAddr, SpinalError> {
        self.listener.local_addr().map_err(|_| transport_err())
    }

    /// Accepts one pending connection, if any.
    ///
    /// # Errors
    ///
    /// [`WireErrorKind::Transport`] for listener failures (`None` just
    /// means nobody is waiting).
    pub fn accept(&self) -> Result<Option<TcpTransport>, SpinalError> {
        match self.listener.accept() {
            Ok((stream, _)) => TcpTransport::from_stream(stream).map(Some),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => {
                Ok(None)
            }
            Err(_) => Err(transport_err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_fifo_and_backpressures() {
        let (mut a, mut b) = loopback_pair(8);
        assert_eq!(a.send(&[1, 2, 3, 4, 5, 6]).unwrap(), 6);
        // Only 2 bytes of room remain: partial accept, not an error.
        assert_eq!(a.send(&[7, 8, 9]).unwrap(), 2);
        assert_eq!(a.queued_toward_peer(), 8);
        let mut got = Vec::new();
        assert_eq!(b.recv(&mut got).unwrap(), 8);
        assert_eq!(got, [1, 2, 3, 4, 5, 6, 7, 8]);
        // Drained: sender has room again, receiver sees nothing.
        assert_eq!(b.recv(&mut got).unwrap(), 0);
        assert_eq!(a.send(&[9]).unwrap(), 1);
    }

    #[test]
    fn loopback_is_duplex() {
        let (mut a, mut b) = loopback_pair(64);
        a.send(b"ping").unwrap();
        b.send(b"pong").unwrap();
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        b.recv(&mut rb).unwrap();
        a.recv(&mut ra).unwrap();
        assert_eq!(rb, b"ping");
        assert_eq!(ra, b"pong");
    }

    #[test]
    fn chunked_loopback_is_deterministic_and_complete() {
        let run = |seed: u64| {
            let (mut a, mut b) = loopback_pair_chunked(1024, seed);
            let payload: Vec<u8> = (0..=255).collect();
            a.send(&payload).unwrap();
            let mut got = Vec::new();
            let mut sizes = Vec::new();
            while got.len() < payload.len() {
                let n = b.recv(&mut got).unwrap();
                assert!(n > 0, "bytes are pending, chunked recv must progress");
                sizes.push(n);
            }
            assert_eq!(got, payload);
            sizes
        };
        let s1 = run(42);
        assert_eq!(s1, run(42), "same seed, same chunk boundaries");
        assert!(s1.len() > 1, "chunking splits a 256-byte burst");
        assert_ne!(s1, run(43), "different seed, different boundaries");
    }

    #[test]
    fn dropped_peer_surfaces_as_transport_error() {
        let (mut a, b) = loopback_pair(16);
        drop(b);
        assert!(matches!(
            a.recv(&mut Vec::new()),
            Err(SpinalError::Wire {
                kind: WireErrorKind::Transport
            })
        ));
    }

    #[test]
    fn chaos_stall_then_disconnect_fires_at_exact_ops() {
        let plan = ChaosPlan::new(7)
            .with(ChaosEvent::Stall { from_op: 1, ops: 2 })
            .with(ChaosEvent::Disconnect { at_op: 4 });
        let (mut a, mut b) = chaos_pair(64, &plan);
        assert_eq!(a.send(&[1, 2]).unwrap(), 2); // op 0: passes
        assert_eq!(a.send(&[3]).unwrap(), 0); // op 1: stalled
        assert_eq!(a.recv(&mut Vec::new()).unwrap(), 0); // op 2: stalled
        assert_eq!(a.send(&[4]).unwrap(), 1); // op 3: passes
        assert!(a.send(&[5]).is_err()); // op 4: disconnected
        assert!(a.recv(&mut Vec::new()).is_err()); // op 5: stays dead
        assert_eq!(a.stalled_ops(), 2);
        let mut got = Vec::new();
        b.recv(&mut got).unwrap();
        assert_eq!(got, [1, 2, 4]);
    }

    #[test]
    fn chaos_half_close_keeps_other_direction_alive() {
        let plan = ChaosPlan::new(7).with(ChaosEvent::HalfCloseRx { at_op: 0 });
        let (mut a, mut b) = chaos_pair(64, &plan);
        assert!(a.recv(&mut Vec::new()).is_err());
        assert_eq!(a.send(&[9]).unwrap(), 1);
        let mut got = Vec::new();
        b.recv(&mut got).unwrap();
        assert_eq!(got, [9]);
    }

    #[test]
    fn chaos_corrupt_byte_flips_exactly_one_bit_deterministically() {
        let run = |seed: u64| {
            let plan = ChaosPlan::new(seed).with(ChaosEvent::CorruptByte { at_byte: 3 });
            let (mut a, mut b) = chaos_pair(64, &plan);
            b.send(&[0u8; 8]).unwrap();
            let mut got = Vec::new();
            while got.len() < 8 {
                a.recv(&mut got).unwrap();
            }
            assert_eq!(a.corrupted_bytes(), 1);
            got
        };
        let g1 = run(11);
        let flipped: Vec<usize> = (0..8).filter(|&i| g1[i] != 0).collect();
        assert_eq!(flipped, [3], "exactly the requested byte is touched");
        assert_eq!(g1[3].count_ones(), 1, "exactly one bit flipped");
        assert_eq!(g1, run(11), "same seed, same flip");
    }

    #[test]
    fn tcp_roundtrip_smoke() {
        // Loopback sockets may be unavailable in a sandboxed test
        // environment; skip gracefully rather than fail.
        let Ok(acceptor) = TcpAcceptor::bind("127.0.0.1:0") else {
            eprintln!("skipping TCP smoke test: cannot bind loopback");
            return;
        };
        let addr = acceptor.local_addr().unwrap();
        let mut client = TcpTransport::connect(addr).unwrap();
        let mut server = loop {
            if let Some(t) = acceptor.accept().unwrap() {
                break t;
            }
        };
        client.send(b"hello over tcp").unwrap();
        let mut got = Vec::new();
        while got.len() < 14 {
            server.recv(&mut got).unwrap();
        }
        assert_eq!(&got, b"hello over tcp");
    }
}
