//! A client-side driver for the serve dialogue.
//!
//! [`ServeClient`] owns one connection end-to-end: it CRC-frames a
//! payload, negotiates the session with HELLO, streams symbol bursts as
//! DATA frames and reacts to feedback — seeking its
//! [`TxSession`] on NACK, finishing on ACK / cumulative snapshot /
//! Close. Impairments compose in front of the wire: an optional
//! [`FaultPlan`] rewrites each pushed symbol into zero or more
//! deliveries (drop, duplicate, reorder, corrupt, stale slot) and an
//! optional noise hook perturbs I/Q values (e.g. an AWGN channel), both
//! deterministic under their seeds.

use std::collections::VecDeque;

use spinal_core::bits::BitVec;
use spinal_core::error::SpinalError;
use spinal_core::frame::{frame_encode, Checksum};
use spinal_core::hash::Lookup3;
use spinal_core::map::LinearMapper;
use spinal_core::params::CodeParams;
use spinal_core::puncture::StridedPuncture;
use spinal_core::session::{TxPosition, TxSession};
use spinal_core::symbol::{IqSymbol, Slot};
use spinal_core::SpinalCode;
use spinal_link::{Delivery, FaultPlan, FaultStream, FeedbackMode};

use crate::server::ServeProfile;
use crate::transport::Transport;
use crate::wire::{encode_frame, CloseReason, Frame, Hello, ResumeToken, WireDecoder};

/// Pluggable I/Q impairment applied to every delivered symbol.
pub type NoiseHook = Box<dyn FnMut(IqSymbol) -> IqSymbol + Send>;

/// Client-side session shape (the HELLO fields the client negotiates,
/// plus local pacing).
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Serving schedule — must match the server's configured profile,
    /// or slot labels will disagree.
    pub profile: ServeProfile,
    /// Segment width `k`.
    pub k: u32,
    /// Mapper bit depth `c`.
    pub c: u32,
    /// Requested decoder beam width.
    pub beam: u32,
    /// Receiver symbol budget.
    pub max_symbols: u64,
    /// Code seed.
    pub seed: u64,
    /// Feedback mode to negotiate.
    pub mode: FeedbackMode,
    /// Symbols pushed per tick while streaming.
    pub burst: usize,
    /// Replay marks retained for NACK seeks (one per burst).
    pub marks: usize,
    /// Ticks without inbound bytes after which the client probes the
    /// server with PING (one outstanding probe until activity resumes).
    /// `u64::MAX` disables probing.
    pub keepalive_idle: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            profile: ServeProfile::paper_default(),
            k: 4,
            c: 8,
            beam: 16,
            max_symbols: 1 << 14,
            seed: 1,
            mode: FeedbackMode::AckOnly,
            burst: 4,
            marks: 64,
            keepalive_idle: u64::MAX,
        }
    }
}

/// How a client session ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientOutcome {
    /// The server decoded the message.
    Decoded {
        /// Symbols the decoder consumed.
        symbols_used: u64,
        /// Decode attempts it ran.
        attempts: u32,
    },
    /// Admission was rejected (pool full).
    Busy,
    /// The receiver exhausted its symbol budget.
    Exhausted,
    /// The server abandoned the session.
    Abandoned,
    /// The server closed the dialogue on a protocol violation.
    ProtocolClosed,
    /// The transport died before a verdict.
    TransportClosed,
    /// The server shed the session under load or at a drain deadline
    /// (the resume token may still be honoured after a reconnect).
    Shed,
    /// The resume failed: the server refused the token (unknown,
    /// corrupted or expired), or the client's bounded replay window no
    /// longer covered the server's `ResumeAck` cursor, so the stream
    /// could never be made whole. Start over with a fresh HELLO.
    ResumeRejected,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ClientState {
    Greeting,
    /// Reconnected; RESUME sent, awaiting RESUME-ACK.
    Resuming,
    Streaming,
    Done,
}

/// One client connection driving the serve dialogue to completion.
pub struct ServeClient<T: Transport> {
    transport: T,
    wire: WireDecoder,
    egress: Vec<u8>,
    tx: TxSession<Lookup3, LinearMapper, StridedPuncture>,
    next_seq: u64,
    marks: VecDeque<(u64, TxPosition)>,
    marks_cap: usize,
    burst: usize,
    fault: Option<FaultStream>,
    push_scratch: Vec<Delivery>,
    deliveries: Vec<Delivery>,
    run_scratch: Vec<(Slot, IqSymbol)>,
    noise: Option<NoiseHook>,
    state: ClientState,
    outcome: Option<ClientOutcome>,
    decoded: Option<BitVec>,
    symbols_sent: u64,
    rxbuf: Vec<u8>,
    /// The HELLO as negotiated — replayed on a reconnect that has no
    /// resume token yet.
    hello: Hello,
    tick_count: u64,
    last_rx_tick: u64,
    pinged: bool,
    keepalive_idle: u64,
    resume_token: Option<ResumeToken>,
    goaway: Option<u64>,
}

impl<T: Transport> ServeClient<T> {
    /// Opens a session: CRC-16-frames `payload`, builds the matching
    /// [`TxSession`] and queues the HELLO. `tick` from there on.
    ///
    /// # Errors
    ///
    /// Propagates invalid shape (bad `k`/`c`/stride, payload not a
    /// whole number of segments after framing).
    pub fn new(transport: T, cfg: &ClientConfig, payload: &BitVec) -> Result<Self, SpinalError> {
        let framed = frame_encode(payload, Checksum::Crc16);
        let params = CodeParams::builder()
            .message_bits(framed.len() as u32)
            .k(cfg.k)
            .seed(cfg.seed)
            .build()?;
        let code = SpinalCode::new(
            params,
            Lookup3::new(cfg.seed),
            LinearMapper::new(cfg.c),
            StridedPuncture::with_order(cfg.profile.stride, cfg.profile.order)?,
        );
        let tx = code.tx_session(&framed)?;
        let hello = Hello {
            message_bits: framed.len() as u32,
            k: cfg.k,
            c: cfg.c,
            beam: cfg.beam,
            max_symbols: cfg.max_symbols,
            seed: cfg.seed,
            mode: cfg.mode,
        };
        let mut egress = Vec::new();
        encode_frame(&Frame::Hello(hello), &mut egress)?;
        Ok(Self {
            transport,
            wire: WireDecoder::new(),
            egress,
            tx,
            next_seq: 0,
            marks: VecDeque::with_capacity(cfg.marks),
            marks_cap: cfg.marks.max(1),
            burst: cfg.burst.max(1),
            fault: None,
            push_scratch: Vec::new(),
            deliveries: Vec::new(),
            run_scratch: Vec::new(),
            noise: None,
            state: ClientState::Greeting,
            outcome: None,
            decoded: None,
            symbols_sent: 0,
            rxbuf: Vec::with_capacity(4096),
            hello,
            tick_count: 0,
            last_rx_tick: 0,
            pinged: false,
            keepalive_idle: cfg.keepalive_idle,
            resume_token: None,
            goaway: None,
        })
    }

    /// Installs a deterministic link-fault plan in front of the wire.
    pub fn with_fault(mut self, plan: &FaultPlan) -> Self {
        self.fault = Some(plan.stream());
        self
    }

    /// Installs an I/Q impairment (e.g. AWGN) applied per delivery.
    pub fn with_noise(mut self, noise: NoiseHook) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Whether the dialogue has reached a verdict.
    pub fn is_done(&self) -> bool {
        self.state == ClientState::Done
    }

    /// The session's verdict, once done.
    pub fn outcome(&self) -> Option<ClientOutcome> {
        self.outcome
    }

    /// The decoded payload (CRC framing already verified and stripped
    /// by the server), when the server sent it.
    pub fn decoded_payload(&self) -> Option<&BitVec> {
        self.decoded.as_ref()
    }

    /// Symbols pushed toward the wire so far (pre-fault count).
    pub fn symbols_sent(&self) -> u64 {
        self.symbols_sent
    }

    /// The resume token from the session's HELLO-ACK, once received.
    pub fn resume_token(&self) -> Option<ResumeToken> {
        self.resume_token
    }

    /// The drain budget from a server GO-AWAY, once received.
    pub fn go_away(&self) -> Option<u64> {
        self.goaway
    }

    /// Swaps in a fresh transport after a connection loss and restarts
    /// the dialogue: with a resume token a RESUME is queued (seeking
    /// the transmitter on RESUME-ACK), otherwise the original HELLO is
    /// replayed. Returns the old transport — dropping it is what closes
    /// the stale connection toward the server.
    pub fn reconnect(&mut self, transport: T) -> T {
        let old = std::mem::replace(&mut self.transport, transport);
        self.wire = WireDecoder::new();
        self.egress.clear();
        self.rxbuf.clear();
        self.outcome = None;
        self.goaway = None;
        self.pinged = false;
        self.last_rx_tick = self.tick_count;
        match self.resume_token {
            Some(token) => {
                self.state = ClientState::Resuming;
                let _ = encode_frame(&Frame::Resume { token }, &mut self.egress);
            }
            None => {
                self.state = ClientState::Greeting;
                let _ = encode_frame(&Frame::Hello(self.hello), &mut self.egress);
            }
        }
        old
    }

    /// Swaps in a fresh transport and restarts the dialogue *from
    /// scratch*: the resume token is renounced, the transmitter rewinds
    /// to the start of the stream and the original HELLO is replayed —
    /// the recovery path after [`ClientOutcome::ResumeRejected`], where
    /// the server no longer holds (or no longer honours) the session
    /// the token named, so retrying RESUME could never succeed. Returns
    /// the old transport, like [`reconnect`](Self::reconnect).
    pub fn restart(&mut self, transport: T) -> T {
        self.resume_token = None;
        self.tx.rewind();
        self.next_seq = 0;
        self.marks.clear();
        self.decoded = None;
        self.reconnect(transport)
    }

    /// Runs one client cycle: flush egress, absorb feedback, then (if
    /// streaming) push one burst of symbols as DATA frames, probing an
    /// idle server with PING past the keepalive threshold.
    pub fn tick(&mut self) {
        self.tick_count += 1;
        if self.state == ClientState::Done {
            // Keep flushing a final Close if queued.
            let _ = self.flush();
            return;
        }
        if self.flush().is_err() {
            self.finish(ClientOutcome::TransportClosed);
            return;
        }
        if self.pump_feedback().is_err() {
            self.finish(ClientOutcome::TransportClosed);
            return;
        }
        if self.state == ClientState::Done {
            return;
        }
        let idle = self.tick_count.saturating_sub(self.last_rx_tick);
        if idle >= self.keepalive_idle && !self.pinged {
            let _ = encode_frame(
                &Frame::Ping {
                    nonce: self.tick_count,
                },
                &mut self.egress,
            );
            self.pinged = true;
        }
        if self.state == ClientState::Streaming {
            self.push_burst();
        }
        if self.flush().is_err() {
            self.finish(ClientOutcome::TransportClosed);
        }
    }

    fn finish(&mut self, outcome: ClientOutcome) {
        if self.outcome.is_none() {
            self.outcome = Some(outcome);
        }
        self.state = ClientState::Done;
    }

    fn flush(&mut self) -> Result<(), SpinalError> {
        while !self.egress.is_empty() {
            let n = self.transport.send(&self.egress)?;
            if n == 0 {
                break;
            }
            self.egress.drain(..n);
        }
        Ok(())
    }

    fn pump_feedback(&mut self) -> Result<(), SpinalError> {
        self.rxbuf.clear();
        match self.transport.recv(&mut self.rxbuf) {
            Ok(0) => {}
            Ok(_) => {
                self.last_rx_tick = self.tick_count;
                self.pinged = false;
                self.wire.push_bytes(&self.rxbuf);
            }
            Err(e) => return Err(e),
        }
        loop {
            // A decoded frame borrows the reassembly buffer; convert it
            // to the small owned action below before mutating state.
            enum Fb {
                None,
                Streamed(ResumeToken),
                Resumed(u64),
                Ping(u64),
                GoAway(u64),
                Busy,
                Ack(u64, u32),
                Nack(u64),
                CumDecoded(u64),
                Decoded(BitVec),
                Closed(CloseReason),
                Violation,
            }
            let fb = match self.wire.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame::HelloAck { resume, .. })) => Fb::Streamed(resume),
                Ok(Some(Frame::ResumeAck { expected_seq })) => Fb::Resumed(expected_seq),
                Ok(Some(Frame::Ping { nonce })) => Fb::Ping(nonce),
                Ok(Some(Frame::Pong { .. })) => Fb::None,
                Ok(Some(Frame::GoAway { drain_ticks })) => Fb::GoAway(drain_ticks),
                Ok(Some(Frame::Busy { .. })) => Fb::Busy,
                Ok(Some(Frame::Ack {
                    symbols_used,
                    attempts,
                })) => Fb::Ack(symbols_used, attempts),
                Ok(Some(Frame::Nack { expected_seq })) => Fb::Nack(expected_seq),
                Ok(Some(Frame::CumAck {
                    decoded: true,
                    symbols_used,
                })) => Fb::CumDecoded(symbols_used),
                Ok(Some(Frame::CumAck { decoded: false, .. })) => Fb::None,
                Ok(Some(Frame::Decoded(bits))) => Fb::Decoded(bits.to_bitvec()),
                Ok(Some(Frame::Close { reason })) => Fb::Closed(reason),
                Ok(Some(_)) => Fb::Violation,
                Err(_) => Fb::Violation,
            };
            match fb {
                Fb::None => {}
                Fb::Streamed(token) => {
                    self.resume_token = Some(token);
                    if self.state == ClientState::Greeting {
                        self.state = ClientState::Streaming;
                    }
                }
                Fb::Resumed(expected_seq) => {
                    if !self.seek_to(expected_seq) {
                        // The replay window no longer covers the
                        // server's cursor: streaming on would leave a
                        // permanent sequence gap the NACK path (same
                        // bounded window) could never heal. Fail the
                        // resume explicitly; the caller may start over
                        // with a fresh HELLO.
                        self.finish(ClientOutcome::ResumeRejected);
                        continue;
                    }
                    if self.state == ClientState::Resuming {
                        self.state = ClientState::Streaming;
                    }
                }
                Fb::Ping(nonce) => {
                    let _ = encode_frame(&Frame::Pong { nonce }, &mut self.egress);
                }
                Fb::GoAway(drain_ticks) => self.goaway = Some(drain_ticks),
                Fb::Busy => self.finish(ClientOutcome::Busy),
                Fb::Ack(symbols_used, attempts) => self.finish(ClientOutcome::Decoded {
                    symbols_used,
                    attempts,
                }),
                Fb::CumDecoded(symbols_used) => self.finish(ClientOutcome::Decoded {
                    symbols_used,
                    attempts: 0,
                }),
                Fb::Decoded(bits) => self.decoded = Some(bits),
                Fb::Nack(expected) => {
                    // An uncoverable NACK (window slid past the gap)
                    // degrades to symbol-budget exhaustion; the server
                    // NACKs again only after further out-of-order data.
                    let _ = self.seek_to(expected);
                }
                Fb::Closed(reason) => self.finish(match reason {
                    CloseReason::Done => ClientOutcome::Decoded {
                        symbols_used: 0,
                        attempts: 0,
                    },
                    CloseReason::Exhausted => ClientOutcome::Exhausted,
                    CloseReason::Abandoned => ClientOutcome::Abandoned,
                    CloseReason::Protocol => ClientOutcome::ProtocolClosed,
                    CloseReason::ResumeInvalid => ClientOutcome::ResumeRejected,
                    CloseReason::Shed => ClientOutcome::Shed,
                }),
                Fb::Violation => self.finish(ClientOutcome::ProtocolClosed),
            }
            if self.state == ClientState::Done {
                break;
            }
        }
        Ok(())
    }

    /// Rewinds the transmitter to the latest replay mark at or before
    /// `expected` and resumes the stream from there (resent symbols
    /// keep their original sequence numbers and slots).
    ///
    /// Returns whether the stream now covers `expected`: `false` means
    /// every retained mark is newer than `expected` (the bounded mark
    /// window slid past the server's cursor), so the gap can never be
    /// replayed and the caller must not keep streaming as if it could.
    fn seek_to(&mut self, expected: u64) -> bool {
        if expected >= self.next_seq {
            // The server's cursor is at (or past) everything sent:
            // nothing needs replaying, and rewinding to the previous
            // mark would resend a burst the server already ingested —
            // inflating its symbol count and breaking the resumed
            // flow's bit-identity with an uninterrupted one.
            return true;
        }
        while self.marks.back().is_some_and(|&(seq, _)| seq > expected) {
            self.marks.pop_back();
        }
        if let Some(&(seq, pos)) = self.marks.back() {
            self.tx.seek(pos);
            self.next_seq = seq;
            return true;
        }
        // No mark at or before `expected`: fine only when the stream
        // has not reached it yet (nothing sent needs replaying).
        self.next_seq <= expected
    }

    fn push_burst(&mut self) {
        if self.marks.len() == self.marks_cap {
            self.marks.pop_front();
        }
        self.marks.push_back((self.next_seq, self.tx.position()));

        self.deliveries.clear();
        for _ in 0..self.burst {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.symbols_sent += 1;
            let (slot, sym) = self.tx.next_symbol();
            match &mut self.fault {
                None => self.deliveries.push(Delivery {
                    seq,
                    slot,
                    symbol: sym,
                }),
                Some(stream) => {
                    stream.push(seq, slot, sym, &mut self.push_scratch);
                    self.deliveries.append(&mut self.push_scratch);
                }
            }
        }
        if let Some(noise) = &mut self.noise {
            for d in &mut self.deliveries {
                d.symbol = noise(d.symbol);
            }
        }

        // Frame contiguous sequence runs together so the server's gap
        // detector sees exactly the impairments the fault plan created.
        let mut i = 0;
        while i < self.deliveries.len() {
            let start_seq = self.deliveries[i].seq;
            self.run_scratch.clear();
            let mut j = i;
            while j < self.deliveries.len() && self.deliveries[j].seq == start_seq + (j - i) as u64
            {
                let d = self.deliveries[j];
                self.run_scratch.push((d.slot, d.symbol));
                j += 1;
            }
            let _ = encode_frame(
                &Frame::Data {
                    seq: start_seq,
                    run: crate::wire::SymbolRun::Slots(&self.run_scratch),
                },
                &mut self.egress,
            );
            i = j;
        }
    }
}
