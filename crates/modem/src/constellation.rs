//! Fixed constellations: BPSK, QPSK (QAM-4), QAM-16, QAM-64.
//!
//! These are the symbol sets the Figure 2 LDPC baselines modulate over
//! ("LDPC, rate ½, BPSK", "rate ¾, QAM-16", …). Square QAM is built as
//! two independent Gray-coded PAM axes (the 802.11 labelling); every
//! constellation is normalised to **unit average symbol energy** so the
//! same AWGN channel calibration serves spinal and LDPC experiments
//! alike.
//!
//! Bit order within a symbol is MSB-first: the first
//! `bits_per_symbol/2` bits select the I level, the rest the Q level
//! (for BPSK the single bit selects the I sign).

use crate::gray::gray_decode;
use spinal_core::symbol::IqSymbol;

/// The modulations used by the Figure 2 baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// 1 bit/symbol, ±1 on the I axis.
    Bpsk,
    /// 2 bits/symbol (QAM-4).
    Qpsk,
    /// 4 bits/symbol.
    Qam16,
    /// 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// Bits carried per symbol.
    pub fn bits_per_symbol(&self) -> u32 {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QAM-4",
            Modulation::Qam16 => "QAM-16",
            Modulation::Qam64 => "QAM-64",
        }
    }

    /// All four modulations, in increasing density.
    pub fn all() -> [Modulation; 4] {
        [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ]
    }
}

/// A concrete constellation: the point table plus its labelling.
#[derive(Clone, Debug)]
pub struct Constellation {
    modulation: Modulation,
    points: Vec<IqSymbol>,
}

impl Constellation {
    /// Builds the (unit-energy, Gray-labelled) constellation for
    /// `modulation`.
    pub fn new(modulation: Modulation) -> Self {
        let b = modulation.bits_per_symbol();
        let mut points = match modulation {
            Modulation::Bpsk => (0..2u64)
                .map(|bits| IqSymbol::new(if bits == 0 { 1.0 } else { -1.0 }, 0.0))
                .collect::<Vec<_>>(),
            _ => {
                // Square QAM: b/2 bits per axis, Gray labelling.
                let half = b / 2;
                let levels = 1u32 << half;
                (0..(1u64 << b))
                    .map(|bits| {
                        let i_bits = (bits >> half) as u32;
                        let q_bits = (bits & ((1 << half) - 1)) as u32;
                        IqSymbol::new(
                            Self::pam_level(i_bits, levels),
                            Self::pam_level(q_bits, levels),
                        )
                    })
                    .collect()
            }
        };
        // Normalise to unit average energy.
        let e: f64 = points.iter().map(IqSymbol::energy).sum::<f64>() / points.len() as f64;
        let scale = (1.0 / e).sqrt();
        for p in &mut points {
            *p = *p * scale;
        }
        Self { modulation, points }
    }

    /// Gray-labelled PAM: bit pattern `v` selects level
    /// `gray⁻¹`-ordered position `u`, mapped to `2u + 1 − L` (unnormalised).
    fn pam_level(v: u32, levels: u32) -> f64 {
        // Find the position whose Gray code equals v: since gray_encode is
        // a bijection, position u satisfies gray_encode(u) = v.
        let u = gray_decode(v);
        f64::from(2 * u + 1) - f64::from(levels)
    }

    /// The modulation this table implements.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// Bits per symbol.
    pub fn bits_per_symbol(&self) -> u32 {
        self.modulation.bits_per_symbol()
    }

    /// The point table, indexed by the symbol's bit label.
    pub fn points(&self) -> &[IqSymbol] {
        &self.points
    }

    /// Maps a `bits_per_symbol`-bit label (low bits of `bits`) to its
    /// point.
    #[inline]
    pub fn modulate(&self, bits: u64) -> IqSymbol {
        self.points[(bits & ((1 << self.bits_per_symbol()) - 1)) as usize]
    }

    /// Modulates a bit slice (`0`/`1` values), MSB-first per symbol.
    /// The final group is zero-padded if `bits.len()` is not a multiple
    /// of `bits_per_symbol`.
    pub fn modulate_bits(&self, bits: &[u8]) -> Vec<IqSymbol> {
        let b = self.bits_per_symbol() as usize;
        bits.chunks(b)
            .map(|chunk| {
                let mut v = 0u64;
                for i in 0..b {
                    v = (v << 1) | u64::from(*chunk.get(i).unwrap_or(&0) & 1);
                }
                self.modulate(v)
            })
            .collect()
    }

    /// Nearest-point hard demodulation: returns the label of the closest
    /// constellation point.
    pub fn hard_demodulate(&self, y: IqSymbol) -> u64 {
        let mut best = (f64::INFINITY, 0u64);
        for (label, p) in self.points.iter().enumerate() {
            let d = y.dist_sq(p);
            if d < best.0 {
                best = (d, label as u64);
            }
        }
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_constellations() -> Vec<Constellation> {
        Modulation::all()
            .iter()
            .map(|&m| Constellation::new(m))
            .collect()
    }

    #[test]
    fn point_counts() {
        let sizes: Vec<usize> = all_constellations()
            .iter()
            .map(|c| c.points().len())
            .collect();
        assert_eq!(sizes, vec![2, 4, 16, 64]);
    }

    #[test]
    fn unit_average_energy() {
        for c in all_constellations() {
            let e: f64 =
                c.points().iter().map(IqSymbol::energy).sum::<f64>() / c.points().len() as f64;
            assert!(
                (e - 1.0).abs() < 1e-12,
                "{}: energy {e}",
                c.modulation().name()
            );
        }
    }

    #[test]
    fn bpsk_is_antipodal_on_i() {
        let c = Constellation::new(Modulation::Bpsk);
        assert_eq!(c.modulate(0), IqSymbol::new(1.0, 0.0));
        assert_eq!(c.modulate(1), IqSymbol::new(-1.0, 0.0));
    }

    #[test]
    fn qpsk_occupies_four_quadrants() {
        let c = Constellation::new(Modulation::Qpsk);
        let mut quadrants: Vec<(bool, bool)> =
            c.points().iter().map(|p| (p.i > 0.0, p.q > 0.0)).collect();
        quadrants.sort_unstable();
        quadrants.dedup();
        assert_eq!(quadrants.len(), 4);
    }

    #[test]
    fn gray_labelling_nearest_neighbours_differ_one_bit() {
        // For square QAM, horizontally/vertically adjacent points must
        // have labels at Hamming distance 1.
        for m in [Modulation::Qam16, Modulation::Qam64] {
            let c = Constellation::new(m);
            let pts = c.points();
            let n = pts.len();
            let dmin = {
                let mut d = f64::INFINITY;
                for a in 0..n {
                    for b in 0..n {
                        if a != b {
                            d = d.min(pts[a].dist_sq(&pts[b]));
                        }
                    }
                }
                d
            };
            for a in 0..n {
                for b in (a + 1)..n {
                    if pts[a].dist_sq(&pts[b]) < dmin * 1.0001 {
                        let hd = ((a ^ b) as u32).count_ones();
                        assert_eq!(hd, 1, "{}: labels {a:b} vs {b:b}", m.name());
                    }
                }
            }
        }
    }

    #[test]
    fn modulate_bits_chunks_msb_first() {
        let c = Constellation::new(Modulation::Qam16);
        // 8 bits -> 2 symbols; first symbol label 0b1010, second 0b0101.
        let syms = c.modulate_bits(&[1, 0, 1, 0, 0, 1, 0, 1]);
        assert_eq!(syms.len(), 2);
        assert_eq!(syms[0], c.modulate(0b1010));
        assert_eq!(syms[1], c.modulate(0b0101));
    }

    #[test]
    fn modulate_bits_pads_final_group_with_zeros() {
        let c = Constellation::new(Modulation::Qpsk);
        let syms = c.modulate_bits(&[1]);
        assert_eq!(syms.len(), 1);
        assert_eq!(syms[0], c.modulate(0b10));
    }

    #[test]
    fn hard_demodulate_inverts_modulate() {
        for c in all_constellations() {
            for label in 0..c.points().len() as u64 {
                assert_eq!(c.hard_demodulate(c.modulate(label)), label);
            }
        }
    }

    #[test]
    fn names_match_paper_legend() {
        assert_eq!(Modulation::Qpsk.name(), "QAM-4");
        assert_eq!(Modulation::Qam16.name(), "QAM-16");
        assert_eq!(Modulation::Qam64.name(), "QAM-64");
        assert_eq!(Modulation::Bpsk.name(), "BPSK");
    }

    proptest! {
        #[test]
        fn prop_hard_demod_robust_to_small_noise(label in 0u64..64, ni in -0.05..0.05f64, nq in -0.05..0.05f64) {
            // QAM-64 min distance is ~0.31 after normalisation; ±0.05
            // perturbations never cross a decision boundary.
            let c = Constellation::new(Modulation::Qam64);
            let y = c.modulate(label) + IqSymbol::new(ni, nq);
            prop_assert_eq!(c.hard_demodulate(y), label);
        }

        #[test]
        fn prop_modulate_masks_high_bits(bits in any::<u64>()) {
            for c in all_constellations() {
                let mask = (1u64 << c.bits_per_symbol()) - 1;
                prop_assert_eq!(c.modulate(bits), c.modulate(bits & mask));
            }
        }
    }
}
