//! Soft demapping: received symbols → per-bit log-likelihood ratios.
//!
//! The paper's LDPC baseline is "decoded with a powerful decoder
//! (40-iteration belief propagation decoder using soft information)" (§5);
//! the soft information is produced here. For each coded bit `i` of a
//! symbol the demapper computes
//!
//! ```text
//! LLR_i = ln  Σ_{x : bit_i(x)=0} exp(−‖y−x‖²/σ²)
//!       − ln  Σ_{x : bit_i(x)=1} exp(−‖y−x‖²/σ²)
//! ```
//!
//! (positive ⇒ bit 0 more likely), with `σ²` the total complex noise
//! variance. [`DemapMethod::Exact`] evaluates the sums with a numerically
//! stable log-sum-exp; [`DemapMethod::MaxLog`] keeps only the dominant
//! term (`max-log-MAP`), the common hardware simplification.

use crate::constellation::Constellation;
use spinal_core::symbol::IqSymbol;

/// Demapping algorithm choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemapMethod {
    /// Full log-sum-exp over the constellation (exact bit-MAP LLRs).
    Exact,
    /// Max-log approximation: difference of minimum distances.
    MaxLog,
}

/// Computes the LLRs of one received symbol, appending
/// `bits_per_symbol` values (MSB-first, matching
/// [`Constellation::modulate`]'s bit order) to `out`.
///
/// # Panics
///
/// Panics if `sigma2` is not positive.
pub fn demap_into(
    cst: &Constellation,
    y: IqSymbol,
    sigma2: f64,
    method: DemapMethod,
    out: &mut Vec<f64>,
) {
    assert!(sigma2 > 0.0, "demapping requires positive noise variance");
    let b = cst.bits_per_symbol();
    let points = cst.points();
    match method {
        DemapMethod::Exact => {
            // Precompute the (negative) exponents once per point.
            let exps: Vec<f64> = points.iter().map(|x| -y.dist_sq(x) / sigma2).collect();
            for bit in (0..b).rev() {
                let (mut max0, mut max1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
                for (label, &e) in exps.iter().enumerate() {
                    if (label >> bit) & 1 == 0 {
                        max0 = max0.max(e);
                    } else {
                        max1 = max1.max(e);
                    }
                }
                // Stable log-sum-exp per class.
                let (mut s0, mut s1) = (0.0f64, 0.0f64);
                for (label, &e) in exps.iter().enumerate() {
                    if (label >> bit) & 1 == 0 {
                        s0 += (e - max0).exp();
                    } else {
                        s1 += (e - max1).exp();
                    }
                }
                out.push((max0 + s0.ln()) - (max1 + s1.ln()));
            }
        }
        DemapMethod::MaxLog => {
            let d2: Vec<f64> = points.iter().map(|x| y.dist_sq(x)).collect();
            for bit in (0..b).rev() {
                let (mut min0, mut min1) = (f64::INFINITY, f64::INFINITY);
                for (label, &d) in d2.iter().enumerate() {
                    if (label >> bit) & 1 == 0 {
                        min0 = min0.min(d);
                    } else {
                        min1 = min1.min(d);
                    }
                }
                out.push((min1 - min0) / sigma2);
            }
        }
    }
}

/// Demaps a whole received sequence, returning one LLR per coded bit.
pub fn demap_sequence(
    cst: &Constellation,
    ys: &[IqSymbol],
    sigma2: f64,
    method: DemapMethod,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(ys.len() * cst.bits_per_symbol() as usize);
    for &y in ys {
        demap_into(cst, y, sigma2, method, &mut out);
    }
    out
}

/// Hard decision from an LLR: `0` when the LLR favours bit 0.
#[inline]
pub fn hard_decision(llr: f64) -> u8 {
    u8::from(llr < 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::Modulation;
    use proptest::prelude::*;

    #[test]
    fn bpsk_exact_llr_is_4y_over_sigma2() {
        // Classic closed form: x = ±1 on I, LLR = 4·y_i/σ².
        let c = Constellation::new(Modulation::Bpsk);
        for (y, sigma2) in [(0.7, 0.5), (-0.3, 1.0), (1.5, 0.2)] {
            let mut out = Vec::new();
            demap_into(
                &c,
                IqSymbol::new(y, 0.0),
                sigma2,
                DemapMethod::Exact,
                &mut out,
            );
            let want = 4.0 * y / sigma2;
            assert!(
                (out[0] - want).abs() < 1e-9,
                "y={y}: got {} want {want}",
                out[0]
            );
        }
    }

    #[test]
    fn bpsk_maxlog_equals_exact() {
        // With only one point per class, max-log is exact.
        let c = Constellation::new(Modulation::Bpsk);
        let y = IqSymbol::new(0.42, 0.1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        demap_into(&c, y, 0.3, DemapMethod::Exact, &mut a);
        demap_into(&c, y, 0.3, DemapMethod::MaxLog, &mut b);
        assert!((a[0] - b[0]).abs() < 1e-9);
    }

    #[test]
    fn clean_symbol_gives_correct_signs() {
        for m in Modulation::all() {
            let c = Constellation::new(m);
            for label in 0..(1u64 << c.bits_per_symbol()) {
                let y = c.modulate(label);
                for method in [DemapMethod::Exact, DemapMethod::MaxLog] {
                    let mut out = Vec::new();
                    demap_into(&c, y, 0.01, method, &mut out);
                    for (j, &llr) in out.iter().enumerate() {
                        let bit = (label >> (c.bits_per_symbol() - 1 - j as u32)) & 1;
                        assert_eq!(
                            u64::from(hard_decision(llr)),
                            bit,
                            "{} label {label} bit {j} llr {llr}",
                            m.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn llr_magnitude_grows_with_snr() {
        let c = Constellation::new(Modulation::Qam16);
        let y = c.modulate(0b1010);
        let mag = |sigma2: f64| {
            let mut out = Vec::new();
            demap_into(&c, y, sigma2, DemapMethod::Exact, &mut out);
            out.iter().map(|l| l.abs()).sum::<f64>()
        };
        assert!(mag(0.01) > mag(0.1));
        assert!(mag(0.1) > mag(1.0));
    }

    #[test]
    fn maxlog_tracks_exact_at_high_snr() {
        let c = Constellation::new(Modulation::Qam64);
        let y = c.modulate(13) + IqSymbol::new(0.02, -0.03);
        let mut exact = Vec::new();
        let mut maxlog = Vec::new();
        demap_into(&c, y, 0.01, DemapMethod::Exact, &mut exact);
        demap_into(&c, y, 0.01, DemapMethod::MaxLog, &mut maxlog);
        for (a, b) in exact.iter().zip(&maxlog) {
            assert!(
                (a - b).abs() / a.abs().max(1.0) < 0.05,
                "exact {a} maxlog {b}"
            );
        }
    }

    #[test]
    fn demap_sequence_concatenates() {
        let c = Constellation::new(Modulation::Qpsk);
        let ys = [c.modulate(0b01), c.modulate(0b10)];
        let llrs = demap_sequence(&c, &ys, 0.1, DemapMethod::Exact);
        assert_eq!(llrs.len(), 4);
        // First symbol: bits 0,1 -> signs +,-; second: -,+.
        assert!(llrs[0] > 0.0 && llrs[1] < 0.0);
        assert!(llrs[2] < 0.0 && llrs[3] > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive noise variance")]
    fn rejects_zero_variance() {
        let c = Constellation::new(Modulation::Bpsk);
        demap_into(
            &c,
            IqSymbol::new(1.0, 0.0),
            0.0,
            DemapMethod::Exact,
            &mut Vec::new(),
        );
    }

    proptest! {
        #[test]
        fn prop_llrs_finite(mi in -2.0..2.0f64, mq in -2.0..2.0f64, s in 0.01..2.0f64) {
            let c = Constellation::new(Modulation::Qam16);
            let mut out = Vec::new();
            demap_into(&c, IqSymbol::new(mi, mq), s, DemapMethod::Exact, &mut out);
            demap_into(&c, IqSymbol::new(mi, mq), s, DemapMethod::MaxLog, &mut out);
            prop_assert!(out.iter().all(|l| l.is_finite()));
        }

        #[test]
        fn prop_exact_maxlog_agree_in_sign_far_from_boundaries(label in 0u64..16) {
            let c = Constellation::new(Modulation::Qam16);
            let y = c.modulate(label); // exactly on a point
            let mut exact = Vec::new();
            let mut maxlog = Vec::new();
            demap_into(&c, y, 0.05, DemapMethod::Exact, &mut exact);
            demap_into(&c, y, 0.05, DemapMethod::MaxLog, &mut maxlog);
            for (a, b) in exact.iter().zip(&maxlog) {
                prop_assert_eq!(hard_decision(*a), hard_decision(*b));
            }
        }
    }
}
