//! Gray coding: adjacent constellation points differ in exactly one bit.
//!
//! Every fixed constellation in the Figure 2 LDPC baseline uses Gray
//! labelling per axis (as 802.11 does), so a nearest-neighbour symbol
//! error corrupts a single coded bit.

/// Binary-reflected Gray encoding.
#[inline]
pub fn gray_encode(n: u32) -> u32 {
    n ^ (n >> 1)
}

/// Inverse of [`gray_encode`] (prefix-XOR from the top bit down).
#[inline]
pub fn gray_decode(g: u32) -> u32 {
    let mut out = 0u32;
    let mut acc = 0u32;
    for bit in (0..32).rev() {
        acc ^= (g >> bit) & 1;
        out |= acc << bit;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        // 0,1,2,3,4 -> 0,1,3,2,6
        assert_eq!(gray_encode(0), 0);
        assert_eq!(gray_encode(1), 1);
        assert_eq!(gray_encode(2), 3);
        assert_eq!(gray_encode(3), 2);
        assert_eq!(gray_encode(4), 6);
    }

    #[test]
    fn adjacent_codes_differ_in_one_bit() {
        for n in 0u32..255 {
            let d = gray_encode(n) ^ gray_encode(n + 1);
            assert_eq!(d.count_ones(), 1, "n={n}");
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(n in any::<u32>()) {
            prop_assert_eq!(gray_decode(gray_encode(n)), n);
            prop_assert_eq!(gray_encode(gray_decode(n)), n);
        }

        #[test]
        fn prop_gray_is_bijection_on_bytes(a in 0u32..256, b in 0u32..256) {
            prop_assume!(a != b);
            prop_assert_ne!(gray_encode(a), gray_encode(b));
        }
    }
}
