//! Fixed constellations and soft demapping — the modulation substrate of
//! the Figure 2 LDPC baseline.
//!
//! The paper compares the spinal code against 802.11n LDPC codes run over
//! BPSK, QAM-4, QAM-16 and QAM-64. This crate provides those symbol sets
//! ([`constellation::Constellation`], Gray-labelled, unit average energy)
//! and the LLR demappers ([`demap`]) that feed soft information to the
//! belief-propagation decoder in `spinal-ldpc`.
//!
//! # Example
//!
//! ```
//! use spinal_modem::{Constellation, DemapMethod, Modulation, demap_sequence, hard_decision};
//!
//! let qam16 = Constellation::new(Modulation::Qam16);
//! let coded = [1u8, 0, 1, 1, 0, 0, 1, 0];
//! let tx = qam16.modulate_bits(&coded);
//! // Noiseless demap recovers the bits with confident LLRs.
//! let llrs = demap_sequence(&qam16, &tx, 0.05, DemapMethod::Exact);
//! let hard: Vec<u8> = llrs.iter().map(|&l| hard_decision(l)).collect();
//! assert_eq!(hard, coded);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constellation;
pub mod demap;
pub mod gray;

pub use constellation::{Constellation, Modulation};
pub use demap::{demap_into, demap_sequence, hard_decision, DemapMethod};
pub use gray::{gray_decode, gray_encode};
