//! The rateless experiment: the §5 methodology, reproduced.
//!
//! "In these experiments we assume that the receiver informs the sender as
//! soon as it is able to fully decode the data; this allows us to isolate
//! the evaluation of the performance of spinal codes." Concretely, per
//! trial:
//!
//! 1. draw a fresh random message (and a fresh hash seed);
//! 2. stream symbols sub-pass by sub-pass through the channel (AWGN with
//!    optional ADC quantization, or BSC);
//! 3. after each sub-pass, run a decode attempt over everything received;
//! 4. stop at the first attempt the terminator accepts (genie: best
//!    hypothesis equals the truth; CRC: a candidate's checksum verifies)
//!    and record the rate `message bits / symbols sent`.
//!
//! The decode-attempt schedule can be thinned geometrically
//! ([`RatelessConfig::attempt_growth`]) to keep very-low-SNR runs
//! affordable; growth 1.0 attempts after every non-empty sub-pass, the
//! paper's idealised receiver.
//!
//! All trial loops run on the sharded [`crate::engine::SimEngine`]: each
//! worker owns a long-lived encoder / decoder scratch / observation set
//! reused across trials (zero steady-state allocation in genie mode),
//! per-trial randomness is counter-based, and every statistic is
//! bit-identical for any worker count. The harness is generic over the
//! channel through [`crate::engine::ChannelModel`], so AWGN (with ADC),
//! BSC, BEC and Rayleigh fading all share this one implementation —
//! see [`run_awgn_with`], [`run_bsc_with`], [`run_bec_with`],
//! [`run_fading_with`], and the early-stopping [`run_awgn_until`].

use crate::engine::{
    Accumulate, AwgnModel, BecModel, BscModel, ChannelModel, FadingModel, Scenario, SimEngine,
    Trial,
};
use crate::stats::{derive_seed, wilson_halfwidth, RunningStats};
use spinal_channel::{Channel, Rng};
use spinal_core::decode::{BeamConfig, BeamDecoder, CostModel};
use spinal_core::frame::{frame_encode, AnyTerminator, Checksum};
use spinal_core::hash::{AnyHash, HashFamily};
use spinal_core::map::{AnyIqMapper, BinaryMapper, Mapper};
use spinal_core::params::CodeParams;
use spinal_core::puncture::{AnySchedule, PunctureSchedule};
use spinal_core::sched::{MultiConfig, MultiDecoder, SessionEvent, SessionId};
use spinal_core::session::{Poll, RxConfig, RxSession, TxSession};
use spinal_core::symbol::Slot;
use spinal_core::{AwgnCost, BecCost, BitVec, BscCost, Encoder, SpinalError};

/// How the receiver decides it has decoded successfully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// The §5 genie: success exactly when the best hypothesis is the
    /// true message. Isolates code performance.
    Genie,
    /// The practical §3.2 receiver: success when a beam candidate's CRC
    /// verifies. Pays the checksum's rate overhead and can terminate on
    /// an undetected error (counted separately).
    Crc(Checksum),
}

/// Configuration of an AWGN rateless experiment.
#[derive(Clone, Debug)]
pub struct RatelessConfig {
    /// Spinal-code message length in bits (including the CRC in
    /// [`Termination::Crc`] mode).
    pub message_bits: u32,
    /// Segment size `k`.
    pub k: u32,
    /// Known tail segments (§4).
    pub tail_segments: u32,
    /// Spine-hash family.
    pub hash: HashFamily,
    /// Constellation mapper (carries `c`).
    pub mapper: AnyIqMapper,
    /// Transmission schedule.
    pub schedule: AnySchedule,
    /// Beam decoder resources.
    pub beam: BeamConfig,
    /// ADC bits per dimension at the receiver (`None` = ideal receiver).
    pub adc_bits: Option<u32>,
    /// Give up after this many passes (a trial that exhausts this is a
    /// failure contributing rate 0).
    pub max_passes: u32,
    /// Decode-attempt thinning: the next attempt waits until the symbol
    /// count reaches `ceil(previous × growth)`. 1.0 = attempt after every
    /// non-empty sub-pass.
    pub attempt_growth: f64,
    /// Success criterion.
    pub termination: Termination,
}

impl RatelessConfig {
    /// The Figure 2 configuration: m = 24, k = 8, c = 10, B = 16,
    /// stride-8 puncturing, 14-bit ADC, genie termination.
    pub fn fig2() -> Self {
        Self {
            message_bits: 24,
            k: 8,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(10),
            schedule: AnySchedule::strided(8).expect("8 is a valid stride"),
            beam: BeamConfig::paper_default(),
            adc_bits: Some(14),
            max_passes: 1000,
            attempt_growth: 1.05,
            termination: Termination::Genie,
        }
    }
}

/// Configuration of a BSC rateless experiment (binary mapper; one coded
/// bit per spine value per pass).
#[derive(Clone, Debug)]
pub struct BscRatelessConfig {
    /// Message length in bits.
    pub message_bits: u32,
    /// Segment size `k`.
    pub k: u32,
    /// Known tail segments.
    pub tail_segments: u32,
    /// Spine-hash family.
    pub hash: HashFamily,
    /// Transmission schedule.
    pub schedule: AnySchedule,
    /// Beam decoder resources.
    pub beam: BeamConfig,
    /// Pass budget.
    pub max_passes: u32,
    /// Decode-attempt thinning (see [`RatelessConfig::attempt_growth`]).
    pub attempt_growth: f64,
    /// Success criterion.
    pub termination: Termination,
}

impl BscRatelessConfig {
    /// A sensible default BSC experiment: k = 4, B = 16, unpunctured.
    pub fn default_k4(message_bits: u32) -> Self {
        Self {
            message_bits,
            k: 4,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            schedule: AnySchedule::none(),
            beam: BeamConfig::paper_default(),
            max_passes: 400,
            attempt_growth: 1.0,
            termination: Termination::Genie,
        }
    }
}

/// Aggregated results of a rateless experiment.
#[derive(Clone, Debug)]
pub struct RatelessOutcome {
    /// Trials run.
    pub trials: u32,
    /// Trials decoded correctly before the pass budget expired.
    pub successes: u32,
    /// CRC-mode trials that terminated on a wrong payload.
    pub undetected: u32,
    /// Per-trial rate in payload bits per symbol (failures contribute 0).
    pub rate: RunningStats,
    /// Symbols needed, over successful trials only.
    pub symbols_on_success: RunningStats,
    /// Decode attempts per trial.
    pub attempts: RunningStats,
    /// Symbols transmitted across *all* trials (failures included).
    pub total_symbols: u64,
    /// Payload bits per trial (for the throughput computation).
    payload_bits: u32,
}

impl RatelessOutcome {
    fn new(payload_bits: u32) -> Self {
        Self {
            trials: 0,
            successes: 0,
            undetected: 0,
            rate: RunningStats::new(),
            symbols_on_success: RunningStats::new(),
            attempts: RunningStats::new(),
            total_symbols: 0,
            payload_bits,
        }
    }

    /// Mean achieved rate (bits/symbol), failures counted as zero.
    pub fn rate_mean(&self) -> f64 {
        self.rate.mean()
    }

    /// Standard error of the mean rate.
    pub fn rate_stderr(&self) -> f64 {
        self.rate.stderr()
    }

    /// Aggregate throughput: correctly delivered payload bits divided by
    /// all symbols transmitted (failed trials' symbols included). Unlike
    /// [`rate_mean`](Self::rate_mean) — a mean of per-trial ratios, which
    /// Jensen's inequality biases upward for short messages — this is the
    /// operational long-run rate. Note that under genie termination even
    /// this metric can edge past capacity at very low SNR: the genie's
    /// stop signal is unpaid side information worth ~log2(attempts) bits,
    /// which is material against a 24-bit message (see EXPERIMENTS.md).
    pub fn throughput(&self) -> f64 {
        if self.total_symbols == 0 {
            0.0
        } else {
            f64::from(self.successes) * f64::from(self.payload_bits) / self.total_symbols as f64
        }
    }

    /// Fraction of trials decoded correctly.
    pub fn success_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.successes) / f64::from(self.trials)
        }
    }
}

impl Accumulate for RatelessOutcome {
    fn merge(&mut self, other: Self) {
        if other.trials == 0 {
            return;
        }
        if self.trials == 0 {
            *self = other;
            return;
        }
        debug_assert_eq!(self.payload_bits, other.payload_bits);
        self.trials += other.trials;
        self.successes += other.successes;
        self.undetected += other.undetected;
        self.rate.merge(&other.rate);
        self.symbols_on_success.merge(&other.symbols_on_success);
        self.attempts.merge(&other.attempts);
        self.total_symbols += other.total_symbols;
    }
}

/// Per-worker reusable state for the rateless scenario: a long-lived
/// [`MultiDecoder`] pool whose lanes (one per concurrent trial of a
/// scheduling chunk) are rebound per trial — after the first chunk
/// warms a lane, a genie-mode worker performs **zero heap allocation**
/// per trial (CRC-mode framing still builds one message per trial).
/// Every chunk's trials decode *concurrently* through the pool's fused
/// cohort sweeps (trials share one hot expansion scratch), and every
/// retry is incremental via the per-lane checkpoint stores; results are
/// bit-identical to running the trials one at a time.
pub struct RatelessWorker<M: Mapper, C: CostModel<M::Symbol>, Ch> {
    pool: MultiDecoder<AnyHash, M, C, AnySchedule>,
    lanes: Vec<RatelessLane<M, Ch>>,
    events: Vec<SessionEvent>,
    sub: Vec<(Slot, M::Symbol)>,
    noisy: Vec<M::Symbol>,
}

/// One concurrent trial's sender-side state inside a worker.
struct RatelessLane<M: Mapper, Ch> {
    tx: Option<TxSession<AnyHash, M, AnySchedule>>,
    id: Option<SessionId>,
    channel: Option<Ch>,
    message: BitVec,
    payload: BitVec,
    /// Sub-pass budget left (`max_passes × subpasses_per_pass`), empty
    /// sub-passes included — the same loop bound the one-at-a-time
    /// receiver ran.
    subpasses_left: u32,
    /// The terminator accepted (`Poll::Decoded`).
    finished: bool,
    /// No more symbols will be fed (decoded, or budget spent).
    done: bool,
}

impl<M: Mapper, Ch> RatelessLane<M, Ch> {
    fn fresh() -> Self {
        Self {
            tx: None,
            id: None,
            channel: None,
            message: BitVec::new(),
            payload: BitVec::new(),
            subpasses_left: 0,
            finished: false,
            done: false,
        }
    }
}

/// The generic rateless experiment: one trial = draw message, stream
/// sub-passes through the channel, re-decode on the thinned attempt
/// schedule, stop at acceptance. Instantiated per channel family via
/// [`ChannelModel`].
struct RatelessScenario<'a, M: Mapper, C: CostModel<M::Symbol>, CM: ChannelModel<M::Symbol>> {
    message_bits: u32,
    k: u32,
    tail_segments: u32,
    hash: HashFamily,
    mapper: M,
    cost: C,
    schedule: &'a AnySchedule,
    beam: BeamConfig,
    max_passes: u32,
    attempt_growth: f64,
    termination: Termination,
    payload_bits: u32,
    channel: CM,
    /// `derive_seed` stream labels for (code, noise, message) — kept
    /// distinct per channel family so ported entry points reproduce the
    /// pre-engine trial randomness.
    streams: [u64; 3],
    master_seed: u64,
}

/// Fills `out` with `bits` random bits (no allocation once warmed).
fn random_message_into(rng: &mut Rng, bits: u32, out: &mut BitVec) {
    out.clear();
    for _ in 0..bits {
        out.push(rng.bit());
    }
}

impl<M, C, CM> RatelessScenario<'_, M, C, CM>
where
    M: Mapper,
    C: CostModel<M::Symbol>,
    CM: ChannelModel<M::Symbol>,
{
    fn params(&self, code_seed: u64) -> CodeParams {
        CodeParams::builder()
            .message_bits(self.message_bits)
            .k(self.k)
            .tail_segments(self.tail_segments)
            .seed(code_seed)
            .build()
            .expect("invalid rateless configuration")
    }
}

impl<M, C, CM> RatelessScenario<'_, M, C, CM>
where
    M: Mapper,
    C: CostModel<M::Symbol>,
    CM: ChannelModel<M::Symbol>,
    M::Symbol: Send,
{
    /// Binds lane `lane_idx` of the worker to trial `index`: draws the
    /// trial's message, rebinds the lane's sender session and pool
    /// session to the reseeded code, and arms the channel and sub-pass
    /// budget.
    fn bind_lane(&self, w: &mut RatelessWorker<M, C, CM::Ch>, lane_idx: usize, index: u64) {
        let code_seed = derive_seed(self.master_seed, self.streams[0], index);
        let noise_seed = derive_seed(self.master_seed, self.streams[1], index);
        let msg_seed = derive_seed(self.master_seed, self.streams[2], index);
        if w.lanes.len() <= lane_idx {
            w.lanes.resize_with(lane_idx + 1, RatelessLane::fresh);
        }
        let lane = &mut w.lanes[lane_idx];

        // Draw the trial's message (and, in CRC mode, frame it).
        let mut rng = Rng::seed_from(msg_seed);
        match self.termination {
            Termination::Genie => {
                random_message_into(&mut rng, self.message_bits, &mut lane.message)
            }
            Termination::Crc(ck) => {
                random_message_into(
                    &mut rng,
                    self.message_bits - ck.width() as u32,
                    &mut lane.payload,
                );
                lane.message = frame_encode(&lane.payload, ck);
            }
        }

        // Rebind the lane's long-lived sender/receiver sessions to this
        // trial's reseeded code.
        let params = self.params(code_seed);
        let hash = AnyHash::new(self.hash, code_seed);
        match &mut lane.tx {
            Some(t) => t
                .rebind(&params, hash, &lane.message)
                .expect("message length validated by config"),
            None => {
                lane.tx = Some(TxSession::new(
                    Encoder::new(&params, hash, self.mapper.clone(), &lane.message)
                        .expect("message length validated by config"),
                    self.schedule.clone(),
                ))
            }
        }
        let decoder = BeamDecoder::new(
            &params,
            hash,
            self.mapper.clone(),
            self.cost.clone(),
            self.beam,
        )
        .expect("beam config validated by run entry point");
        match lane.id {
            Some(id) => w.pool.rebind(id, decoder).expect("lane session is live"),
            None => {
                let terminator = match self.termination {
                    Termination::Genie => AnyTerminator::genie(BitVec::new()),
                    Termination::Crc(ck) => AnyTerminator::crc(ck),
                };
                let rx = RxSession::new(
                    decoder,
                    self.schedule.clone(),
                    terminator,
                    RxConfig {
                        beam: self.beam,
                        max_symbols: u64::MAX, // the pass budget bounds the loop
                        attempt_growth: self.attempt_growth,
                    },
                )
                .expect("attempt_growth validated by run entry point");
                lane.id = Some(
                    w.pool
                        .insert(rx)
                        .expect("worker pool has no admission ceiling"),
                );
            }
        }
        if let Termination::Genie = self.termination {
            w.pool
                .get_mut(lane.id.expect("bound above"))
                .expect("lane session is live")
                .terminator_mut()
                .genie_mut()
                .expect("genie session")
                .set_truth(&lane.message);
        }
        lane.channel = Some(self.channel.make(noise_seed));
        lane.subpasses_left = self
            .max_passes
            .saturating_mul(self.schedule.subpasses_per_pass());
        lane.finished = false;
        lane.done = false;
    }

    /// Runs trials `indices` concurrently through the worker's pool —
    /// each round feeds every live lane its next non-empty sub-pass and
    /// one drive runs all due (incremental) attempts fused per cohort —
    /// then accumulates outcomes in ascending trial order. Per-trial
    /// results are bit-identical to the one-at-a-time loop: each lane's
    /// symbol stream and attempt schedule are untouched by batching.
    fn run_lanes(
        &self,
        indices: std::ops::Range<u64>,
        w: &mut RatelessWorker<M, C, CM::Ch>,
        acc: &mut RatelessOutcome,
    ) {
        let n = (indices.end - indices.start) as usize;
        for (lane_idx, index) in indices.clone().enumerate() {
            self.bind_lane(w, lane_idx, index);
        }

        let RatelessWorker {
            pool,
            lanes,
            events,
            sub,
            noisy,
        } = w;
        loop {
            let mut any_fed = false;
            for lane in lanes[..n].iter_mut() {
                if lane.done {
                    continue;
                }
                // Feed the lane's next non-empty sub-pass (empty ones
                // consume budget without symbols, as in the solo loop).
                let mut fed = false;
                while lane.subpasses_left > 0 {
                    lane.subpasses_left -= 1;
                    lane.tx.as_mut().expect("lane bound").next_subpass_into(sub);
                    if sub.is_empty() {
                        continue;
                    }
                    let channel = lane.channel.as_mut().expect("lane bound");
                    noisy.clear();
                    noisy.extend(sub.iter().map(|&(_, x)| channel.transmit(x)));
                    pool.ingest(lane.id.expect("lane bound"), noisy)
                        .expect("session still listening");
                    fed = true;
                    break;
                }
                if fed {
                    any_fed = true;
                } else {
                    // Pass budget spent without acceptance.
                    lane.done = true;
                }
            }
            if !any_fed {
                break;
            }
            pool.drive_into(events);
            for ev in events.iter() {
                let lane = lanes[..n]
                    .iter_mut()
                    .find(|l| l.id == Some(ev.id))
                    .expect("event for a bound lane");
                match ev.poll() {
                    Some(Poll::NeedMore { .. }) | None => {}
                    Some(Poll::Decoded { .. }) => {
                        lane.finished = true;
                        lane.done = true;
                    }
                    Some(Poll::Exhausted { .. }) => lane.done = true,
                }
            }
        }

        // Accumulate in ascending trial order (the chunk merge contract).
        for lane in lanes[..n].iter() {
            let rx = pool.get(lane.id.expect("lane bound")).expect("lane live");
            let correct = lane.finished
                && match self.termination {
                    // The genie accepts exactly the truth.
                    Termination::Genie => true,
                    Termination::Crc(_) => rx.payload() == Some(&lane.payload),
                };
            let sent = rx.symbols();
            acc.trials += 1;
            acc.attempts.push(f64::from(rx.attempts()));
            acc.total_symbols += sent;
            if correct {
                acc.successes += 1;
                acc.rate.push(f64::from(self.payload_bits) / sent as f64);
                acc.symbols_on_success.push(sent as f64);
            } else {
                if lane.finished {
                    acc.undetected += 1;
                }
                acc.rate.push(0.0);
            }
        }
    }
}

impl<M, C, CM> Scenario for RatelessScenario<'_, M, C, CM>
where
    M: Mapper,
    C: CostModel<M::Symbol>,
    CM: ChannelModel<M::Symbol>,
    M::Symbol: Send,
    CM::Ch: Send,
{
    type Worker = RatelessWorker<M, C, CM::Ch>;
    type Acc = RatelessOutcome;

    fn make_worker(&self) -> Self::Worker {
        RatelessWorker {
            pool: MultiDecoder::new(MultiConfig::default()),
            lanes: Vec::new(),
            events: Vec::new(),
            sub: Vec::new(),
            noisy: Vec::new(),
        }
    }

    fn empty_acc(&self) -> RatelessOutcome {
        RatelessOutcome::new(self.payload_bits)
    }

    fn run_trial(&self, trial: Trial, w: &mut Self::Worker, acc: &mut RatelessOutcome) {
        self.run_lanes(trial.index..trial.index + 1, w, acc);
    }

    /// The multi-session override: the chunk's trials decode
    /// concurrently through the worker's pool (see
    /// [`Scenario::run_chunk`] for the bit-identity contract).
    fn run_chunk(
        &self,
        indices: std::ops::Range<u64>,
        _master_seed: u64,
        w: &mut Self::Worker,
        acc: &mut RatelessOutcome,
    ) {
        self.run_lanes(indices, w, acc);
    }
}

/// When to cut a Monte-Carlo run short: evaluated by the engine after
/// each deterministic chunk merge, so early-stopped results are still
/// bit-identical for any worker count.
#[derive(Clone, Copy, Debug)]
pub struct StopRule {
    /// Never stop before this many trials.
    pub min_trials: u64,
    /// Normal quantile for the Wilson interval (1.96 ≈ 95%).
    pub z: f64,
    /// Stop once the Wilson half-width of the success fraction is at or
    /// below this.
    pub max_success_halfwidth: Option<f64>,
    /// Stop once the standard error of the mean rate is at or below
    /// this.
    pub max_rate_stderr: Option<f64>,
}

impl StopRule {
    /// A 95% Wilson-interval rule on the success fraction.
    pub fn success_within(halfwidth: f64, min_trials: u64) -> Self {
        Self {
            min_trials,
            z: 1.96,
            max_success_halfwidth: Some(halfwidth),
            max_rate_stderr: None,
        }
    }

    /// A rate-standard-error rule.
    pub fn rate_stderr_within(stderr: f64, min_trials: u64) -> Self {
        Self {
            min_trials,
            z: 1.96,
            max_success_halfwidth: None,
            max_rate_stderr: Some(stderr),
        }
    }

    /// `true` once every configured criterion is met (and at least one
    /// is configured).
    pub fn satisfied(&self, acc: &RatelessOutcome, trials_done: u64) -> bool {
        if trials_done < self.min_trials {
            return false;
        }
        if self.max_success_halfwidth.is_none() && self.max_rate_stderr.is_none() {
            return false;
        }
        if let Some(target) = self.max_success_halfwidth {
            if wilson_halfwidth(u64::from(acc.successes), u64::from(acc.trials), self.z) > target {
                return false;
            }
        }
        if let Some(target) = self.max_rate_stderr {
            if acc.rate.stderr() > target || acc.rate.count() < 2 {
                return false;
            }
        }
        true
    }
}

fn payload_bits_for(message_bits: u32, termination: Termination) -> u32 {
    match termination {
        Termination::Genie => message_bits,
        // Saturating: a message shorter than its checksum is rejected by
        // `run_generic` before any trial runs.
        Termination::Crc(ck) => message_bits.saturating_sub(ck.width() as u32),
    }
}

/// Runs the generic rateless experiment on `engine`, optionally early
/// stopping. Returns the merged outcome (its `trials` field reports how
/// many trials it covers).
fn run_generic<M, C, CM>(
    scenario: &RatelessScenario<'_, M, C, CM>,
    max_trials: u32,
    engine: &SimEngine,
    stop: Option<&StopRule>,
) -> Result<RatelessOutcome, SpinalError>
where
    M: Mapper,
    C: CostModel<M::Symbol>,
    CM: ChannelModel<M::Symbol>,
    M::Symbol: Send,
    CM::Ch: Send,
{
    // Validate the whole configuration up front with typed errors, so
    // per-trial construction can rely on it unconditionally.
    if scenario.attempt_growth.is_nan() || scenario.attempt_growth < 1.0 {
        return Err(SpinalError::AttemptGrowth(scenario.attempt_growth));
    }
    scenario.beam.validate()?;
    CodeParams::builder()
        .message_bits(scenario.message_bits)
        .k(scenario.k)
        .tail_segments(scenario.tail_segments)
        .build()?;
    if let Termination::Crc(ck) = scenario.termination {
        if scenario.message_bits <= ck.width() as u32 {
            return Err(SpinalError::CrcWidth {
                message_bits: scenario.message_bits,
                crc_bits: ck.width() as u32,
            });
        }
    }
    let (outcome, _trials) = engine.run_until(
        scenario,
        u64::from(max_trials),
        scenario.master_seed,
        |acc: &RatelessOutcome, done| stop.is_some_and(|rule| rule.satisfied(acc, done)),
    );
    Ok(outcome)
}

impl RatelessConfig {
    /// The scenario for this configuration over an arbitrary I-Q channel
    /// model (the `streams` labels keep trial randomness stable per
    /// family).
    fn scenario<CM: ChannelModel<spinal_core::IqSymbol>>(
        &self,
        channel: CM,
        streams: [u64; 3],
        seed: u64,
    ) -> RatelessScenario<'_, AnyIqMapper, AwgnCost, CM> {
        RatelessScenario {
            message_bits: self.message_bits,
            k: self.k,
            tail_segments: self.tail_segments,
            hash: self.hash,
            mapper: self.mapper.clone(),
            cost: AwgnCost,
            schedule: &self.schedule,
            beam: self.beam,
            max_passes: self.max_passes,
            attempt_growth: self.attempt_growth,
            termination: self.termination,
            payload_bits: payload_bits_for(self.message_bits, self.termination),
            channel,
            streams,
            master_seed: seed,
        }
    }
}

impl BscRatelessConfig {
    fn scenario<C: CostModel<u8>, CM: ChannelModel<u8>>(
        &self,
        cost: C,
        channel: CM,
        streams: [u64; 3],
        seed: u64,
    ) -> RatelessScenario<'_, BinaryMapper, C, CM> {
        RatelessScenario {
            message_bits: self.message_bits,
            k: self.k,
            tail_segments: self.tail_segments,
            hash: self.hash,
            mapper: BinaryMapper::new(),
            cost,
            schedule: &self.schedule,
            beam: self.beam,
            max_passes: self.max_passes,
            attempt_growth: self.attempt_growth,
            termination: self.termination,
            payload_bits: payload_bits_for(self.message_bits, self.termination),
            channel,
            streams,
            master_seed: seed,
        }
    }
}

/// Runs `trials` AWGN trials at `snr_db` and aggregates (serial engine —
/// the historical entry point).
pub fn run_awgn(
    cfg: &RatelessConfig,
    snr_db: f64,
    trials: u32,
    seed: u64,
) -> Result<RatelessOutcome, SpinalError> {
    run_awgn_with(cfg, snr_db, trials, seed, &SimEngine::serial())
}

/// [`run_awgn`] on an explicit [`SimEngine`] (sharded across its
/// workers; bit-identical for any worker count).
pub fn run_awgn_with(
    cfg: &RatelessConfig,
    snr_db: f64,
    trials: u32,
    seed: u64,
    engine: &SimEngine,
) -> Result<RatelessOutcome, SpinalError> {
    run_awgn_until(cfg, snr_db, trials, seed, engine, None)
}

/// [`run_awgn_with`] with an optional early-stop rule: runs at most
/// `max_trials`, stopping once `stop` is satisfied on the deterministic
/// chunk prefix.
pub fn run_awgn_until(
    cfg: &RatelessConfig,
    snr_db: f64,
    max_trials: u32,
    seed: u64,
    engine: &SimEngine,
    stop: Option<&StopRule>,
) -> Result<RatelessOutcome, SpinalError> {
    let model = AwgnModel {
        snr_db,
        adc_bits: cfg.adc_bits,
        peak: cfg.mapper.peak(),
    };
    run_generic(
        &cfg.scenario(model, [0, 1, 2], seed),
        max_trials,
        engine,
        stop,
    )
}

/// Runs `trials` Rayleigh block-fading trials at mean SNR `snr_db` with
/// coherence `block_len` symbols (coherent receiver; ideal ADC).
pub fn run_fading_with(
    cfg: &RatelessConfig,
    snr_db: f64,
    block_len: u32,
    trials: u32,
    seed: u64,
    engine: &SimEngine,
) -> Result<RatelessOutcome, SpinalError> {
    if block_len == 0 {
        return Err(SpinalError::BlockLength(block_len));
    }
    let model = FadingModel { snr_db, block_len };
    run_generic(
        &cfg.scenario(model, [20, 21, 22], seed),
        trials,
        engine,
        None,
    )
}

/// Runs `trials` BSC trials at crossover probability `p` and aggregates
/// (serial engine — the historical entry point).
pub fn run_bsc(
    cfg: &BscRatelessConfig,
    p: f64,
    trials: u32,
    seed: u64,
) -> Result<RatelessOutcome, SpinalError> {
    run_bsc_with(cfg, p, trials, seed, &SimEngine::serial())
}

/// [`run_bsc`] on an explicit [`SimEngine`].
pub fn run_bsc_with(
    cfg: &BscRatelessConfig,
    p: f64,
    trials: u32,
    seed: u64,
    engine: &SimEngine,
) -> Result<RatelessOutcome, SpinalError> {
    run_bsc_until(cfg, p, trials, seed, engine, None)
}

/// [`run_bsc_with`] with an optional early-stop rule.
pub fn run_bsc_until(
    cfg: &BscRatelessConfig,
    p: f64,
    max_trials: u32,
    seed: u64,
    engine: &SimEngine,
    stop: Option<&StopRule>,
) -> Result<RatelessOutcome, SpinalError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(SpinalError::Probability {
            name: "crossover",
            value: p,
        });
    }
    run_generic(
        &cfg.scenario(BscCost, BscModel { p }, [10, 11, 12], seed),
        max_trials,
        engine,
        stop,
    )
}

/// Runs `trials` binary-erasure trials at erasure probability `e`:
/// erased bits reach the decoder as [`BecCost::ERASURE`] and cost
/// nothing against any hypothesis, surviving bits are exact.
pub fn run_bec_with(
    cfg: &BscRatelessConfig,
    e: f64,
    trials: u32,
    seed: u64,
    engine: &SimEngine,
) -> Result<RatelessOutcome, SpinalError> {
    if !(0.0..=1.0).contains(&e) {
        return Err(SpinalError::Probability {
            name: "erasure",
            value: e,
        });
    }
    run_generic(
        &cfg.scenario(BecCost, BecModel { e }, [30, 31, 32], seed),
        trials,
        engine,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RatelessConfig {
        RatelessConfig {
            message_bits: 16,
            k: 4,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(6),
            schedule: AnySchedule::none(),
            beam: BeamConfig::with_beam(8),
            adc_bits: None,
            max_passes: 60,
            attempt_growth: 1.0,
            termination: Termination::Genie,
        }
    }

    #[test]
    fn high_snr_decodes_in_one_pass() {
        // At 30 dB with k = 4 (capacity ≈ 10 bits/symbol), one pass must
        // almost always suffice: rate = k.
        let out = run_awgn(&quick_cfg(), 30.0, 20, 1).unwrap();
        assert_eq!(out.trials, 20);
        assert!(out.success_fraction() > 0.95, "{}", out.success_fraction());
        assert!(
            (out.rate_mean() - 4.0).abs() < 0.3,
            "rate {}",
            out.rate_mean()
        );
        assert_eq!(out.undetected, 0);
    }

    #[test]
    fn moderate_snr_needs_more_passes_but_succeeds() {
        // At 0 dB, capacity = 1 bit/symbol: expect ~4+ passes, rate ≤ ~1.
        let out = run_awgn(&quick_cfg(), 0.0, 15, 2).unwrap();
        assert!(out.success_fraction() > 0.9, "{}", out.success_fraction());
        let r = out.rate_mean();
        assert!(r > 0.3 && r < 1.1, "rate {r} implausible at 0 dB");
        // More symbols than one pass (4 symbols).
        assert!(out.symbols_on_success.mean() > 8.0);
    }

    #[test]
    fn rate_monotone_in_snr() {
        let cfg = quick_cfg();
        let lo = run_awgn(&cfg, 0.0, 15, 3).unwrap().rate_mean();
        let hi = run_awgn(&cfg, 20.0, 15, 3).unwrap().rate_mean();
        assert!(hi > lo + 0.5, "rates: lo {lo}, hi {hi}");
    }

    #[test]
    fn throughput_below_rate_mean_and_positive() {
        // Jensen: the mean of per-trial ratios upper-bounds the aggregate
        // throughput when (as here) essentially every trial succeeds.
        let out = run_awgn(&quick_cfg(), 10.0, 20, 4).unwrap();
        assert!(out.success_fraction() > 0.9);
        assert!(out.throughput() > 0.0);
        assert!(
            out.throughput() <= out.rate_mean() + 1e-9,
            "throughput {} > rate_mean {}",
            out.throughput(),
            out.rate_mean()
        );
        // Every successful trial's symbols are included in the total.
        let success_symbol_sum =
            out.symbols_on_success.mean() * out.symbols_on_success.count() as f64;
        assert!(out.total_symbols as f64 >= success_symbol_sum - 1e-6);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = quick_cfg();
        let a = run_awgn(&cfg, 5.0, 10, 42).unwrap();
        let b = run_awgn(&cfg, 5.0, 10, 42).unwrap();
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.rate.mean(), b.rate.mean());
        assert_eq!(a.symbols_on_success.count(), b.symbols_on_success.count());
    }

    #[test]
    fn adc_at_14_bits_is_transparent() {
        let mut cfg = quick_cfg();
        let ideal = run_awgn(&cfg, 10.0, 15, 7).unwrap();
        cfg.adc_bits = Some(14);
        let quantized = run_awgn(&cfg, 10.0, 15, 7).unwrap();
        // 14-bit quantization must not measurably change the rate.
        assert!(
            (ideal.rate_mean() - quantized.rate_mean()).abs() < 0.25,
            "ideal {} vs adc {}",
            ideal.rate_mean(),
            quantized.rate_mean()
        );
    }

    #[test]
    fn coarse_adc_hurts() {
        let mut cfg = quick_cfg();
        cfg.adc_bits = Some(2); // 2-bit ADC mangles the dense constellation
        let coarse = run_awgn(&cfg, 25.0, 10, 8).unwrap();
        cfg.adc_bits = Some(14);
        let fine = run_awgn(&cfg, 25.0, 10, 8).unwrap();
        assert!(
            coarse.rate_mean() < fine.rate_mean(),
            "coarse {} !< fine {}",
            coarse.rate_mean(),
            fine.rate_mean()
        );
    }

    #[test]
    fn crc_mode_pays_overhead_and_terminates() {
        let mut cfg = quick_cfg();
        cfg.message_bits = 32; // 16 payload + 16 CRC
        cfg.termination = Termination::Crc(Checksum::Crc16);
        let out = run_awgn(&cfg, 20.0, 15, 9).unwrap();
        assert!(out.success_fraction() > 0.8, "{}", out.success_fraction());
        // Rate counts only payload bits: 16 payload over ≥ 8 symbols.
        assert!(out.rate_mean() < 4.0);
    }

    #[test]
    fn punctured_high_snr_exceeds_k() {
        // The §3.1 puncturing claim: with stride-8 sub-passes and genie
        // feedback at 35 dB, rates above k are reachable (gap levels are
        // bridged by the deferred-prune beam).
        let cfg = RatelessConfig {
            message_bits: 24,
            k: 8,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(10),
            schedule: AnySchedule::strided(8).expect("8 is a valid stride"),
            beam: BeamConfig::paper_default(),
            adc_bits: Some(14),
            max_passes: 200,
            attempt_growth: 1.0,
            termination: Termination::Genie,
        };
        let out = run_awgn(&cfg, 35.0, 10, 11).unwrap();
        assert!(out.success_fraction() > 0.9);
        assert!(
            out.rate_mean() > 8.5,
            "puncturing should push rate above k = 8, got {}",
            out.rate_mean()
        );
    }

    #[test]
    fn bsc_clean_channel_one_pass_per_k() {
        // p = 0: decode after k passes (k bits/segment need k coded bits
        // at rate 1... actually after 1 pass the beam sees 1 bit per
        // segment — not enough to distinguish 2^k children, so several
        // passes are required; rate = k/L ≤ 1 for BSC).
        let cfg = BscRatelessConfig::default_k4(16);
        let out = run_bsc(&cfg, 0.0, 10, 1).unwrap();
        assert!(out.success_fraction() > 0.9);
        // Rate can approach C = 1 bit per channel use but not exceed it
        // (plus slack for the short block).
        let r = out.rate_mean();
        assert!(r > 0.4 && r <= 1.01, "clean BSC rate {r}");
    }

    #[test]
    fn bsc_noisy_channel_rate_below_capacity_ballpark() {
        let cfg = BscRatelessConfig::default_k4(16);
        let out = run_bsc(&cfg, 0.11, 15, 2).unwrap(); // C ≈ 0.5
        assert!(out.success_fraction() > 0.8, "{}", out.success_fraction());
        let r = out.rate_mean();
        // Genie termination on a 16-bit message gets ~log2(attempts)
        // bits of free side information, so the per-trial rate mean can
        // sit somewhat above C at this block length; the ballpark bound
        // is correspondingly loose. The aggregate throughput (payload
        // over *all* symbols, Jensen-free) is the tighter operational
        // metric and gets the tighter bound.
        assert!(r > 0.1 && r < 0.65, "BSC(0.11) rate {r}");
        let t = out.throughput();
        assert!(t > 0.1 && t < 0.60, "BSC(0.11) throughput {t}");
    }

    #[test]
    fn hopeless_channel_reports_failures() {
        // p = 0.5 carries zero information; the pass budget must expire.
        let cfg = BscRatelessConfig {
            max_passes: 12,
            ..BscRatelessConfig::default_k4(16)
        };
        let out = run_bsc(&cfg, 0.5, 5, 3).unwrap();
        assert_eq!(out.successes, 0);
        assert_eq!(out.rate_mean(), 0.0);
    }

    /// Acceptance contract: every reported statistic — success
    /// fraction, rate mean/stderr, symbol counts — is bit-identical
    /// whatever the worker count, at several chunk sizes.
    #[test]
    fn engine_output_bit_identical_across_worker_counts() {
        let cfg = quick_cfg();
        for chunk in [4u64, 16, 64] {
            let base =
                run_awgn_with(&cfg, 8.0, 30, 77, &SimEngine::serial().chunk_trials(chunk)).unwrap();
            for workers in [2usize, 8] {
                let out = run_awgn_with(
                    &cfg,
                    8.0,
                    30,
                    77,
                    &SimEngine::with_workers(workers).chunk_trials(chunk),
                )
                .unwrap();
                assert_eq!(out.trials, base.trials);
                assert_eq!(out.successes, base.successes, "chunk {chunk} w {workers}");
                assert_eq!(out.undetected, base.undetected);
                assert_eq!(out.total_symbols, base.total_symbols);
                assert_eq!(
                    out.success_fraction().to_bits(),
                    base.success_fraction().to_bits()
                );
                assert_eq!(out.rate_mean().to_bits(), base.rate_mean().to_bits());
                assert_eq!(out.rate_stderr().to_bits(), base.rate_stderr().to_bits());
                assert_eq!(
                    out.symbols_on_success.mean().to_bits(),
                    base.symbols_on_success.mean().to_bits()
                );
            }
        }
        // BSC path too.
        let bsc = BscRatelessConfig::default_k4(16);
        let a = run_bsc_with(&bsc, 0.03, 24, 5, &SimEngine::serial().chunk_trials(8)).unwrap();
        let b = run_bsc_with(
            &bsc,
            0.03,
            24,
            5,
            &SimEngine::with_workers(8).chunk_trials(8),
        )
        .unwrap();
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.total_symbols, b.total_symbols);
        assert_eq!(a.rate_mean().to_bits(), b.rate_mean().to_bits());
    }

    #[test]
    fn early_stop_caps_trials_deterministically() {
        let cfg = quick_cfg();
        // At 20 dB essentially everything succeeds: a loose Wilson
        // target is reached long before the 400-trial budget.
        let rule = StopRule::success_within(0.2, 16);
        let engine = SimEngine::serial().chunk_trials(8);
        let out = run_awgn_until(&cfg, 20.0, 400, 3, &engine, Some(&rule)).unwrap();
        assert!(out.trials < 400, "early stop never fired ({})", out.trials);
        assert!(out.trials >= 16);
        // Same stopped statistics with a different worker count.
        let par = run_awgn_until(
            &cfg,
            20.0,
            400,
            3,
            &SimEngine::with_workers(4).chunk_trials(8),
            Some(&rule),
        )
        .unwrap();
        assert_eq!(par.trials, out.trials);
        assert_eq!(par.rate_mean().to_bits(), out.rate_mean().to_bits());
    }

    #[test]
    fn bec_clean_and_erasure_rates() {
        let cfg = BscRatelessConfig::default_k4(16);
        let engine = SimEngine::serial();
        // e = 0: the BEC is transparent, rate matches the clean BSC.
        let clean = run_bec_with(&cfg, 0.0, 10, 1, &engine).unwrap();
        assert!(clean.success_fraction() > 0.9);
        assert!(clean.rate_mean() > 0.4);
        // e = 0.3 (capacity 0.7): decodes, but needs more symbols; the
        // rate cannot exceed the surviving-bit fraction by much.
        let lossy = run_bec_with(&cfg, 0.3, 10, 2, &engine).unwrap();
        assert!(
            lossy.success_fraction() > 0.8,
            "{}",
            lossy.success_fraction()
        );
        assert!(
            lossy.symbols_on_success.mean() > clean.symbols_on_success.mean(),
            "erasures must cost symbols: {} !> {}",
            lossy.symbols_on_success.mean(),
            clean.symbols_on_success.mean()
        );
    }

    #[test]
    fn fading_decodes_at_high_mean_snr() {
        let cfg = quick_cfg();
        let out = run_fading_with(&cfg, 25.0, 8, 12, 4, &SimEngine::serial()).unwrap();
        assert!(out.success_fraction() > 0.7, "{}", out.success_fraction());
        // Deep fades make rate vary; just demand sane bounds.
        assert!(out.rate_mean() > 0.0 && out.rate_mean() <= 4.0 + 1e-9);
    }

    #[test]
    fn attempt_growth_reduces_attempts() {
        let mut cfg = quick_cfg();
        let dense = run_awgn(&cfg, 0.0, 8, 5).unwrap();
        cfg.attempt_growth = 1.5;
        let sparse = run_awgn(&cfg, 0.0, 8, 5).unwrap();
        assert!(
            sparse.attempts.mean() < dense.attempts.mean(),
            "sparse {} !< dense {}",
            sparse.attempts.mean(),
            dense.attempts.mean()
        );
        // Thinning may overshoot, never undershoot symbols.
        assert!(sparse.symbols_on_success.mean() >= dense.symbols_on_success.mean() * 0.99);
    }
}
