//! The rateless experiment: the §5 methodology, reproduced.
//!
//! "In these experiments we assume that the receiver informs the sender as
//! soon as it is able to fully decode the data; this allows us to isolate
//! the evaluation of the performance of spinal codes." Concretely, per
//! trial:
//!
//! 1. draw a fresh random message (and a fresh hash seed);
//! 2. stream symbols sub-pass by sub-pass through the channel (AWGN with
//!    optional ADC quantization, or BSC);
//! 3. after each sub-pass, run a decode attempt over everything received;
//! 4. stop at the first attempt the terminator accepts (genie: best
//!    hypothesis equals the truth; CRC: a candidate's checksum verifies)
//!    and record the rate `message bits / symbols sent`.
//!
//! The decode-attempt schedule can be thinned geometrically
//! ([`RatelessConfig::attempt_growth`]) to keep very-low-SNR runs
//! affordable; growth 1.0 attempts after every non-empty sub-pass, the
//! paper's idealised receiver.

use crate::stats::{derive_seed, RunningStats};
use spinal_channel::{AdcQuantizer, AwgnChannel, BscChannel, Channel, Rng};
use spinal_core::decode::{BeamConfig, BeamDecoder, CostModel, DecoderScratch, Observations};
use spinal_core::frame::{frame_encode, Checksum, CrcTerminator, GenieOracle, Terminator};
use spinal_core::hash::{AnyHash, HashFamily};
use spinal_core::map::{AnyIqMapper, BinaryMapper, Mapper};
use spinal_core::params::CodeParams;
use spinal_core::puncture::{AnySchedule, PunctureSchedule};
use spinal_core::DecodeResult;
use spinal_core::{AwgnCost, BitVec, BscCost, Encoder};

/// How the receiver decides it has decoded successfully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// The §5 genie: success exactly when the best hypothesis is the
    /// true message. Isolates code performance.
    Genie,
    /// The practical §3.2 receiver: success when a beam candidate's CRC
    /// verifies. Pays the checksum's rate overhead and can terminate on
    /// an undetected error (counted separately).
    Crc(Checksum),
}

/// Configuration of an AWGN rateless experiment.
#[derive(Clone, Debug)]
pub struct RatelessConfig {
    /// Spinal-code message length in bits (including the CRC in
    /// [`Termination::Crc`] mode).
    pub message_bits: u32,
    /// Segment size `k`.
    pub k: u32,
    /// Known tail segments (§4).
    pub tail_segments: u32,
    /// Spine-hash family.
    pub hash: HashFamily,
    /// Constellation mapper (carries `c`).
    pub mapper: AnyIqMapper,
    /// Transmission schedule.
    pub schedule: AnySchedule,
    /// Beam decoder resources.
    pub beam: BeamConfig,
    /// ADC bits per dimension at the receiver (`None` = ideal receiver).
    pub adc_bits: Option<u32>,
    /// Give up after this many passes (a trial that exhausts this is a
    /// failure contributing rate 0).
    pub max_passes: u32,
    /// Decode-attempt thinning: the next attempt waits until the symbol
    /// count reaches `ceil(previous × growth)`. 1.0 = attempt after every
    /// non-empty sub-pass.
    pub attempt_growth: f64,
    /// Success criterion.
    pub termination: Termination,
}

impl RatelessConfig {
    /// The Figure 2 configuration: m = 24, k = 8, c = 10, B = 16,
    /// stride-8 puncturing, 14-bit ADC, genie termination.
    pub fn fig2() -> Self {
        Self {
            message_bits: 24,
            k: 8,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(10),
            schedule: AnySchedule::strided(8),
            beam: BeamConfig::paper_default(),
            adc_bits: Some(14),
            max_passes: 1000,
            attempt_growth: 1.05,
            termination: Termination::Genie,
        }
    }

    fn params(&self, code_seed: u64) -> CodeParams {
        CodeParams::builder()
            .message_bits(self.message_bits)
            .k(self.k)
            .tail_segments(self.tail_segments)
            .seed(code_seed)
            .build()
            .expect("invalid rateless configuration")
    }
}

/// Configuration of a BSC rateless experiment (binary mapper; one coded
/// bit per spine value per pass).
#[derive(Clone, Debug)]
pub struct BscRatelessConfig {
    /// Message length in bits.
    pub message_bits: u32,
    /// Segment size `k`.
    pub k: u32,
    /// Known tail segments.
    pub tail_segments: u32,
    /// Spine-hash family.
    pub hash: HashFamily,
    /// Transmission schedule.
    pub schedule: AnySchedule,
    /// Beam decoder resources.
    pub beam: BeamConfig,
    /// Pass budget.
    pub max_passes: u32,
    /// Decode-attempt thinning (see [`RatelessConfig::attempt_growth`]).
    pub attempt_growth: f64,
    /// Success criterion.
    pub termination: Termination,
}

impl BscRatelessConfig {
    /// A sensible default BSC experiment: k = 4, B = 16, unpunctured.
    pub fn default_k4(message_bits: u32) -> Self {
        Self {
            message_bits,
            k: 4,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            schedule: AnySchedule::none(),
            beam: BeamConfig::paper_default(),
            max_passes: 400,
            attempt_growth: 1.0,
            termination: Termination::Genie,
        }
    }

    fn params(&self, code_seed: u64) -> CodeParams {
        CodeParams::builder()
            .message_bits(self.message_bits)
            .k(self.k)
            .tail_segments(self.tail_segments)
            .seed(code_seed)
            .build()
            .expect("invalid BSC rateless configuration")
    }
}

/// Aggregated results of a rateless experiment.
#[derive(Clone, Debug)]
pub struct RatelessOutcome {
    /// Trials run.
    pub trials: u32,
    /// Trials decoded correctly before the pass budget expired.
    pub successes: u32,
    /// CRC-mode trials that terminated on a wrong payload.
    pub undetected: u32,
    /// Per-trial rate in payload bits per symbol (failures contribute 0).
    pub rate: RunningStats,
    /// Symbols needed, over successful trials only.
    pub symbols_on_success: RunningStats,
    /// Decode attempts per trial.
    pub attempts: RunningStats,
    /// Symbols transmitted across *all* trials (failures included).
    pub total_symbols: u64,
    /// Payload bits per trial (for the throughput computation).
    payload_bits: u32,
}

impl RatelessOutcome {
    fn new(payload_bits: u32) -> Self {
        Self {
            trials: 0,
            successes: 0,
            undetected: 0,
            rate: RunningStats::new(),
            symbols_on_success: RunningStats::new(),
            attempts: RunningStats::new(),
            total_symbols: 0,
            payload_bits,
        }
    }

    /// Mean achieved rate (bits/symbol), failures counted as zero.
    pub fn rate_mean(&self) -> f64 {
        self.rate.mean()
    }

    /// Standard error of the mean rate.
    pub fn rate_stderr(&self) -> f64 {
        self.rate.stderr()
    }

    /// Aggregate throughput: correctly delivered payload bits divided by
    /// all symbols transmitted (failed trials' symbols included). Unlike
    /// [`rate_mean`](Self::rate_mean) — a mean of per-trial ratios, which
    /// Jensen's inequality biases upward for short messages — this is the
    /// operational long-run rate. Note that under genie termination even
    /// this metric can edge past capacity at very low SNR: the genie's
    /// stop signal is unpaid side information worth ~log2(attempts) bits,
    /// which is material against a 24-bit message (see EXPERIMENTS.md).
    pub fn throughput(&self) -> f64 {
        if self.total_symbols == 0 {
            0.0
        } else {
            f64::from(self.successes) * f64::from(self.payload_bits) / self.total_symbols as f64
        }
    }

    /// Fraction of trials decoded correctly.
    pub fn success_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.successes) / f64::from(self.trials)
        }
    }
}

/// One trial's raw result.
struct TrialResult {
    finished: bool,
    correct: bool,
    symbols: u64,
    attempts: u32,
}

/// The shared trial loop: stream sub-passes, attempt decodes, stop on
/// acceptance. Generic over mapper/cost/channel so AWGN and BSC share one
/// implementation.
///
/// `scratch` and `result` are reused for every decode attempt (and, via
/// the callers, across trials): after the first attempt warms their
/// buffers, re-decodes allocate nothing in the search itself.
#[allow(clippy::too_many_arguments)]
fn run_one_trial<M, C, Ch>(
    params: &CodeParams,
    hash: AnyHash,
    mapper: &M,
    cost: C,
    schedule: &AnySchedule,
    beam: BeamConfig,
    termination: Termination,
    max_passes: u32,
    attempt_growth: f64,
    message: &BitVec,
    payload: &BitVec,
    channel: &mut Ch,
    post: impl Fn(M::Symbol) -> M::Symbol,
    scratch: &mut DecoderScratch,
    result: &mut DecodeResult,
) -> TrialResult
where
    M: Mapper,
    C: CostModel<M::Symbol>,
    Ch: Channel<M::Symbol>,
{
    let encoder = Encoder::new(params, hash, mapper.clone(), message)
        .expect("message length validated by config");
    let decoder = BeamDecoder::new(params, hash, mapper.clone(), cost, beam);
    let genie = GenieOracle::new(message.clone());
    let mut obs = Observations::new(params.n_segments());
    let mut sent: u64 = 0;
    let mut next_attempt: u64 = 1;
    let mut attempts: u32 = 0;

    let total_subpasses = max_passes.saturating_mul(schedule.subpasses_per_pass());
    for g in 0..total_subpasses {
        let sub = encoder.subpass(schedule, g);
        if sub.is_empty() {
            continue;
        }
        for (slot, x) in sub {
            obs.push(slot, post(channel.transmit(x)));
            sent += 1;
        }
        if sent < next_attempt {
            continue;
        }
        attempts += 1;
        decoder.decode_into(&obs, scratch, result);
        let accepted: Option<BitVec> = match termination {
            Termination::Genie => genie.accept(result),
            Termination::Crc(ck) => CrcTerminator::new(ck).accept(result),
        };
        if let Some(decoded) = accepted {
            let correct = match termination {
                Termination::Genie => true, // genie accepts only the truth
                Termination::Crc(_) => decoded == *payload,
            };
            return TrialResult {
                finished: true,
                correct,
                symbols: sent,
                attempts,
            };
        }
        next_attempt = (sent + 1).max((sent as f64 * attempt_growth).ceil() as u64);
    }
    TrialResult {
        finished: false,
        correct: false,
        symbols: sent,
        attempts,
    }
}

/// Draws `bits` random message bits.
fn random_message(rng: &mut Rng, bits: u32) -> BitVec {
    (0..bits).map(|_| rng.bit()).collect()
}

/// Prepares `(code message, payload)` for one trial under `termination`.
fn make_message(rng: &mut Rng, message_bits: u32, termination: Termination) -> (BitVec, BitVec) {
    match termination {
        Termination::Genie => {
            let m = random_message(rng, message_bits);
            (m.clone(), m)
        }
        Termination::Crc(ck) => {
            let w = ck.width() as u32;
            assert!(
                message_bits > w,
                "message_bits ({message_bits}) must exceed the CRC width ({w})"
            );
            let payload = random_message(rng, message_bits - w);
            (frame_encode(&payload, ck), payload)
        }
    }
}

fn record(outcome: &mut RatelessOutcome, payload_bits: u32, r: TrialResult) {
    outcome.trials += 1;
    outcome.attempts.push(f64::from(r.attempts));
    outcome.total_symbols += r.symbols;
    if r.finished && r.correct {
        outcome.successes += 1;
        outcome
            .rate
            .push(f64::from(payload_bits) / r.symbols as f64);
        outcome.symbols_on_success.push(r.symbols as f64);
    } else {
        if r.finished {
            outcome.undetected += 1;
        }
        outcome.rate.push(0.0);
    }
}

/// Runs `trials` AWGN trials at `snr_db` and aggregates.
pub fn run_awgn(cfg: &RatelessConfig, snr_db: f64, trials: u32, seed: u64) -> RatelessOutcome {
    assert!(cfg.attempt_growth >= 1.0, "attempt_growth must be >= 1");
    let payload_bits = match cfg.termination {
        Termination::Genie => cfg.message_bits,
        Termination::Crc(ck) => cfg.message_bits - ck.width() as u32,
    };
    let mut outcome = RatelessOutcome::new(payload_bits);
    let mut scratch = DecoderScratch::new();
    let mut result = DecodeResult::default();
    for trial in 0..trials {
        let code_seed = derive_seed(seed, 0, u64::from(trial));
        let noise_seed = derive_seed(seed, 1, u64::from(trial));
        let msg_seed = derive_seed(seed, 2, u64::from(trial));
        let params = cfg.params(code_seed);
        let hash = AnyHash::new(cfg.hash, code_seed);
        let mut rng = Rng::seed_from(msg_seed);
        let (message, payload) = make_message(&mut rng, cfg.message_bits, cfg.termination);
        let mut channel = AwgnChannel::from_snr_db(snr_db, noise_seed);
        let adc = cfg.adc_bits.map(|b| {
            let headroom = cfg.mapper.peak() + 4.0 * (channel.sigma2() / 2.0).sqrt();
            AdcQuantizer::new(b, headroom)
        });
        let r = run_one_trial(
            &params,
            hash,
            &cfg.mapper,
            AwgnCost,
            &cfg.schedule,
            cfg.beam,
            cfg.termination,
            cfg.max_passes,
            cfg.attempt_growth,
            &message,
            &payload,
            &mut channel,
            |y| match &adc {
                Some(q) => q.quantize_symbol(y),
                None => y,
            },
            &mut scratch,
            &mut result,
        );
        record(&mut outcome, payload_bits, r);
    }
    outcome
}

/// Runs `trials` BSC trials at crossover probability `p` and aggregates.
pub fn run_bsc(cfg: &BscRatelessConfig, p: f64, trials: u32, seed: u64) -> RatelessOutcome {
    assert!(cfg.attempt_growth >= 1.0, "attempt_growth must be >= 1");
    let payload_bits = match cfg.termination {
        Termination::Genie => cfg.message_bits,
        Termination::Crc(ck) => cfg.message_bits - ck.width() as u32,
    };
    let mut outcome = RatelessOutcome::new(payload_bits);
    let mut scratch = DecoderScratch::new();
    let mut result = DecodeResult::default();
    for trial in 0..trials {
        let code_seed = derive_seed(seed, 10, u64::from(trial));
        let noise_seed = derive_seed(seed, 11, u64::from(trial));
        let msg_seed = derive_seed(seed, 12, u64::from(trial));
        let params = cfg.params(code_seed);
        let hash = AnyHash::new(cfg.hash, code_seed);
        let mut rng = Rng::seed_from(msg_seed);
        let (message, payload) = make_message(&mut rng, cfg.message_bits, cfg.termination);
        let mut channel = BscChannel::new(p, noise_seed);
        let r = run_one_trial(
            &params,
            hash,
            &BinaryMapper::new(),
            BscCost,
            &cfg.schedule,
            cfg.beam,
            cfg.termination,
            cfg.max_passes,
            cfg.attempt_growth,
            &message,
            &payload,
            &mut channel,
            |y| y,
            &mut scratch,
            &mut result,
        );
        record(&mut outcome, payload_bits, r);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RatelessConfig {
        RatelessConfig {
            message_bits: 16,
            k: 4,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(6),
            schedule: AnySchedule::none(),
            beam: BeamConfig::with_beam(8),
            adc_bits: None,
            max_passes: 60,
            attempt_growth: 1.0,
            termination: Termination::Genie,
        }
    }

    #[test]
    fn high_snr_decodes_in_one_pass() {
        // At 30 dB with k = 4 (capacity ≈ 10 bits/symbol), one pass must
        // almost always suffice: rate = k.
        let out = run_awgn(&quick_cfg(), 30.0, 20, 1);
        assert_eq!(out.trials, 20);
        assert!(out.success_fraction() > 0.95, "{}", out.success_fraction());
        assert!(
            (out.rate_mean() - 4.0).abs() < 0.3,
            "rate {}",
            out.rate_mean()
        );
        assert_eq!(out.undetected, 0);
    }

    #[test]
    fn moderate_snr_needs_more_passes_but_succeeds() {
        // At 0 dB, capacity = 1 bit/symbol: expect ~4+ passes, rate ≤ ~1.
        let out = run_awgn(&quick_cfg(), 0.0, 15, 2);
        assert!(out.success_fraction() > 0.9, "{}", out.success_fraction());
        let r = out.rate_mean();
        assert!(r > 0.3 && r < 1.1, "rate {r} implausible at 0 dB");
        // More symbols than one pass (4 symbols).
        assert!(out.symbols_on_success.mean() > 8.0);
    }

    #[test]
    fn rate_monotone_in_snr() {
        let cfg = quick_cfg();
        let lo = run_awgn(&cfg, 0.0, 15, 3).rate_mean();
        let hi = run_awgn(&cfg, 20.0, 15, 3).rate_mean();
        assert!(hi > lo + 0.5, "rates: lo {lo}, hi {hi}");
    }

    #[test]
    fn throughput_below_rate_mean_and_positive() {
        // Jensen: the mean of per-trial ratios upper-bounds the aggregate
        // throughput when (as here) essentially every trial succeeds.
        let out = run_awgn(&quick_cfg(), 10.0, 20, 4);
        assert!(out.success_fraction() > 0.9);
        assert!(out.throughput() > 0.0);
        assert!(
            out.throughput() <= out.rate_mean() + 1e-9,
            "throughput {} > rate_mean {}",
            out.throughput(),
            out.rate_mean()
        );
        // Every successful trial's symbols are included in the total.
        let success_symbol_sum =
            out.symbols_on_success.mean() * out.symbols_on_success.count() as f64;
        assert!(out.total_symbols as f64 >= success_symbol_sum - 1e-6);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = quick_cfg();
        let a = run_awgn(&cfg, 5.0, 10, 42);
        let b = run_awgn(&cfg, 5.0, 10, 42);
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.rate.mean(), b.rate.mean());
        assert_eq!(a.symbols_on_success.count(), b.symbols_on_success.count());
    }

    #[test]
    fn adc_at_14_bits_is_transparent() {
        let mut cfg = quick_cfg();
        let ideal = run_awgn(&cfg, 10.0, 15, 7);
        cfg.adc_bits = Some(14);
        let quantized = run_awgn(&cfg, 10.0, 15, 7);
        // 14-bit quantization must not measurably change the rate.
        assert!(
            (ideal.rate_mean() - quantized.rate_mean()).abs() < 0.25,
            "ideal {} vs adc {}",
            ideal.rate_mean(),
            quantized.rate_mean()
        );
    }

    #[test]
    fn coarse_adc_hurts() {
        let mut cfg = quick_cfg();
        cfg.adc_bits = Some(2); // 2-bit ADC mangles the dense constellation
        let coarse = run_awgn(&cfg, 25.0, 10, 8);
        cfg.adc_bits = Some(14);
        let fine = run_awgn(&cfg, 25.0, 10, 8);
        assert!(
            coarse.rate_mean() < fine.rate_mean(),
            "coarse {} !< fine {}",
            coarse.rate_mean(),
            fine.rate_mean()
        );
    }

    #[test]
    fn crc_mode_pays_overhead_and_terminates() {
        let mut cfg = quick_cfg();
        cfg.message_bits = 32; // 16 payload + 16 CRC
        cfg.termination = Termination::Crc(Checksum::Crc16);
        let out = run_awgn(&cfg, 20.0, 15, 9);
        assert!(out.success_fraction() > 0.8, "{}", out.success_fraction());
        // Rate counts only payload bits: 16 payload over ≥ 8 symbols.
        assert!(out.rate_mean() < 4.0);
    }

    #[test]
    fn punctured_high_snr_exceeds_k() {
        // The §3.1 puncturing claim: with stride-8 sub-passes and genie
        // feedback at 35 dB, rates above k are reachable (gap levels are
        // bridged by the deferred-prune beam).
        let cfg = RatelessConfig {
            message_bits: 24,
            k: 8,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(10),
            schedule: AnySchedule::strided(8),
            beam: BeamConfig::paper_default(),
            adc_bits: Some(14),
            max_passes: 200,
            attempt_growth: 1.0,
            termination: Termination::Genie,
        };
        let out = run_awgn(&cfg, 35.0, 10, 11);
        assert!(out.success_fraction() > 0.9);
        assert!(
            out.rate_mean() > 8.5,
            "puncturing should push rate above k = 8, got {}",
            out.rate_mean()
        );
    }

    #[test]
    fn bsc_clean_channel_one_pass_per_k() {
        // p = 0: decode after k passes (k bits/segment need k coded bits
        // at rate 1... actually after 1 pass the beam sees 1 bit per
        // segment — not enough to distinguish 2^k children, so several
        // passes are required; rate = k/L ≤ 1 for BSC).
        let cfg = BscRatelessConfig::default_k4(16);
        let out = run_bsc(&cfg, 0.0, 10, 1);
        assert!(out.success_fraction() > 0.9);
        // Rate can approach C = 1 bit per channel use but not exceed it
        // (plus slack for the short block).
        let r = out.rate_mean();
        assert!(r > 0.4 && r <= 1.01, "clean BSC rate {r}");
    }

    #[test]
    fn bsc_noisy_channel_rate_below_capacity_ballpark() {
        let cfg = BscRatelessConfig::default_k4(16);
        let out = run_bsc(&cfg, 0.11, 15, 2); // C ≈ 0.5
        assert!(out.success_fraction() > 0.8, "{}", out.success_fraction());
        let r = out.rate_mean();
        // Genie termination on a 16-bit message gets ~log2(attempts)
        // bits of free side information, so the per-trial rate mean can
        // sit somewhat above C at this block length; the ballpark bound
        // is correspondingly loose. The aggregate throughput (payload
        // over *all* symbols, Jensen-free) is the tighter operational
        // metric and gets the tighter bound.
        assert!(r > 0.1 && r < 0.65, "BSC(0.11) rate {r}");
        let t = out.throughput();
        assert!(t > 0.1 && t < 0.60, "BSC(0.11) throughput {t}");
    }

    #[test]
    fn hopeless_channel_reports_failures() {
        // p = 0.5 carries zero information; the pass budget must expire.
        let cfg = BscRatelessConfig {
            max_passes: 12,
            ..BscRatelessConfig::default_k4(16)
        };
        let out = run_bsc(&cfg, 0.5, 5, 3);
        assert_eq!(out.successes, 0);
        assert_eq!(out.rate_mean(), 0.0);
    }

    #[test]
    fn attempt_growth_reduces_attempts() {
        let mut cfg = quick_cfg();
        let dense = run_awgn(&cfg, 0.0, 8, 5);
        cfg.attempt_growth = 1.5;
        let sparse = run_awgn(&cfg, 0.0, 8, 5);
        assert!(
            sparse.attempts.mean() < dense.attempts.mean(),
            "sparse {} !< dense {}",
            sparse.attempts.mean(),
            dense.attempts.mean()
        );
        // Thinning may overshoot, never undershoot symbols.
        assert!(sparse.symbols_on_success.mean() >= dense.symbols_on_success.mean() * 0.99);
    }
}
