//! Classic uncoded ARQ — the §2 strawman baseline.
//!
//! "Rateless codes have a long history starting with classical ARQ
//! schemes, but ARQ generally does not come close to capacity." This
//! harness quantifies that: frames are sent *uncoded* over a fixed
//! constellation with a CRC-32, and retransmitted wholesale until the
//! CRC verifies (stop-and-wait ARQ with an error-free, zero-delay
//! feedback channel — the most charitable setting). Goodput collapses
//! once the raw symbol error rate is non-negligible, because a single
//! flipped bit costs a whole frame, while a rateless code pays only the
//! marginal symbols it actually needs.
//!
//! The `baseline_arq` binary prints this curve next to Shannon capacity
//! and the spinal code's measured rate.

use crate::engine::{Accumulate, Scenario, SimEngine, Trial};
use crate::stats::{derive_seed, RunningStats};
use spinal_channel::{AwgnChannel, Channel, Rng};
use spinal_core::bits::BitVec;
use spinal_core::frame::{frame_check_into, frame_encode, Checksum};
use spinal_core::SpinalError;
use spinal_modem::{Constellation, Modulation};

/// Configuration of the ARQ baseline.
#[derive(Clone, Debug)]
pub struct ArqConfig {
    /// Payload bits per frame.
    pub payload_bits: u32,
    /// Constellation for the uncoded transmission.
    pub modulation: Modulation,
    /// Give up after this many (re)transmissions of one frame.
    pub max_transmissions: u32,
}

impl ArqConfig {
    /// A frame comparable to the spinal experiments: 24 payload bits +
    /// CRC-32 over QAM-16.
    pub fn default_24bit(modulation: Modulation) -> Self {
        Self {
            payload_bits: 24,
            modulation,
            max_transmissions: 200,
        }
    }

    /// Checks the configuration with typed errors.
    ///
    /// # Errors
    ///
    /// Returns [`SpinalError::Param`] for an empty payload.
    pub fn validate(&self) -> Result<(), SpinalError> {
        if self.payload_bits == 0 {
            return Err(spinal_core::ParamError::ZeroMessageBits.into());
        }
        Ok(())
    }

    /// Framed length in bits (payload + CRC-32).
    pub fn frame_bits(&self) -> u32 {
        self.payload_bits + 32
    }

    /// Symbols per transmission attempt.
    pub fn symbols_per_attempt(&self) -> u32 {
        self.frame_bits()
            .div_ceil(self.modulation.bits_per_symbol())
    }
}

/// Results of an ARQ run.
#[derive(Clone, Debug)]
pub struct ArqOutcome {
    /// Frames offered.
    pub trials: u32,
    /// Frames eventually delivered (CRC verified, payload correct).
    pub delivered: u32,
    /// Frames where a CRC collision accepted a wrong payload.
    pub undetected: u32,
    /// Transmissions per delivered frame.
    pub attempts: RunningStats,
    /// Total symbols spent across all trials.
    pub total_symbols: u64,
    payload_bits: u32,
}

impl ArqOutcome {
    /// Goodput in payload bits per symbol.
    pub fn goodput(&self) -> f64 {
        if self.total_symbols == 0 {
            0.0
        } else {
            f64::from(self.delivered) * f64::from(self.payload_bits) / self.total_symbols as f64
        }
    }

    /// Fraction of frames delivered.
    pub fn delivery_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.delivered) / f64::from(self.trials)
        }
    }
}

impl Accumulate for ArqOutcome {
    fn merge(&mut self, o: Self) {
        self.trials += o.trials;
        self.delivered += o.delivered;
        self.undetected += o.undetected;
        self.attempts.merge(&o.attempts);
        self.total_symbols += o.total_symbols;
        self.payload_bits = o.payload_bits;
    }
}

struct ArqScenario<'a> {
    cfg: &'a ArqConfig,
    cst: Constellation,
    snr_db: f64,
    master_seed: u64,
}

impl Scenario for ArqScenario<'_> {
    type Worker = ();
    type Acc = ArqOutcome;

    fn make_worker(&self) {}

    fn empty_acc(&self) -> ArqOutcome {
        ArqOutcome {
            trials: 0,
            delivered: 0,
            undetected: 0,
            attempts: RunningStats::new(),
            total_symbols: 0,
            payload_bits: self.cfg.payload_bits,
        }
    }

    fn run_trial(&self, trial: Trial, _w: &mut (), outcome: &mut ArqOutcome) {
        let cfg = self.cfg;
        let cst = &self.cst;
        let mut rng = Rng::seed_from(derive_seed(self.master_seed, 50, trial.index));
        let mut channel =
            AwgnChannel::from_snr_db(self.snr_db, derive_seed(self.master_seed, 51, trial.index));
        let payload: BitVec = (0..cfg.payload_bits).map(|_| rng.bit()).collect();
        let framed = frame_encode(&payload, Checksum::Crc32);
        let tx_bits: Vec<u8> = framed.iter().map(u8::from).collect();
        let tx = cst.modulate_bits(&tx_bits);

        outcome.trials += 1;
        for attempt in 1..=cfg.max_transmissions {
            outcome.total_symbols += tx.len() as u64;
            // Hard-decision demodulation of the uncoded frame.
            let mut rx_bits = BitVec::new();
            for &x in &tx {
                let label = cst.hard_demodulate(channel.transmit(x));
                for i in (0..cst.bits_per_symbol()).rev() {
                    rx_bits.push((label >> i) & 1 == 1);
                }
            }
            rx_bits.truncate(framed.len());
            // Receiver-side CRC check (allocation-free framing path).
            let mut got_payload = BitVec::new();
            if frame_check_into(&rx_bits, Checksum::Crc32, &mut got_payload) {
                if got_payload == payload {
                    outcome.delivered += 1;
                } else {
                    outcome.undetected += 1;
                }
                outcome.attempts.push(f64::from(attempt));
                break;
            }
        }
    }
}

/// Runs `trials` frames of stop-and-wait ARQ over AWGN at `snr_db`
/// (serial engine; see [`run_arq_awgn_with`]).
pub fn run_arq_awgn(
    cfg: &ArqConfig,
    snr_db: f64,
    trials: u32,
    seed: u64,
) -> Result<ArqOutcome, SpinalError> {
    run_arq_awgn_with(cfg, snr_db, trials, seed, &SimEngine::serial())
}

/// [`run_arq_awgn`] on an explicit [`SimEngine`].
pub fn run_arq_awgn_with(
    cfg: &ArqConfig,
    snr_db: f64,
    trials: u32,
    seed: u64,
    engine: &SimEngine,
) -> Result<ArqOutcome, SpinalError> {
    cfg.validate()?;
    let scenario = ArqScenario {
        cfg,
        cst: Constellation::new(cfg.modulation),
        snr_db,
        master_seed: seed,
    };
    Ok(engine.run(&scenario, u64::from(trials), seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_delivers_first_attempt() {
        let cfg = ArqConfig::default_24bit(Modulation::Qam16);
        let out = run_arq_awgn(&cfg, 40.0, 10, 1).unwrap();
        assert_eq!(out.delivered, 10);
        assert_eq!(out.attempts.mean(), 1.0);
        // 56 framed bits over QAM-16 = 14 symbols: goodput 24/14 ≈ 1.71.
        assert!((out.goodput() - 24.0 / 14.0).abs() < 1e-9);
        assert_eq!(out.undetected, 0);
    }

    #[test]
    fn moderate_snr_needs_retransmissions() {
        let cfg = ArqConfig::default_24bit(Modulation::Qam16);
        let out = run_arq_awgn(&cfg, 14.0, 15, 2).unwrap();
        assert!(out.delivery_fraction() > 0.9);
        assert!(
            out.attempts.mean() > 1.2,
            "14 dB QAM-16 should force retries, got {}",
            out.attempts.mean()
        );
        assert!(out.goodput() < 24.0 / 14.0);
    }

    #[test]
    fn arq_far_from_capacity_at_low_snr() {
        // §2's point: at 5 dB capacity is ~2.06 bits/symbol, but uncoded
        // QAM-16 ARQ delivers essentially nothing.
        let cfg = ArqConfig::default_24bit(Modulation::Qam16);
        let out = run_arq_awgn(&cfg, 5.0, 10, 3).unwrap();
        assert!(
            out.goodput() < 0.3,
            "uncoded ARQ at 5 dB should collapse, got {}",
            out.goodput()
        );
    }

    #[test]
    fn bpsk_arq_works_at_low_snr_but_capped() {
        // BPSK ARQ survives lower SNR but is capped at 24/56 ≈ 0.43.
        let cfg = ArqConfig::default_24bit(Modulation::Bpsk);
        let out = run_arq_awgn(&cfg, 10.0, 10, 4).unwrap();
        assert!(out.delivery_fraction() > 0.9);
        assert!(out.goodput() <= 24.0 / 56.0 + 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ArqConfig::default_24bit(Modulation::Qam16);
        let a = run_arq_awgn(&cfg, 12.0, 8, 9).unwrap();
        let b = run_arq_awgn(&cfg, 12.0, 8, 9).unwrap();
        assert_eq!(a.total_symbols, b.total_symbols);
        assert_eq!(a.delivered, b.delivered);
    }
}
