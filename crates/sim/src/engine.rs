//! The sharded, deterministic Monte-Carlo simulation engine.
//!
//! Every experiment in this repository is a pile of independent trials;
//! the engine is the one place that turns that pile into work:
//!
//! * **Sharding.** Trials are split into fixed-size *chunks* (the unit of
//!   scheduling), and chunks are claimed work-stealing-style from a
//!   shared counter by `workers` threads. A slow chunk never stalls the
//!   others; an idle worker always has the next chunk to grab.
//! * **Counter-based randomness.** Trial `i` derives its seed as
//!   `SplitMix(master_seed, i)` — a pure function of the trial index, so
//!   a trial's randomness does not depend on which worker runs it, in
//!   what order, or how many workers exist.
//! * **Deterministic reduction.** Each chunk accumulates into its own
//!   [`Scenario::Acc`]; completed chunks are merged **in chunk order**
//!   (worker threads advance a shared prefix). Floating-point reduction
//!   order is therefore fixed, and every statistic is **bit-identical
//!   for any worker count**. (The chunk size is part of the experiment
//!   definition, like the seed: changing it re-orders the reduction.)
//! * **Zero steady-state allocation.** Each worker owns one long-lived
//!   [`Scenario::Worker`] — encoder, decoder scratch, observation
//!   buffers, message buffers — reused across every trial it runs, the
//!   same discipline the beam decoder's `DecoderScratch` follows.
//! * **Early stop.** [`SimEngine::run_until`] evaluates a stop predicate
//!   after each in-order chunk merge (e.g. a Wilson-interval width from
//!   [`crate::stats::wilson_halfwidth`], or a rate standard error). The
//!   stop decision is made on the deterministic chunk-prefix, so the
//!   reported statistics and trial count are *also* bit-identical for
//!   any worker count — extra chunks computed past the stop point are
//!   discarded, never merged.
//!
//! The engine is generic over the trial body ([`Scenario`]) and, for the
//! channel-coding harnesses, over the channel itself ([`ChannelModel`]:
//! AWGN with optional ADC quantization, BSC, BEC, Rayleigh block
//! fading), so one sweep API covers every scenario grid in the paper and
//! beyond.
//!
//! # Example — a custom scenario
//!
//! ```
//! use spinal_sim::engine::{Accumulate, Scenario, SimEngine, Trial};
//!
//! #[derive(Default)]
//! struct CoinAcc {
//!     heads: u64,
//!     trials: u64,
//! }
//! impl Accumulate for CoinAcc {
//!     fn merge(&mut self, o: Self) {
//!         self.heads += o.heads;
//!         self.trials += o.trials;
//!     }
//! }
//! struct Coin;
//! impl Scenario for Coin {
//!     type Worker = ();
//!     type Acc = CoinAcc;
//!     fn make_worker(&self) {}
//!     fn empty_acc(&self) -> CoinAcc {
//!         CoinAcc::default()
//!     }
//!     fn run_trial(&self, t: Trial, _w: &mut (), acc: &mut CoinAcc) {
//!         acc.heads += t.seed & 1; // a "fair coin" from the trial seed
//!         acc.trials += 1;
//!     }
//! }
//!
//! let acc = SimEngine::with_workers(4).run(&Coin, 1000, 7);
//! assert_eq!(acc.trials, 1000);
//! // Bit-identical to the serial run, whatever the worker count.
//! assert_eq!(acc.heads, SimEngine::serial().run(&Coin, 1000, 7).heads);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use spinal_channel::{
    AdcQuantizer, AwgnChannel, BecChannel, BscChannel, Channel, RayleighBlockFading,
};
use spinal_core::hash::{SpineHash, SplitMix};
use spinal_core::symbol::IqSymbol;
use spinal_core::BecCost;

/// Default trials per scheduling chunk: small enough to load-balance a
/// handful of workers on short runs, large enough that the per-chunk
/// bookkeeping (one accumulator, two lock acquisitions) is noise.
pub const DEFAULT_CHUNK_TRIALS: u64 = 32;

/// One trial's identity, as handed to [`Scenario::run_trial`].
#[derive(Clone, Copy, Debug)]
pub struct Trial {
    /// The global trial index, `0..trials`.
    pub index: u64,
    /// The counter-based per-trial seed: `SplitMix(master_seed, index)`.
    /// Scenarios may use it directly or derive labelled sub-streams from
    /// `index` with [`crate::stats::derive_seed`]; either way the
    /// randomness is a pure function of `(master_seed, index)`.
    pub seed: u64,
}

/// A mergeable per-chunk statistics accumulator.
///
/// `merge` must behave like running `other`'s trials after `self`'s
/// (order matters for floating-point reductions; the engine always
/// merges in chunk order).
pub trait Accumulate: Send {
    /// Folds another accumulator's trials into this one.
    fn merge(&mut self, other: Self);
}

/// One Monte-Carlo experiment: how to build per-worker state, and what
/// one trial does.
pub trait Scenario: Sync {
    /// Long-lived per-worker state (encoder, decoder scratch, channel
    /// buffers, …), created once per worker thread and reused across all
    /// trials that worker runs. Warm-up allocations happen here or on
    /// the first trials; the steady state allocates nothing.
    type Worker: Send;
    /// The statistics accumulated per chunk and merged in chunk order.
    type Acc: Accumulate;

    /// Creates one worker's reusable state.
    fn make_worker(&self) -> Self::Worker;

    /// Creates an empty accumulator (one per chunk).
    fn empty_acc(&self) -> Self::Acc;

    /// Runs one trial. All randomness must derive from `trial`
    /// ([`Trial::seed`] or [`Trial::index`]); worker state must carry no
    /// information between trials that affects results (buffers carry
    /// *capacity*, never *content*).
    fn run_trial(&self, trial: Trial, worker: &mut Self::Worker, acc: &mut Self::Acc);

    /// Runs one contiguous chunk of trials. The default is the obvious
    /// loop over [`run_trial`](Self::run_trial); scenarios that serve
    /// many concurrent decoder sessions override this to batch the
    /// chunk's trials through one multi-session scheduler
    /// (`spinal_core::sched::MultiDecoder`), which amortizes beam
    /// expansion across them. Overrides **must** accumulate results in
    /// ascending trial order and produce an accumulator bit-identical to
    /// the default loop — trials are independent, so concurrency is an
    /// execution detail, never a semantic.
    fn run_chunk(
        &self,
        indices: std::ops::Range<u64>,
        master_seed: u64,
        worker: &mut Self::Worker,
        acc: &mut Self::Acc,
    ) {
        for index in indices {
            let trial = Trial {
                index,
                seed: trial_seed(master_seed, index),
            };
            self.run_trial(trial, worker, acc);
        }
    }
}

/// The counter-based per-trial seed: `SplitMix(master_seed, index)`.
#[inline]
pub fn trial_seed(master_seed: u64, index: u64) -> u64 {
    SplitMix::new(master_seed).hash(master_seed, index)
}

/// The sharded Monte-Carlo runner. See the [module docs](self) for the
/// determinism contract.
#[derive(Clone, Copy, Debug)]
pub struct SimEngine {
    workers: usize,
    chunk: u64,
}

impl SimEngine {
    /// A single-worker engine (the default for the library entry points:
    /// same chunked reduction, no threads).
    pub fn serial() -> Self {
        Self::with_workers(1)
    }

    /// An engine with `workers` threads and the default chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        Self {
            workers,
            chunk: DEFAULT_CHUNK_TRIALS,
        }
    }

    /// An engine sized to the machine
    /// ([`crate::runner::default_threads`]).
    pub fn machine() -> Self {
        Self::with_workers(crate::runner::default_threads())
    }

    /// Overrides the trials-per-chunk scheduling granularity. The chunk
    /// size is part of the experiment definition: results are
    /// bit-identical across worker counts *at a given chunk size*.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunk_trials(mut self, chunk: u64) -> Self {
        assert!(chunk >= 1, "chunk must hold at least one trial");
        self.chunk = chunk;
        self
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs exactly `trials` trials of `scenario` and returns the merged
    /// statistics.
    pub fn run<S: Scenario>(&self, scenario: &S, trials: u64, master_seed: u64) -> S::Acc {
        self.run_until(scenario, trials, master_seed, |_, _| false)
            .0
    }

    /// Runs up to `max_trials` trials, evaluating `stop(merged, trials
    /// so far)` after each in-order chunk merge; returns the merged
    /// statistics and the number of trials they cover. The stop decision
    /// sits on the deterministic chunk prefix, so both return values are
    /// bit-identical for any worker count.
    pub fn run_until<S, F>(
        &self,
        scenario: &S,
        max_trials: u64,
        master_seed: u64,
        stop: F,
    ) -> (S::Acc, u64)
    where
        S: Scenario,
        F: Fn(&S::Acc, u64) -> bool + Sync,
    {
        let n_chunks = max_trials.div_ceil(self.chunk);
        let chunk_range = |ci: u64| {
            let lo = ci * self.chunk;
            let hi = (lo + self.chunk).min(max_trials);
            lo..hi
        };
        let run_chunk = |ci: u64, worker: &mut S::Worker| {
            let mut acc = scenario.empty_acc();
            scenario.run_chunk(chunk_range(ci), master_seed, worker, &mut acc);
            acc
        };

        if self.workers == 1 || n_chunks <= 1 {
            // Serial fast path — identical chunk structure and merge
            // order, no thread machinery.
            let mut worker = scenario.make_worker();
            let mut merged = scenario.empty_acc();
            let mut done = 0u64;
            for ci in 0..n_chunks {
                let acc = run_chunk(ci, &mut worker);
                merged.merge(acc);
                done = chunk_range(ci).end;
                if stop(&merged, done) {
                    break;
                }
            }
            return (merged, done);
        }

        // Parallel path: work-stealing chunk claims, in-order prefix
        // merge under a small mutex. Completed-but-unmerged chunks wait
        // in a map keyed by chunk index, so memory is bounded by the
        // chunks actually in flight — never by `max_trials` (an
        // early-stop budget may be enormous). `thread::scope` joins all
        // workers before the merged prefix is returned.
        struct Prefix<A> {
            merged: A,
            next: u64,
            done: u64,
            stopped: bool,
        }
        let pending: Mutex<HashMap<u64, S::Acc>> = Mutex::new(HashMap::new());
        let next_chunk = AtomicU64::new(0);
        // First chunk index that must NOT be started (set on early stop).
        let stop_before = AtomicU64::new(u64::MAX);
        let prefix = Mutex::new(Prefix {
            merged: scenario.empty_acc(),
            next: 0,
            done: 0,
            stopped: false,
        });

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n_chunks as usize) {
                scope.spawn(|| {
                    let mut worker = scenario.make_worker();
                    loop {
                        let ci = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if ci >= n_chunks || ci >= stop_before.load(Ordering::Relaxed) {
                            break;
                        }
                        let acc = run_chunk(ci, &mut worker);
                        pending.lock().expect("pending poisoned").insert(ci, acc);

                        // Advance the deterministic merge prefix as far
                        // as completed chunks allow.
                        let mut p = prefix.lock().expect("prefix poisoned");
                        while !p.stopped && p.next < n_chunks {
                            let taken = pending.lock().expect("pending poisoned").remove(&p.next);
                            let Some(acc) = taken else { break };
                            let ci = p.next;
                            p.merged.merge(acc);
                            p.done = chunk_range(ci).end;
                            p.next += 1;
                            if stop(&p.merged, p.done) {
                                p.stopped = true;
                                stop_before.store(p.next, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });

        let p = prefix.into_inner().expect("prefix poisoned");
        (p.merged, p.done)
    }
}

// ---------------------------------------------------------------------
// Channel models: the engine-facing abstraction over channel families.
// ---------------------------------------------------------------------

/// A channel *family* the harness can instantiate per trial: the
/// scenario holds the model (grid point parameters), and each trial gets
/// its own seeded channel instance. This is what makes the rateless
/// harness generic over AWGN / BSC / BEC / fading with one sweep API.
pub trait ChannelModel<S>: Sync {
    /// The per-trial channel instance.
    type Ch: Channel<S>;

    /// Builds a fresh channel for one trial from its noise seed.
    fn make(&self, noise_seed: u64) -> Self::Ch;

    /// Short stable name for experiment logs.
    fn name(&self) -> &'static str;
}

/// Complex AWGN at a fixed SNR, with the receiver's optional ADC
/// quantization folded in (§5's 14-bit converter) — the Figure 2
/// channel.
#[derive(Clone, Copy, Debug)]
pub struct AwgnModel {
    /// SNR in dB for unit-energy signals.
    pub snr_db: f64,
    /// ADC bits per I/Q dimension (`None` = ideal receiver).
    pub adc_bits: Option<u32>,
    /// The mapper's peak coordinate, used to size the ADC clipping range
    /// (`peak + 4σ` headroom, as in the §5 receiver).
    pub peak: f64,
}

impl AwgnModel {
    /// An ideal (unquantized) AWGN receiver at `snr_db`.
    pub fn ideal(snr_db: f64) -> Self {
        Self {
            snr_db,
            adc_bits: None,
            peak: 0.0,
        }
    }
}

/// AWGN followed by ADC quantization (identity when `adc` is `None`).
#[derive(Clone, Debug)]
pub struct AwgnAdcChannel {
    inner: AwgnChannel,
    adc: Option<AdcQuantizer>,
}

impl Channel<IqSymbol> for AwgnAdcChannel {
    #[inline]
    fn transmit(&mut self, x: IqSymbol) -> IqSymbol {
        let y = self.inner.transmit(x);
        match &self.adc {
            Some(q) => q.quantize_symbol(y),
            None => y,
        }
    }
}

impl ChannelModel<IqSymbol> for AwgnModel {
    type Ch = AwgnAdcChannel;

    fn make(&self, noise_seed: u64) -> AwgnAdcChannel {
        let inner = AwgnChannel::from_snr_db(self.snr_db, noise_seed);
        let adc = self.adc_bits.map(|bits| {
            let headroom = self.peak + 4.0 * (inner.sigma2() / 2.0).sqrt();
            AdcQuantizer::new(bits, headroom)
        });
        AwgnAdcChannel { inner, adc }
    }

    fn name(&self) -> &'static str {
        "awgn"
    }
}

/// The binary symmetric channel at crossover probability `p` (Thm. 2).
#[derive(Clone, Copy, Debug)]
pub struct BscModel {
    /// Crossover probability.
    pub p: f64,
}

impl ChannelModel<u8> for BscModel {
    type Ch = BscChannel;

    fn make(&self, noise_seed: u64) -> BscChannel {
        BscChannel::new(self.p, noise_seed)
    }

    fn name(&self) -> &'static str {
        "bsc"
    }
}

/// The binary erasure channel at erasure probability `e`. Erasures are
/// surfaced as [`BecCost::ERASURE`] so the decoder can score them with
/// [`BecCost`] (zero cost against every hypothesis — the receiver knows
/// the bit is gone).
#[derive(Clone, Copy, Debug)]
pub struct BecModel {
    /// Erasure probability.
    pub e: f64,
}

/// [`BecChannel`] adapted to the symbol-in/symbol-out [`Channel`] trait:
/// erased bits become [`BecCost::ERASURE`].
#[derive(Clone, Debug)]
pub struct ErasureChannel {
    inner: BecChannel,
}

impl Channel<u8> for ErasureChannel {
    #[inline]
    fn transmit(&mut self, x: u8) -> u8 {
        match self.inner.transmit(x) {
            Some(bit) => bit,
            None => BecCost::ERASURE,
        }
    }
}

impl ChannelModel<u8> for BecModel {
    type Ch = ErasureChannel;

    fn make(&self, noise_seed: u64) -> ErasureChannel {
        ErasureChannel {
            inner: BecChannel::new(self.e, noise_seed),
        }
    }

    fn name(&self) -> &'static str {
        "bec"
    }
}

/// Rayleigh block fading over AWGN with a coherent receiver: the gain
/// `h ~ CN(0,1)` holds for `block_len` symbols, the receiver knows it
/// (perfect CSI) and equalizes, so the decoder sees a per-block SNR
/// scaled by `|h|²` — the time-varying regime that motivates rateless
/// operation (§1).
#[derive(Clone, Copy, Debug)]
pub struct FadingModel {
    /// Mean SNR in dB.
    pub snr_db: f64,
    /// Coherence block length in symbols.
    pub block_len: u32,
}

/// The per-trial fading channel instance.
#[derive(Clone, Debug)]
pub struct FadingAwgnChannel {
    fading: RayleighBlockFading,
    awgn: AwgnChannel,
}

impl Channel<IqSymbol> for FadingAwgnChannel {
    #[inline]
    fn transmit(&mut self, x: IqSymbol) -> IqSymbol {
        let g = self.fading.next_gain();
        let y = self.awgn.transmit(spinal_channel::apply(g, x));
        spinal_channel::equalize(g, y)
    }
}

impl ChannelModel<IqSymbol> for FadingModel {
    type Ch = FadingAwgnChannel;

    fn make(&self, noise_seed: u64) -> FadingAwgnChannel {
        // Independent noise and fading processes from one seed, via
        // fixed stream labels.
        let noise = crate::stats::derive_seed(noise_seed, 0x0fad, 0);
        let fade = crate::stats::derive_seed(noise_seed, 0x0fad, 1);
        FadingAwgnChannel {
            fading: RayleighBlockFading::new(self.block_len, fade),
            awgn: AwgnChannel::from_snr_db(self.snr_db, noise),
        }
    }

    fn name(&self) -> &'static str {
        "rayleigh-awgn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;

    /// A scenario with floating-point statistics whose merge order
    /// matters at the last bit — the sharpest determinism probe.
    struct FpScenario;

    #[derive(Default)]
    struct FpAcc {
        stats: RunningStats,
        sum: u64,
    }

    impl Accumulate for FpAcc {
        fn merge(&mut self, o: Self) {
            self.stats.merge(&o.stats);
            self.sum = self.sum.wrapping_add(o.sum);
        }
    }

    impl Scenario for FpScenario {
        type Worker = u64; // trials served, proving reuse
        type Acc = FpAcc;
        fn make_worker(&self) -> u64 {
            0
        }
        fn empty_acc(&self) -> FpAcc {
            FpAcc::default()
        }
        fn run_trial(&self, t: Trial, served: &mut u64, acc: &mut FpAcc) {
            *served += 1;
            // An irrational-ish per-trial value exercising fp rounding.
            let x = (t.seed >> 11) as f64 * 1e-9 + 1.0 / (t.index + 1) as f64;
            acc.stats.push(x);
            acc.sum = acc.sum.wrapping_add(t.seed);
        }
    }

    fn run(workers: usize, chunk: u64, trials: u64) -> FpAcc {
        SimEngine::with_workers(workers)
            .chunk_trials(chunk)
            .run(&FpScenario, trials, 0xDECAF)
    }

    #[test]
    fn bit_identical_across_worker_counts() {
        for chunk in [1, 3, 16, 64] {
            let base = run(1, chunk, 333);
            for workers in [2, 8] {
                let other = run(workers, chunk, 333);
                assert_eq!(base.stats.count(), other.stats.count());
                assert_eq!(
                    base.stats.mean().to_bits(),
                    other.stats.mean().to_bits(),
                    "chunk {chunk} workers {workers}"
                );
                assert_eq!(
                    base.stats.stderr().to_bits(),
                    other.stats.stderr().to_bits()
                );
                assert_eq!(base.sum, other.sum);
            }
        }
    }

    #[test]
    fn integer_stats_independent_of_chunk_size() {
        let a = run(4, 5, 250);
        let b = run(2, 64, 250);
        assert_eq!(a.sum, b.sum);
        assert_eq!(a.stats.count(), b.stats.count());
    }

    #[test]
    fn trial_seeds_are_counter_based() {
        assert_eq!(trial_seed(7, 42), trial_seed(7, 42));
        assert_ne!(trial_seed(7, 42), trial_seed(7, 43));
        assert_ne!(trial_seed(7, 42), trial_seed(8, 42));
    }

    #[test]
    fn early_stop_is_deterministic_and_prefix_based() {
        // Stop once 100 trials are merged: every worker count must
        // deliver the same statistics over the same trial count.
        let stop = |_: &FpAcc, done: u64| done >= 100;
        let (a, na) = SimEngine::serial()
            .chunk_trials(16)
            .run_until(&FpScenario, 1000, 5, stop);
        for workers in [2, 8] {
            let (b, nb) = SimEngine::with_workers(workers).chunk_trials(16).run_until(
                &FpScenario,
                1000,
                5,
                stop,
            );
            assert_eq!(na, nb);
            assert_eq!(a.stats.count(), b.stats.count());
            assert_eq!(a.stats.mean().to_bits(), b.stats.mean().to_bits());
        }
        // 100 is not a multiple of 16: the stop lands at the covering
        // chunk boundary.
        assert_eq!(na, 112);
    }

    #[test]
    fn zero_trials_is_empty() {
        let acc = SimEngine::with_workers(3).run(&FpScenario, 0, 1);
        assert_eq!(acc.stats.count(), 0);
        assert_eq!(acc.sum, 0);
    }

    #[test]
    fn trial_count_not_multiple_of_chunk() {
        let acc = run(3, 8, 21);
        assert_eq!(acc.stats.count(), 21);
    }

    #[test]
    fn erasure_channel_marks_losses() {
        let mut ch = BecModel { e: 1.0 }.make(1);
        assert_eq!(ch.transmit(1), BecCost::ERASURE);
        let mut ch = BecModel { e: 0.0 }.make(1);
        assert_eq!(ch.transmit(1), 1);
        assert_eq!(ch.transmit(0), 0);
    }

    #[test]
    fn fading_channel_is_deterministic() {
        let model = FadingModel {
            snr_db: 10.0,
            block_len: 4,
        };
        let mut a = model.make(9);
        let mut b = model.make(9);
        for _ in 0..16 {
            let x = IqSymbol::new(1.0, -0.5);
            let (ya, yb) = (a.transmit(x), b.transmit(x));
            assert_eq!(ya.i.to_bits(), yb.i.to_bits());
            assert_eq!(ya.q.to_bits(), yb.q.to_bits());
        }
    }
}
