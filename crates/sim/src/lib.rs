//! The experiment harness: everything §5 of the paper does, as a library.
//!
//! * [`rateless`] — the genie-feedback (and CRC-feedback) rateless rate
//!   measurement for spinal codes over AWGN and BSC;
//! * [`fixedrate`] — the LDPC goodput baseline (all eight Figure 2
//!   configurations);
//! * [`theorem`] — BER-vs-passes curves validating Theorems 1 and 2;
//! * [`berpos`] — BER by bit position (the §4 trailing-bits claim);
//! * [`stats`] — online statistics and deterministic seed derivation;
//! * [`runner`] — an order-preserving thread-pool for parameter sweeps.
//!
//! Every entry point takes an explicit `u64` seed and is bit-reproducible
//! for a given seed regardless of thread count.
//!
//! # Example — one Figure 2 spinal point, quickly
//!
//! ```
//! use spinal_sim::rateless::{run_awgn, RatelessConfig};
//!
//! let mut cfg = RatelessConfig::fig2();
//! cfg.max_passes = 200; // keep the doctest fast
//! let out = run_awgn(&cfg, 20.0, 5, 42).unwrap();
//! assert!(out.success_fraction() > 0.9);
//! // At 20 dB, capacity is ~6.66 bits/symbol; the code lands below it.
//! assert!(out.rate_mean() > 3.0 && out.rate_mean() < 6.66);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arq;
pub mod berpos;
pub mod engine;
pub mod fixedrate;
pub mod rateless;
pub mod runner;
pub mod stats;
pub mod theorem;

pub use arq::{run_arq_awgn, ArqConfig, ArqOutcome};
pub use berpos::{ber_by_position_awgn, BerByPosition};
pub use engine::{
    Accumulate, AwgnModel, BecModel, BscModel, ChannelModel, FadingModel, Scenario, SimEngine,
    Trial,
};
pub use fixedrate::{run_ldpc_awgn, LdpcConfig, LdpcOutcome};
pub use rateless::{
    run_awgn, run_awgn_until, run_awgn_with, run_bec_with, run_bsc, run_bsc_until, run_bsc_with,
    run_fading_with, BscRatelessConfig, RatelessConfig, RatelessOutcome, StopRule, Termination,
};
pub use runner::{default_threads, parallel_map, snr_grid};
pub use stats::{derive_seed, wilson_halfwidth, wilson_interval, RunningStats};
pub use theorem::{thm1_curve, thm2_curve, TheoremPoint};
