//! A small deterministic thread-pool runner for parameter sweeps.
//!
//! Experiment points (SNR values, beam widths, …) are independent, so the
//! harness fans them out over `std::thread::scope` workers. Results come
//! back in input order, and each point derives its own seed, so the output
//! is identical whatever the thread count — determinism is part of the
//! reproduction contract (DESIGN.md §2.10).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on `threads` worker threads, preserving order.
///
/// `f` must be `Sync` (shared by reference across workers); items are
/// taken by index, so no channel machinery is needed.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker panics.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker left a hole")
        })
        .collect()
}

/// A sensible default worker count: available parallelism, capped at the
/// item count by [`parallel_map`] anyway.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// An inclusive SNR grid in dB with the given step.
///
/// Every point is computed by integer index (`lo + i·step`), never by
/// repeated float addition — accumulation drift (`0.1 + 0.1 + …`) can
/// otherwise drop or duplicate the final grid point. The point count is
/// the largest `n` with `lo + n·step ≤ hi` up to one part in 10⁶ of a
/// step, so a `hi` that the step representably reaches (e.g. `2.0` by
/// `0.1`, where `(hi−lo)/step` rounds to `19.999…`) is always included,
/// while a step that overshoots (`0.0..=1.0` by `0.3`) never produces a
/// point beyond `hi`.
///
/// # Panics
///
/// Panics if `step` is not positive or `hi < lo`.
pub fn snr_grid(lo: f64, hi: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0, "step must be positive");
    assert!(hi >= lo, "empty grid: hi < lo");
    let mut n = ((hi - lo) / step + 0.5).floor() as usize;
    // The rounded count may overshoot when step does not divide the
    // range; back off until the last point fits (with a one-ppm-of-step
    // tolerance for representation error).
    while n > 0 && lo + n as f64 * step > hi + step * 1e-6 {
        n -= 1;
    }
    (0..=n).map(|i| lo + i as f64 * step).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn single_thread_matches_many_threads() {
        let items: Vec<u64> = (0..37).collect();
        let one = parallel_map(&items, 1, |&x| x.wrapping_mul(0x9e3779b9).rotate_left(7));
        let many = parallel_map(&items, 16, |&x| x.wrapping_mul(0x9e3779b9).rotate_left(7));
        assert_eq!(one, many);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<u64> = parallel_map(&items, 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        let out = parallel_map(&items, 64, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn actually_runs_concurrently_when_asked() {
        // Smoke test: all items processed exactly once.
        use std::sync::atomic::AtomicU32;
        let counter = AtomicU32::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let _ = parallel_map(&items, 8, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn snr_grid_inclusive() {
        let g = snr_grid(-10.0, 40.0, 5.0);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], -10.0);
        assert_eq!(g[10], 40.0);
        let fine = snr_grid(0.0, 1.0, 0.25);
        assert_eq!(fine, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn snr_grid_survives_inexact_steps() {
        // (2 − 0)/0.1 = 19.999999999999996 in f64: a truncating count
        // would drop the final 2.0 point.
        let g = snr_grid(0.0, 2.0, 0.1);
        assert_eq!(g.len(), 21);
        assert!((g[20] - 2.0).abs() < 1e-9, "last point {}", g[20]);
        // Non-dividing step: never overshoot hi.
        let g = snr_grid(0.0, 1.0, 0.3);
        assert_eq!(g.len(), 4); // 0.0, 0.3, 0.6, 0.9
        assert!(*g.last().unwrap() <= 1.0 + 1e-9);
        // Points are index-computed: g[i] is exactly lo + i*step.
        for (i, &x) in g.iter().enumerate() {
            assert_eq!(x.to_bits(), (i as f64 * 0.3).to_bits());
        }
        // Degenerate single-point grid.
        assert_eq!(snr_grid(5.0, 5.0, 1.0), vec![5.0]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        parallel_map(&[1], 0, |&x: &i32| x);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn bad_grid_step_rejected() {
        snr_grid(0.0, 10.0, 0.0);
    }
}
