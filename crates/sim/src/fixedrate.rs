//! The fixed-rate LDPC goodput harness — Figure 2's baseline curves.
//!
//! Each LDPC configuration in the figure is a (code rate, modulation)
//! pair at a fixed nominal rate of `code_rate × bits_per_symbol` bits per
//! symbol. Per trial: random information word → systematic QC-LDPC
//! encoding → Gray-mapped modulation → AWGN → exact soft demapping →
//! 40-iteration belief propagation. The plotted goodput is
//! `nominal rate × frame success rate`: below the waterfall the curve
//! collapses to zero, above it the curve sits flat at the nominal rate —
//! the step shapes of Figure 2.

use crate::stats::derive_seed;
use spinal_channel::{AwgnChannel, Channel, Rng};
use spinal_ldpc::{BpMethod, LdpcCode, LdpcRate};
use spinal_modem::{demap_sequence, Constellation, DemapMethod, Modulation};

/// One baseline configuration (a legend entry of Figure 2).
#[derive(Clone, Debug)]
pub struct LdpcConfig {
    /// Code rate.
    pub rate: LdpcRate,
    /// Modulation.
    pub modulation: Modulation,
    /// BP iteration cap (the paper uses 40).
    pub max_iters: u32,
    /// Check-node rule.
    pub method: BpMethod,
    /// Soft-demapping algorithm.
    pub demap: DemapMethod,
    /// Seed selecting the QC-LDPC circulant shifts.
    pub code_seed: u64,
}

impl LdpcConfig {
    /// The paper's decoder settings for a (rate, modulation) pair:
    /// 40-iteration sum-product BP on exact LLRs.
    pub fn paper(rate: LdpcRate, modulation: Modulation) -> Self {
        Self {
            rate,
            modulation,
            max_iters: 40,
            method: BpMethod::SumProduct,
            demap: DemapMethod::Exact,
            code_seed: 0x8021_1000,
        }
    }

    /// The eight legend entries of Figure 2, in the paper's order.
    pub fn fig2_set() -> Vec<LdpcConfig> {
        [
            (LdpcRate::R12, Modulation::Bpsk),
            (LdpcRate::R12, Modulation::Qpsk),
            (LdpcRate::R34, Modulation::Qpsk),
            (LdpcRate::R12, Modulation::Qam16),
            (LdpcRate::R34, Modulation::Qam16),
            (LdpcRate::R23, Modulation::Qam64),
            (LdpcRate::R34, Modulation::Qam64),
            (LdpcRate::R56, Modulation::Qam64),
        ]
        .into_iter()
        .map(|(r, m)| LdpcConfig::paper(r, m))
        .collect()
    }

    /// Nominal information rate in bits per symbol.
    pub fn nominal_rate(&self) -> f64 {
        self.rate.as_f64() * f64::from(self.modulation.bits_per_symbol())
    }

    /// Legend label, e.g. `LDPC r=3/4 QAM-16`.
    pub fn label(&self) -> String {
        format!("LDPC r={} {}", self.rate.name(), self.modulation.name())
    }
}

/// Aggregated results of an LDPC goodput run.
#[derive(Clone, Debug)]
pub struct LdpcOutcome {
    /// Trials run.
    pub trials: u32,
    /// Frames decoded to exactly the transmitted codeword.
    pub frame_successes: u32,
    /// Frames where BP converged to a *different* codeword (undetected).
    pub undetected: u32,
    /// Nominal rate of the configuration (bits/symbol).
    pub nominal_rate: f64,
}

impl LdpcOutcome {
    /// Frame success rate.
    pub fn fsr(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.frame_successes) / f64::from(self.trials)
        }
    }

    /// Goodput in information bits per symbol:
    /// `nominal rate × frame success rate`.
    pub fn goodput(&self) -> f64 {
        self.nominal_rate * self.fsr()
    }
}

/// Runs `trials` frames of `cfg` over AWGN at `snr_db`.
pub fn run_ldpc_awgn(cfg: &LdpcConfig, snr_db: f64, trials: u32, seed: u64) -> LdpcOutcome {
    let code = LdpcCode::new(cfg.rate, cfg.code_seed);
    let cst = Constellation::new(cfg.modulation);
    let mut outcome = LdpcOutcome {
        trials: 0,
        frame_successes: 0,
        undetected: 0,
        nominal_rate: cfg.nominal_rate(),
    };
    for trial in 0..trials {
        let msg_seed = derive_seed(seed, 20, u64::from(trial));
        let noise_seed = derive_seed(seed, 21, u64::from(trial));
        let mut rng = Rng::seed_from(msg_seed);
        let info: Vec<u8> = (0..code.k()).map(|_| u8::from(rng.bit())).collect();
        let cw = code.encode(&info);
        let tx = cst.modulate_bits(&cw);
        let mut channel = AwgnChannel::from_snr_db(snr_db, noise_seed);
        let rx: Vec<_> = tx.into_iter().map(|x| channel.transmit(x)).collect();
        let llrs = demap_sequence(&cst, &rx, channel.sigma2(), cfg.demap);
        let out = code.decode(&llrs[..code.n()], cfg.max_iters, cfg.method);
        outcome.trials += 1;
        if out.converged {
            if out.bits == cw {
                outcome.frame_successes += 1;
            } else {
                outcome.undetected += 1;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_set_matches_legend() {
        let set = LdpcConfig::fig2_set();
        assert_eq!(set.len(), 8);
        let labels: Vec<String> = set.iter().map(LdpcConfig::label).collect();
        assert_eq!(labels[0], "LDPC r=1/2 BPSK");
        assert_eq!(labels[7], "LDPC r=5/6 QAM-64");
        // Nominal rates ascend overall from 0.5 to 5.
        assert!((set[0].nominal_rate() - 0.5).abs() < 1e-12);
        assert!((set[7].nominal_rate() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn high_snr_reaches_nominal_rate() {
        // Rate 1/2 QPSK at 15 dB is far above its waterfall (~1-2 dB).
        let cfg = LdpcConfig::paper(LdpcRate::R12, Modulation::Qpsk);
        let out = run_ldpc_awgn(&cfg, 15.0, 12, 5);
        assert_eq!(out.fsr(), 1.0, "FSR {}", out.fsr());
        assert!((out.goodput() - 1.0).abs() < 1e-9);
        assert_eq!(out.undetected, 0);
    }

    #[test]
    fn low_snr_collapses_to_zero() {
        // Rate 3/4 QAM-64 needs ~18 dB; at 2 dB nothing decodes.
        let cfg = LdpcConfig::paper(LdpcRate::R34, Modulation::Qam64);
        let out = run_ldpc_awgn(&cfg, 2.0, 8, 6);
        assert_eq!(out.frame_successes, 0);
        assert_eq!(out.goodput(), 0.0);
    }

    #[test]
    fn waterfall_is_monotone() {
        let cfg = LdpcConfig::paper(LdpcRate::R12, Modulation::Bpsk);
        let lo = run_ldpc_awgn(&cfg, -4.0, 10, 7).fsr();
        let hi = run_ldpc_awgn(&cfg, 6.0, 10, 7).fsr();
        assert!(hi >= lo, "FSR must not decrease with SNR: {lo} -> {hi}");
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LdpcConfig::paper(LdpcRate::R23, Modulation::Qam16);
        let a = run_ldpc_awgn(&cfg, 9.0, 6, 11);
        let b = run_ldpc_awgn(&cfg, 9.0, 6, 11);
        assert_eq!(a.frame_successes, b.frame_successes);
    }
}
