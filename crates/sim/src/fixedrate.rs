//! The fixed-rate LDPC goodput harness — Figure 2's baseline curves.
//!
//! Each LDPC configuration in the figure is a (code rate, modulation)
//! pair at a fixed nominal rate of `code_rate × bits_per_symbol` bits per
//! symbol. Per trial: random information word → systematic QC-LDPC
//! encoding → Gray-mapped modulation → AWGN → exact soft demapping →
//! 40-iteration belief propagation. The plotted goodput is
//! `nominal rate × frame success rate`: below the waterfall the curve
//! collapses to zero, above it the curve sits flat at the nominal rate —
//! the step shapes of Figure 2.

use crate::engine::{Accumulate, Scenario, SimEngine, Trial};
use crate::stats::derive_seed;
use spinal_channel::{AwgnChannel, Channel, Rng};
use spinal_ldpc::{BpMethod, LdpcCode, LdpcRate};
use spinal_modem::{demap_sequence, Constellation, DemapMethod, Modulation};

/// One baseline configuration (a legend entry of Figure 2).
#[derive(Clone, Debug)]
pub struct LdpcConfig {
    /// Code rate.
    pub rate: LdpcRate,
    /// Modulation.
    pub modulation: Modulation,
    /// BP iteration cap (the paper uses 40).
    pub max_iters: u32,
    /// Check-node rule.
    pub method: BpMethod,
    /// Soft-demapping algorithm.
    pub demap: DemapMethod,
    /// Seed selecting the QC-LDPC circulant shifts.
    pub code_seed: u64,
}

impl LdpcConfig {
    /// The paper's decoder settings for a (rate, modulation) pair:
    /// 40-iteration sum-product BP on exact LLRs.
    pub fn paper(rate: LdpcRate, modulation: Modulation) -> Self {
        Self {
            rate,
            modulation,
            max_iters: 40,
            method: BpMethod::SumProduct,
            demap: DemapMethod::Exact,
            code_seed: 0x8021_1000,
        }
    }

    /// The eight legend entries of Figure 2, in the paper's order.
    pub fn fig2_set() -> Vec<LdpcConfig> {
        [
            (LdpcRate::R12, Modulation::Bpsk),
            (LdpcRate::R12, Modulation::Qpsk),
            (LdpcRate::R34, Modulation::Qpsk),
            (LdpcRate::R12, Modulation::Qam16),
            (LdpcRate::R34, Modulation::Qam16),
            (LdpcRate::R23, Modulation::Qam64),
            (LdpcRate::R34, Modulation::Qam64),
            (LdpcRate::R56, Modulation::Qam64),
        ]
        .into_iter()
        .map(|(r, m)| LdpcConfig::paper(r, m))
        .collect()
    }

    /// Nominal information rate in bits per symbol.
    pub fn nominal_rate(&self) -> f64 {
        self.rate.as_f64() * f64::from(self.modulation.bits_per_symbol())
    }

    /// Legend label, e.g. `LDPC r=3/4 QAM-16`.
    pub fn label(&self) -> String {
        format!("LDPC r={} {}", self.rate.name(), self.modulation.name())
    }
}

/// Aggregated results of an LDPC goodput run.
#[derive(Clone, Debug)]
pub struct LdpcOutcome {
    /// Trials run.
    pub trials: u32,
    /// Frames decoded to exactly the transmitted codeword.
    pub frame_successes: u32,
    /// Frames where BP converged to a *different* codeword (undetected).
    pub undetected: u32,
    /// Nominal rate of the configuration (bits/symbol).
    pub nominal_rate: f64,
}

impl LdpcOutcome {
    /// Frame success rate.
    pub fn fsr(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.frame_successes) / f64::from(self.trials)
        }
    }

    /// Goodput in information bits per symbol:
    /// `nominal rate × frame success rate`.
    pub fn goodput(&self) -> f64 {
        self.nominal_rate * self.fsr()
    }
}

impl Accumulate for LdpcOutcome {
    fn merge(&mut self, o: Self) {
        self.trials += o.trials;
        self.frame_successes += o.frame_successes;
        self.undetected += o.undetected;
        self.nominal_rate = o.nominal_rate;
    }
}

/// One LDPC goodput grid point as an engine scenario: the QC code and
/// constellation are built once and shared; each worker reuses its
/// received-symbol buffer across frames.
struct LdpcScenario<'a> {
    cfg: &'a LdpcConfig,
    code: LdpcCode,
    cst: Constellation,
    snr_db: f64,
    master_seed: u64,
}

impl Scenario for LdpcScenario<'_> {
    type Worker = Vec<spinal_core::IqSymbol>;
    type Acc = LdpcOutcome;

    fn make_worker(&self) -> Self::Worker {
        Vec::new()
    }

    fn empty_acc(&self) -> LdpcOutcome {
        LdpcOutcome {
            trials: 0,
            frame_successes: 0,
            undetected: 0,
            nominal_rate: self.cfg.nominal_rate(),
        }
    }

    fn run_trial(&self, trial: Trial, rx: &mut Self::Worker, acc: &mut LdpcOutcome) {
        let msg_seed = derive_seed(self.master_seed, 20, trial.index);
        let noise_seed = derive_seed(self.master_seed, 21, trial.index);
        let mut rng = Rng::seed_from(msg_seed);
        let info: Vec<u8> = (0..self.code.k()).map(|_| u8::from(rng.bit())).collect();
        let cw = self.code.encode(&info);
        let tx = self.cst.modulate_bits(&cw);
        let mut channel = AwgnChannel::from_snr_db(self.snr_db, noise_seed);
        rx.clear();
        rx.extend(tx.into_iter().map(|x| channel.transmit(x)));
        let llrs = demap_sequence(&self.cst, rx, channel.sigma2(), self.cfg.demap);
        let out = self
            .code
            .decode(&llrs[..self.code.n()], self.cfg.max_iters, self.cfg.method);
        acc.trials += 1;
        if out.converged {
            if out.bits == cw {
                acc.frame_successes += 1;
            } else {
                acc.undetected += 1;
            }
        }
    }
}

/// Runs `trials` frames of `cfg` over AWGN at `snr_db` (serial engine —
/// the historical entry point; see [`run_ldpc_awgn_with`]).
pub fn run_ldpc_awgn(cfg: &LdpcConfig, snr_db: f64, trials: u32, seed: u64) -> LdpcOutcome {
    run_ldpc_awgn_with(cfg, snr_db, trials, seed, &SimEngine::serial())
}

/// [`run_ldpc_awgn`] on an explicit [`SimEngine`] (integer statistics:
/// bit-identical for any worker count and chunk size).
pub fn run_ldpc_awgn_with(
    cfg: &LdpcConfig,
    snr_db: f64,
    trials: u32,
    seed: u64,
    engine: &SimEngine,
) -> LdpcOutcome {
    let scenario = LdpcScenario {
        cfg,
        code: LdpcCode::new(cfg.rate, cfg.code_seed),
        cst: Constellation::new(cfg.modulation),
        snr_db,
        master_seed: seed,
    };
    engine.run(&scenario, u64::from(trials), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_set_matches_legend() {
        let set = LdpcConfig::fig2_set();
        assert_eq!(set.len(), 8);
        let labels: Vec<String> = set.iter().map(LdpcConfig::label).collect();
        assert_eq!(labels[0], "LDPC r=1/2 BPSK");
        assert_eq!(labels[7], "LDPC r=5/6 QAM-64");
        // Nominal rates ascend overall from 0.5 to 5.
        assert!((set[0].nominal_rate() - 0.5).abs() < 1e-12);
        assert!((set[7].nominal_rate() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn high_snr_reaches_nominal_rate() {
        // Rate 1/2 QPSK at 15 dB is far above its waterfall (~1-2 dB).
        let cfg = LdpcConfig::paper(LdpcRate::R12, Modulation::Qpsk);
        let out = run_ldpc_awgn(&cfg, 15.0, 12, 5);
        assert_eq!(out.fsr(), 1.0, "FSR {}", out.fsr());
        assert!((out.goodput() - 1.0).abs() < 1e-9);
        assert_eq!(out.undetected, 0);
    }

    #[test]
    fn low_snr_collapses_to_zero() {
        // Rate 3/4 QAM-64 needs ~18 dB; at 2 dB nothing decodes.
        let cfg = LdpcConfig::paper(LdpcRate::R34, Modulation::Qam64);
        let out = run_ldpc_awgn(&cfg, 2.0, 8, 6);
        assert_eq!(out.frame_successes, 0);
        assert_eq!(out.goodput(), 0.0);
    }

    #[test]
    fn waterfall_is_monotone() {
        let cfg = LdpcConfig::paper(LdpcRate::R12, Modulation::Bpsk);
        let lo = run_ldpc_awgn(&cfg, -4.0, 10, 7).fsr();
        let hi = run_ldpc_awgn(&cfg, 6.0, 10, 7).fsr();
        assert!(hi >= lo, "FSR must not decrease with SNR: {lo} -> {hi}");
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LdpcConfig::paper(LdpcRate::R23, Modulation::Qam16);
        let a = run_ldpc_awgn(&cfg, 9.0, 6, 11);
        let b = run_ldpc_awgn(&cfg, 9.0, 6, 11);
        assert_eq!(a.frame_successes, b.frame_successes);
    }

    #[test]
    fn sharded_matches_serial() {
        let cfg = LdpcConfig::paper(LdpcRate::R12, Modulation::Qpsk);
        let serial = run_ldpc_awgn(&cfg, 3.0, 9, 13);
        let sharded = run_ldpc_awgn_with(
            &cfg,
            3.0,
            9,
            13,
            &SimEngine::with_workers(3).chunk_trials(2),
        );
        assert_eq!(serial.trials, sharded.trials);
        assert_eq!(serial.frame_successes, sharded.frame_successes);
        assert_eq!(serial.undetected, sharded.undetected);
    }
}
