//! Streaming statistics for Monte-Carlo experiments.
//!
//! Every experiment in the harness reports a mean with an honest standard
//! error, computed online with Welford's algorithm so trials never need
//! buffering.

/// Online mean/variance accumulator (Welford).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let nf = n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / nf;
        self.mean += delta * other.n as f64 / nf;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The Wilson score interval for a binomial proportion: returns
/// `(center, halfwidth)` for `successes` out of `trials` at normal
/// quantile `z` (1.96 ≈ 95%). Unlike the naive normal interval it stays
/// inside `[0, 1]` and behaves sensibly at 0% / 100% observed rates, so
/// the simulation engine's early stop can use it from the first trials.
///
/// Returns `(0.5, 0.5)` — total uncertainty — when `trials == 0`.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.5, 0.5);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (center, half)
}

/// Convenience: just the Wilson half-width (the engine's stop criterion
/// "confidence width ≤ target" compares against twice this).
pub fn wilson_halfwidth(successes: u64, trials: u64, z: f64) -> f64 {
    wilson_interval(successes, trials, z).1
}

/// Nearest-rank percentile over an *unsorted* sample, `q` in `[0, 1]`
/// (`0.5` = median, `0.99` = p99): sorts `values` in place, then
/// returns the element at rank `⌈q·n⌉` (1-indexed, clamped to the
/// sample). `None` when the sample is empty.
///
/// This is the one percentile definition the workspace uses —
/// `spinal-link`'s `LinkReport::latency_percentile` and the serving
/// benchmarks both call it, so p99 on small samples cannot disagree
/// between reports.
pub fn percentile_nearest_rank(values: &mut [u64], q: f64) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    let rank = (q.clamp(0.0, 1.0) * values.len() as f64).ceil() as usize;
    Some(values[rank.saturating_sub(1).min(values.len() - 1)])
}

/// Derives an independent sub-seed from an experiment seed and stream
/// labels, so that trial `i` of experiment `e` always sees the same
/// randomness regardless of threading or iteration order.
pub fn derive_seed(base: u64, stream: u64, index: u64) -> u64 {
    // splitmix64-style finalizer over the mixed labels.
    let mut z = base
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_sequence() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic sequence is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stderr(), 0.0);
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn stderr_shrinks_with_n() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for i in 0..100 {
            a.push((i % 10) as f64);
        }
        for i in 0..10_000 {
            b.push((i % 10) as f64);
        }
        assert!(b.stderr() < a.stderr() / 5.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..300] {
            left.push(x);
        }
        for &x in &xs[300..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(2.0);
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_behaves() {
        // Known value: 8/10 at z = 1.96 → center ≈ 0.7167, half ≈ 0.2266.
        let (c, h) = wilson_interval(8, 10, 1.96);
        assert!((c - 0.7167).abs() < 1e-3, "center {c}");
        assert!((h - 0.2266).abs() < 1e-3, "half {h}");
        // Shrinks with n.
        assert!(wilson_halfwidth(80, 100, 1.96) < h);
        assert!(wilson_halfwidth(800, 1000, 1.96) < wilson_halfwidth(80, 100, 1.96));
        // Stays in [0,1] even at the extremes.
        let (c0, h0) = wilson_interval(0, 5, 1.96);
        assert!(c0 - h0 >= -1e-12 && c0 + h0 <= 1.0 + 1e-12);
        let (c1, h1) = wilson_interval(5, 5, 1.96);
        assert!(c1 - h1 >= -1e-12 && c1 + h1 <= 1.0 + 1e-12);
        // Empty: total uncertainty.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.5, 0.5));
    }

    #[test]
    fn percentile_nearest_rank_matches_definition() {
        assert_eq!(percentile_nearest_rank(&mut [], 0.5), None);
        let mut v = [50, 30, 10, 40, 20];
        assert_eq!(percentile_nearest_rank(&mut v, 0.0), Some(10));
        assert_eq!(percentile_nearest_rank(&mut v, 0.5), Some(30));
        assert_eq!(percentile_nearest_rank(&mut v, 0.99), Some(50));
        assert_eq!(percentile_nearest_rank(&mut v, 1.0), Some(50));
        // A one-element sample answers every quantile with itself.
        assert_eq!(percentile_nearest_rank(&mut [7], 0.99), Some(7));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(1, 0, 0);
        let b = derive_seed(1, 0, 1);
        let c = derive_seed(1, 1, 0);
        let d = derive_seed(2, 0, 0);
        assert!(a != b && a != c && a != d && b != c);
        // And is reproducible.
        assert_eq!(derive_seed(1, 0, 0), a);
    }

    proptest! {
        #[test]
        fn prop_mean_within_bounds(xs in proptest::collection::vec(-100.0..100.0f64, 1..200)) {
            let mut s = RunningStats::new();
            for &x in &xs {
                s.push(x);
            }
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
            prop_assert!(s.variance() >= 0.0);
        }

        #[test]
        fn prop_merge_associative_counts(xs in proptest::collection::vec(-10.0..10.0f64, 3..50),
                                         split in 1usize..2) {
            let k = split.min(xs.len() - 1);
            let mut a = RunningStats::new();
            let mut b = RunningStats::new();
            for &x in &xs[..k] { a.push(x); }
            for &x in &xs[k..] { b.push(x); }
            a.merge(&b);
            prop_assert_eq!(a.count() as usize, xs.len());
        }
    }
}
