//! BER by bit position: the §4 "trailing bits" claim.
//!
//! "For any value of n when BER is not strictly 0, the erroneous bits are
//! always in the last few bits, a property that we can use in practice by
//! adding some known trailing bits to each coded message." The mechanism:
//! the last spine values feed fewer downstream symbols, so hypotheses
//! that diverge only near the end accumulate less distinguishing cost.
//! Appending known tail segments gives the final message bits the same
//! downstream protection as earlier ones.
//!
//! This harness runs marginal-L decodes and histograms errors per
//! message-bit position, with and without tail segments; the `tail_bits`
//! binary prints both profiles.

use crate::rateless::RatelessConfig;
use crate::stats::derive_seed;
use crate::theorem::decode_after_passes;
use spinal_channel::{AdcQuantizer, AwgnChannel, Rng};
use spinal_core::decode::DecoderScratch;
use spinal_core::hash::AnyHash;
use spinal_core::map::Mapper;
use spinal_core::params::CodeParams;
use spinal_core::{AwgnCost, BitVec};

/// Per-position bit error rates from a fixed-pass experiment.
#[derive(Clone, Debug)]
pub struct BerByPosition {
    /// BER of each message-bit position, index 0 = first transmitted bit.
    pub per_bit: Vec<f64>,
    /// Overall message BER.
    pub overall: f64,
    /// Trials run.
    pub trials: u32,
    /// Fraction of trials with at least one error.
    pub frame_error_rate: f64,
}

impl BerByPosition {
    /// Mean BER over the first half of the message bits.
    pub fn first_half(&self) -> f64 {
        let h = self.per_bit.len() / 2;
        self.per_bit[..h].iter().sum::<f64>() / h as f64
    }

    /// Mean BER over the last half of the message bits.
    pub fn last_half(&self) -> f64 {
        let h = self.per_bit.len() / 2;
        self.per_bit[h..].iter().sum::<f64>() / (self.per_bit.len() - h) as f64
    }
}

/// Runs `trials` fixed-`passes` AWGN decodes of `cfg`'s code at `snr_db`
/// and histograms bit errors by position.
pub fn ber_by_position_awgn(
    cfg: &RatelessConfig,
    snr_db: f64,
    passes: u32,
    trials: u32,
    seed: u64,
) -> BerByPosition {
    assert!(passes >= 1, "need at least one pass");
    let n = cfg.message_bits as usize;
    let mut errors = vec![0u32; n];
    let mut frame_errors = 0u32;
    let mut scratch = DecoderScratch::new();
    for trial in 0..trials {
        let code_seed = derive_seed(seed, 40, u64::from(trial));
        let noise_seed = derive_seed(seed, 41, u64::from(trial));
        let msg_seed = derive_seed(seed, 42, u64::from(trial));
        let params = CodeParams::builder()
            .message_bits(cfg.message_bits)
            .k(cfg.k)
            .tail_segments(cfg.tail_segments)
            .seed(code_seed)
            .build()
            .expect("invalid config");
        let hash = AnyHash::new(cfg.hash, code_seed);
        let mut rng = Rng::seed_from(msg_seed);
        let message: BitVec = (0..cfg.message_bits).map(|_| rng.bit()).collect();
        let mut channel = AwgnChannel::from_snr_db(snr_db, noise_seed);
        let adc = cfg.adc_bits.map(|b| {
            AdcQuantizer::new(b, cfg.mapper.peak() + 4.0 * (channel.sigma2() / 2.0).sqrt())
        });
        let decoded = decode_after_passes(
            &params,
            hash,
            &cfg.mapper,
            AwgnCost,
            cfg.beam,
            passes,
            &message,
            &mut channel,
            |y| match &adc {
                Some(q) => q.quantize_symbol(y),
                None => y,
            },
            &mut scratch,
        );
        let mut any = false;
        for (i, slot) in errors.iter_mut().enumerate() {
            if decoded.get(i) != message.get(i) {
                *slot += 1;
                any = true;
            }
        }
        frame_errors += u32::from(any);
    }
    let per_bit: Vec<f64> = errors
        .iter()
        .map(|&e| f64::from(e) / f64::from(trials))
        .collect();
    let overall = per_bit.iter().sum::<f64>() / n as f64;
    BerByPosition {
        per_bit,
        overall,
        trials,
        frame_error_rate: f64::from(frame_errors) / f64::from(trials),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rateless::Termination;
    use spinal_core::decode::BeamConfig;
    use spinal_core::hash::HashFamily;
    use spinal_core::map::AnyIqMapper;
    use spinal_core::puncture::AnySchedule;

    fn cfg(tail: u32) -> RatelessConfig {
        RatelessConfig {
            message_bits: 32,
            k: 4,
            tail_segments: tail,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(6),
            schedule: AnySchedule::none(),
            beam: BeamConfig::with_beam(4),
            adc_bits: None,
            max_passes: 100,
            attempt_growth: 1.0,
            termination: Termination::Genie,
        }
    }

    #[test]
    fn errors_concentrate_in_last_bits() {
        // Marginal operating point: B = 4, two passes at 6 dB. Errors
        // exist, and the last half of the message carries more of them —
        // the §4 claim.
        let b = ber_by_position_awgn(&cfg(0), 6.0, 2, 60, 1);
        assert!(b.overall > 0.0, "need a lossy operating point");
        assert!(
            b.last_half() > b.first_half(),
            "last-half BER {} !> first-half {}",
            b.last_half(),
            b.first_half()
        );
    }

    #[test]
    fn tail_segments_protect_the_tail() {
        let without = ber_by_position_awgn(&cfg(0), 6.0, 2, 60, 2);
        let with = ber_by_position_awgn(&cfg(2), 6.0, 2, 60, 2);
        // Tail segments specifically repair the final bits.
        assert!(
            with.last_half() < without.last_half(),
            "tail: {} !< no-tail: {}",
            with.last_half(),
            without.last_half()
        );
    }

    #[test]
    fn per_bit_vector_shape() {
        let b = ber_by_position_awgn(&cfg(0), 20.0, 2, 10, 3);
        assert_eq!(b.per_bit.len(), 32);
        assert!(b.per_bit.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert_eq!(b.trials, 10);
    }

    #[test]
    fn clean_channel_no_errors_anywhere() {
        let b = ber_by_position_awgn(&cfg(0), 60.0, 1, 10, 4);
        assert_eq!(b.overall, 0.0);
        assert_eq!(b.frame_error_rate, 0.0);
        assert!(b.per_bit.iter().all(|&x| x == 0.0));
    }
}
