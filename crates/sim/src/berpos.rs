//! BER by bit position: the §4 "trailing bits" claim.
//!
//! "For any value of n when BER is not strictly 0, the erroneous bits are
//! always in the last few bits, a property that we can use in practice by
//! adding some known trailing bits to each coded message." The mechanism:
//! the last spine values feed fewer downstream symbols, so hypotheses
//! that diverge only near the end accumulate less distinguishing cost.
//! Appending known tail segments gives the final message bits the same
//! downstream protection as earlier ones.
//!
//! This harness runs marginal-L decodes and histograms errors per
//! message-bit position, with and without tail segments; the `tail_bits`
//! binary prints both profiles. Trials run on the sharded
//! [`SimEngine`] with integer histograms — bit-identical for any worker
//! count and chunk size.

use crate::engine::{Accumulate, AwgnModel, Scenario, SimEngine, Trial};
use crate::rateless::RatelessConfig;
use crate::stats::derive_seed;
use crate::theorem::{fixed_pass_trial, FixedPassWorker};
use spinal_core::decode::BeamConfig;
use spinal_core::hash::HashFamily;
use spinal_core::map::{AnyIqMapper, Mapper};
use spinal_core::params::CodeParams;
use spinal_core::{AwgnCost, SpinalError};

/// Per-position bit error rates from a fixed-pass experiment.
#[derive(Clone, Debug)]
pub struct BerByPosition {
    /// BER of each message-bit position, index 0 = first transmitted bit.
    pub per_bit: Vec<f64>,
    /// Overall message BER.
    pub overall: f64,
    /// Trials run.
    pub trials: u32,
    /// Fraction of trials with at least one error.
    pub frame_error_rate: f64,
}

impl BerByPosition {
    /// Mean BER over the first half of the message bits.
    pub fn first_half(&self) -> f64 {
        let h = self.per_bit.len() / 2;
        self.per_bit[..h].iter().sum::<f64>() / h as f64
    }

    /// Mean BER over the last half of the message bits.
    pub fn last_half(&self) -> f64 {
        let h = self.per_bit.len() / 2;
        self.per_bit[h..].iter().sum::<f64>() / (self.per_bit.len() - h) as f64
    }
}

/// Integer per-position error histogram.
#[derive(Clone, Debug, Default)]
struct PositionAcc {
    trials: u64,
    frame_errors: u64,
    errors: Vec<u64>,
}

impl Accumulate for PositionAcc {
    fn merge(&mut self, o: Self) {
        self.trials += o.trials;
        self.frame_errors += o.frame_errors;
        if self.errors.is_empty() {
            self.errors = o.errors;
        } else {
            for (a, b) in self.errors.iter_mut().zip(o.errors) {
                *a += b;
            }
        }
    }
}

struct BerPositionScenario {
    params: CodeParams,
    hash: HashFamily,
    mapper: AnyIqMapper,
    beam: BeamConfig,
    channel: AwgnModel,
    passes: u32,
    master_seed: u64,
}

impl Scenario for BerPositionScenario {
    type Worker = FixedPassWorker<AnyIqMapper>;
    type Acc = PositionAcc;

    fn make_worker(&self) -> Self::Worker {
        FixedPassWorker::new(self.params.n_segments())
    }

    fn empty_acc(&self) -> PositionAcc {
        PositionAcc {
            trials: 0,
            frame_errors: 0,
            errors: vec![0; self.params.message_bits() as usize],
        }
    }

    fn run_trial(&self, trial: Trial, w: &mut Self::Worker, acc: &mut PositionAcc) {
        let seeds = (
            derive_seed(self.master_seed, 40, trial.index),
            derive_seed(self.master_seed, 41, trial.index),
            derive_seed(self.master_seed, 42, trial.index),
        );
        fixed_pass_trial(
            &self.params,
            self.hash,
            &self.mapper,
            &AwgnCost,
            self.beam,
            &self.channel,
            self.passes,
            seeds,
            w,
        );
        let (decoded, truth) = w.decoded_and_truth();
        let mut any = false;
        for (i, slot) in acc.errors.iter_mut().enumerate() {
            if decoded.get(i) != truth.get(i) {
                *slot += 1;
                any = true;
            }
        }
        acc.trials += 1;
        acc.frame_errors += u64::from(any);
    }
}

/// Runs `trials` fixed-`passes` AWGN decodes of `cfg`'s code at `snr_db`
/// and histograms bit errors by position. Serial engine; see
/// [`ber_by_position_awgn_with`].
///
/// # Errors
///
/// Returns a typed [`SpinalError`] for invalid code parameters or beam
/// configuration, before running any trial.
pub fn ber_by_position_awgn(
    cfg: &RatelessConfig,
    snr_db: f64,
    passes: u32,
    trials: u32,
    seed: u64,
) -> Result<BerByPosition, SpinalError> {
    ber_by_position_awgn_with(cfg, snr_db, passes, trials, seed, &SimEngine::serial())
}

/// [`ber_by_position_awgn`] on an explicit [`SimEngine`].
///
/// # Errors
///
/// See [`ber_by_position_awgn`].
pub fn ber_by_position_awgn_with(
    cfg: &RatelessConfig,
    snr_db: f64,
    passes: u32,
    trials: u32,
    seed: u64,
    engine: &SimEngine,
) -> Result<BerByPosition, SpinalError> {
    assert!(passes >= 1, "need at least one pass");
    cfg.beam.validate()?;
    let scenario = BerPositionScenario {
        params: CodeParams::builder()
            .message_bits(cfg.message_bits)
            .k(cfg.k)
            .tail_segments(cfg.tail_segments)
            .seed(derive_seed(seed, 40, 0))
            .build()?,
        hash: cfg.hash,
        mapper: cfg.mapper.clone(),
        beam: cfg.beam,
        channel: AwgnModel {
            snr_db,
            adc_bits: cfg.adc_bits,
            peak: cfg.mapper.peak(),
        },
        passes,
        master_seed: seed,
    };
    let acc = engine.run(&scenario, u64::from(trials), seed);
    let n = cfg.message_bits as usize;
    let per_bit: Vec<f64> = acc
        .errors
        .iter()
        .map(|&e| e as f64 / acc.trials as f64)
        .collect();
    let overall = per_bit.iter().sum::<f64>() / n as f64;
    Ok(BerByPosition {
        per_bit,
        overall,
        trials,
        frame_error_rate: acc.frame_errors as f64 / acc.trials as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rateless::Termination;
    use spinal_core::puncture::AnySchedule;

    fn cfg(tail: u32) -> RatelessConfig {
        RatelessConfig {
            message_bits: 32,
            k: 4,
            tail_segments: tail,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(6),
            schedule: AnySchedule::none(),
            beam: BeamConfig::with_beam(4),
            adc_bits: None,
            max_passes: 100,
            attempt_growth: 1.0,
            termination: Termination::Genie,
        }
    }

    #[test]
    fn errors_concentrate_in_last_bits() {
        // Marginal operating point: B = 4, two passes at 6 dB. Errors
        // exist, and the last half of the message carries more of them —
        // the §4 claim.
        let b = ber_by_position_awgn(&cfg(0), 6.0, 2, 60, 1).unwrap();
        assert!(b.overall > 0.0, "need a lossy operating point");
        assert!(
            b.last_half() > b.first_half(),
            "last-half BER {} !> first-half {}",
            b.last_half(),
            b.first_half()
        );
    }

    #[test]
    fn tail_segments_protect_the_tail() {
        let without = ber_by_position_awgn(&cfg(0), 6.0, 2, 60, 2).unwrap();
        let with = ber_by_position_awgn(&cfg(2), 6.0, 2, 60, 2).unwrap();
        // Tail segments specifically repair the final bits.
        assert!(
            with.last_half() < without.last_half(),
            "tail: {} !< no-tail: {}",
            with.last_half(),
            without.last_half()
        );
    }

    #[test]
    fn per_bit_vector_shape() {
        let b = ber_by_position_awgn(&cfg(0), 20.0, 2, 10, 3).unwrap();
        assert_eq!(b.per_bit.len(), 32);
        assert!(b.per_bit.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert_eq!(b.trials, 10);
    }

    #[test]
    fn clean_channel_no_errors_anywhere() {
        let b = ber_by_position_awgn(&cfg(0), 60.0, 1, 10, 4).unwrap();
        assert_eq!(b.overall, 0.0);
        assert_eq!(b.frame_error_rate, 0.0);
        assert!(b.per_bit.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn sharded_histogram_matches_serial() {
        let serial = ber_by_position_awgn(&cfg(0), 6.0, 2, 40, 5).unwrap();
        let sharded = ber_by_position_awgn_with(
            &cfg(0),
            6.0,
            2,
            40,
            5,
            &SimEngine::with_workers(4).chunk_trials(7),
        )
        .unwrap();
        assert_eq!(serial.per_bit, sharded.per_bit);
        assert_eq!(serial.frame_error_rate, sharded.frame_error_rate);
    }
}
