//! Empirical validation of Theorems 1 and 2.
//!
//! Both theorems have the same shape: BER → 0 (as n → ∞) once the number
//! of passes `L` clears a capacity threshold —
//! `L·[C_awgn(SNR) − ½log₂(πe/6)] > k` for AWGN (Thm. 1) and
//! `L·C_bsc(p) > k` for the BSC (Thm. 2). The harness here measures BER
//! as a function of `L` at fixed channel quality: transmit exactly `L`
//! unpunctured passes, decode once, count wrong message bits. The
//! regenerating binaries (`thm1_awgn`, `thm2_bsc`) print the measured
//! curve next to the theorem's threshold.

use crate::rateless::{BscRatelessConfig, RatelessConfig};
use crate::stats::derive_seed;
use spinal_channel::{AdcQuantizer, AwgnChannel, BscChannel, Channel, Rng};
use spinal_core::decode::{BeamConfig, BeamDecoder, CostModel, DecoderScratch, Observations};
use spinal_core::hash::AnyHash;
use spinal_core::map::{BinaryMapper, Mapper};
use spinal_core::params::CodeParams;
use spinal_core::symbol::Slot;
use spinal_core::{AwgnCost, BitVec, BscCost, Encoder};

/// Measured BER at one pass count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TheoremPoint {
    /// Number of passes transmitted.
    pub passes: u32,
    /// The code rate this corresponds to, `k / L` bits per symbol.
    pub rate: f64,
    /// Measured bit error rate over the message bits.
    pub ber: f64,
    /// Fraction of trials with at least one bit error.
    pub frame_error_rate: f64,
}

/// Transmits exactly `passes` unpunctured passes and decodes once,
/// returning the decoded message. Shared by the theorem and
/// BER-by-position harnesses.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decode_after_passes<M, C, Ch>(
    params: &CodeParams,
    hash: AnyHash,
    mapper: &M,
    cost: C,
    beam: BeamConfig,
    passes: u32,
    message: &BitVec,
    channel: &mut Ch,
    post: impl Fn(M::Symbol) -> M::Symbol,
    scratch: &mut DecoderScratch,
) -> BitVec
where
    M: Mapper,
    C: CostModel<M::Symbol>,
    Ch: Channel<M::Symbol>,
{
    let encoder = Encoder::new(params, hash, mapper.clone(), message)
        .expect("message length validated by caller");
    let mut obs = Observations::new(params.n_segments());
    for pass in 0..passes {
        for t in 0..params.n_segments() {
            let slot = Slot::new(t, pass);
            obs.push(slot, post(channel.transmit(encoder.symbol(slot))));
        }
    }
    BeamDecoder::new(params, hash, mapper.clone(), cost, beam)
        .decode_with_scratch(&obs, scratch)
        .message
}

fn count_bit_errors(a: &BitVec, b: &BitVec) -> usize {
    a.hamming_distance(b)
}

/// Measures the Theorem-1 BER-vs-L curve on AWGN at `snr_db`.
///
/// Uses `cfg`'s code geometry, mapper, beam and ADC settings; the
/// schedule and termination fields are ignored (transmission is exactly
/// `L` full passes).
pub fn thm1_curve(
    cfg: &RatelessConfig,
    snr_db: f64,
    l_values: &[u32],
    trials: u32,
    seed: u64,
) -> Vec<TheoremPoint> {
    l_values
        .iter()
        .map(|&l| {
            assert!(l >= 1, "pass counts start at 1");
            let mut bit_errors = 0usize;
            let mut frame_errors = 0u32;
            let mut scratch = DecoderScratch::new();
            for trial in 0..trials {
                let code_seed = derive_seed(seed, 30 + u64::from(l), u64::from(trial));
                let noise_seed = derive_seed(seed, 130 + u64::from(l), u64::from(trial));
                let msg_seed = derive_seed(seed, 230 + u64::from(l), u64::from(trial));
                let params = CodeParams::builder()
                    .message_bits(cfg.message_bits)
                    .k(cfg.k)
                    .tail_segments(cfg.tail_segments)
                    .seed(code_seed)
                    .build()
                    .expect("invalid config");
                let hash = AnyHash::new(cfg.hash, code_seed);
                let mut rng = Rng::seed_from(msg_seed);
                let message: BitVec = (0..cfg.message_bits).map(|_| rng.bit()).collect();
                let mut channel = AwgnChannel::from_snr_db(snr_db, noise_seed);
                let adc = cfg.adc_bits.map(|b| {
                    AdcQuantizer::new(b, cfg.mapper.peak() + 4.0 * (channel.sigma2() / 2.0).sqrt())
                });
                let decoded = decode_after_passes(
                    &params,
                    hash,
                    &cfg.mapper,
                    AwgnCost,
                    cfg.beam,
                    l,
                    &message,
                    &mut channel,
                    |y| match &adc {
                        Some(q) => q.quantize_symbol(y),
                        None => y,
                    },
                    &mut scratch,
                );
                let e = count_bit_errors(&decoded, &message);
                bit_errors += e;
                frame_errors += u32::from(e > 0);
            }
            TheoremPoint {
                passes: l,
                rate: f64::from(cfg.k) / f64::from(l),
                ber: bit_errors as f64 / (f64::from(trials) * f64::from(cfg.message_bits)),
                frame_error_rate: f64::from(frame_errors) / f64::from(trials),
            }
        })
        .collect()
}

/// Measures the Theorem-2 BER-vs-L curve on a BSC(p).
pub fn thm2_curve(
    cfg: &BscRatelessConfig,
    p: f64,
    l_values: &[u32],
    trials: u32,
    seed: u64,
) -> Vec<TheoremPoint> {
    l_values
        .iter()
        .map(|&l| {
            assert!(l >= 1, "pass counts start at 1");
            let mut bit_errors = 0usize;
            let mut frame_errors = 0u32;
            let mut scratch = DecoderScratch::new();
            for trial in 0..trials {
                let code_seed = derive_seed(seed, 330 + u64::from(l), u64::from(trial));
                let noise_seed = derive_seed(seed, 430 + u64::from(l), u64::from(trial));
                let msg_seed = derive_seed(seed, 530 + u64::from(l), u64::from(trial));
                let params = CodeParams::builder()
                    .message_bits(cfg.message_bits)
                    .k(cfg.k)
                    .tail_segments(cfg.tail_segments)
                    .seed(code_seed)
                    .build()
                    .expect("invalid config");
                let hash = AnyHash::new(cfg.hash, code_seed);
                let mut rng = Rng::seed_from(msg_seed);
                let message: BitVec = (0..cfg.message_bits).map(|_| rng.bit()).collect();
                let mut channel = BscChannel::new(p, noise_seed);
                let decoded = decode_after_passes(
                    &params,
                    hash,
                    &BinaryMapper::new(),
                    BscCost,
                    cfg.beam,
                    l,
                    &message,
                    &mut channel,
                    |y| y,
                    &mut scratch,
                );
                let e = count_bit_errors(&decoded, &message);
                bit_errors += e;
                frame_errors += u32::from(e > 0);
            }
            TheoremPoint {
                passes: l,
                rate: f64::from(cfg.k) / f64::from(l),
                ber: bit_errors as f64 / (f64::from(trials) * f64::from(cfg.message_bits)),
                frame_error_rate: f64::from(frame_errors) / f64::from(trials),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinal_core::hash::HashFamily;
    use spinal_core::map::AnyIqMapper;
    use spinal_core::puncture::AnySchedule;

    fn cfg() -> RatelessConfig {
        RatelessConfig {
            message_bits: 16,
            k: 4,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(6),
            schedule: AnySchedule::none(),
            beam: BeamConfig::with_beam(8),
            adc_bits: None,
            max_passes: 100,
            attempt_growth: 1.0,
            termination: crate::rateless::Termination::Genie,
        }
    }

    #[test]
    fn thm1_ber_decreases_with_passes() {
        // At 5 dB (C ≈ 2.06), k = 4 needs L ≥ 3 by Theorem 1;
        // L = 1 must be lossy, L = 6 essentially clean.
        let pts = thm1_curve(&cfg(), 5.0, &[1, 6], 12, 1);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[0].ber > pts[1].ber,
            "BER must fall with L: {} -> {}",
            pts[0].ber,
            pts[1].ber
        );
        assert!(pts[1].ber < 0.02, "L=6 BER {}", pts[1].ber);
        assert_eq!(pts[0].passes, 1);
        assert!((pts[0].rate - 4.0).abs() < 1e-12);
        assert!((pts[1].rate - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn thm2_ber_decreases_with_passes() {
        let bsc_cfg = BscRatelessConfig::default_k4(16);
        // p = 0.05 (C ≈ 0.71): k = 4 needs L ≥ 6; L = 2 lossy, L = 12 clean.
        let pts = thm2_curve(&bsc_cfg, 0.05, &[2, 12], 12, 2);
        assert!(pts[0].ber > pts[1].ber);
        assert!(pts[1].ber < 0.03, "L=12 BER {}", pts[1].ber);
    }

    #[test]
    fn clean_channels_are_perfect_at_threshold() {
        // Noiseless AWGN: one pass decodes exactly.
        let pts = thm1_curve(&cfg(), 60.0, &[1], 8, 3);
        assert_eq!(pts[0].ber, 0.0);
        assert_eq!(pts[0].frame_error_rate, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = thm1_curve(&cfg(), 5.0, &[2], 6, 9);
        let b = thm1_curve(&cfg(), 5.0, &[2], 6, 9);
        assert_eq!(a, b);
    }
}
