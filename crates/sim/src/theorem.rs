//! Empirical validation of Theorems 1 and 2.
//!
//! Both theorems have the same shape: BER → 0 (as n → ∞) once the number
//! of passes `L` clears a capacity threshold —
//! `L·[C_awgn(SNR) − ½log₂(πe/6)] > k` for AWGN (Thm. 1) and
//! `L·C_bsc(p) > k` for the BSC (Thm. 2). The harness here measures BER
//! as a function of `L` at fixed channel quality: transmit exactly `L`
//! unpunctured passes, decode once, count wrong message bits. The
//! regenerating binaries (`thm1_awgn`, `thm2_bsc`) print the measured
//! curve next to the theorem's threshold.
//!
//! Trials run on the sharded [`SimEngine`] with integer error counters,
//! so results are bit-identical for any worker count *and* chunk size.

use crate::engine::{Accumulate, AwgnModel, BscModel, ChannelModel, Scenario, SimEngine, Trial};
use crate::rateless::{BscRatelessConfig, RatelessConfig};
use crate::stats::derive_seed;
use spinal_channel::{Channel, Rng};
use spinal_core::decode::{BeamConfig, BeamDecoder, CostModel, DecoderScratch, Observations};
use spinal_core::hash::{AnyHash, HashFamily};
use spinal_core::map::{BinaryMapper, Mapper};
use spinal_core::params::CodeParams;
use spinal_core::symbol::Slot;
use spinal_core::{AwgnCost, BitVec, BscCost, DecodeResult, Encoder, SpinalError};

/// Measured BER at one pass count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TheoremPoint {
    /// Number of passes transmitted.
    pub passes: u32,
    /// The code rate this corresponds to, `k / L` bits per symbol.
    pub rate: f64,
    /// Measured bit error rate over the message bits.
    pub ber: f64,
    /// Fraction of trials with at least one bit error.
    pub frame_error_rate: f64,
}

/// Per-worker reusable state for fixed-pass decode trials (shared with
/// the BER-by-position harness).
pub(crate) struct FixedPassWorker<M: Mapper> {
    encoder: Option<Encoder<AnyHash, M>>,
    obs: Observations<M::Symbol>,
    scratch: DecoderScratch,
    result: DecodeResult,
    message: BitVec,
    pass_buf: Vec<M::Symbol>,
}

impl<M: Mapper> FixedPassWorker<M> {
    /// `(decoded hypothesis, true message)` of the last trial.
    pub(crate) fn decoded_and_truth(&self) -> (&BitVec, &BitVec) {
        (&self.result.message, &self.message)
    }

    pub(crate) fn new(n_segments: u32) -> Self {
        Self {
            encoder: None,
            obs: Observations::new(n_segments),
            scratch: DecoderScratch::new(),
            result: DecodeResult::default(),
            message: BitVec::new(),
            pass_buf: Vec::new(),
        }
    }
}

/// One fixed-pass trial: draw a message, transmit exactly `passes`
/// unpunctured passes of it through `channel`, decode once. Afterwards
/// `worker.message` holds the truth and `worker.result.message` the
/// decoded hypothesis. All buffers are reused; the steady state
/// allocates nothing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fixed_pass_trial<M, C, CM>(
    params: &CodeParams,
    hash_family: HashFamily,
    mapper: &M,
    cost: &C,
    beam: BeamConfig,
    channel_model: &CM,
    passes: u32,
    seeds: (u64, u64, u64),
    worker: &mut FixedPassWorker<M>,
) where
    M: Mapper,
    C: CostModel<M::Symbol>,
    CM: ChannelModel<M::Symbol>,
{
    let (code_seed, noise_seed, msg_seed) = seeds;
    // Keep params.seed() in lockstep with the per-trial hash seed.
    let params = params.reseeded(code_seed);
    let FixedPassWorker {
        encoder,
        obs,
        scratch,
        result,
        message,
        pass_buf,
    } = worker;
    let mut rng = Rng::seed_from(msg_seed);
    message.clear();
    for _ in 0..params.message_bits() {
        message.push(rng.bit());
    }
    let hash = AnyHash::new(hash_family, code_seed);
    match encoder {
        Some(enc) => enc
            .rebind(&params, hash, message)
            .expect("message length matches params"),
        None => {
            *encoder = Some(
                Encoder::new(&params, hash, mapper.clone(), message)
                    .expect("message length matches params"),
            )
        }
    }
    let enc = encoder.as_ref().expect("bound above");
    let mut channel = channel_model.make(noise_seed);
    obs.clear();
    for pass in 0..passes {
        enc.pass_into(pass, pass_buf);
        for (t, &sym) in pass_buf.iter().enumerate() {
            obs.push(Slot::new(t as u32, pass), channel.transmit(sym));
        }
    }
    BeamDecoder::new(&params, hash, mapper.clone(), cost.clone(), beam)
        .expect("beam config validated by curve entry point")
        .decode_into(obs, scratch, result);
}

/// Integer error counters — merge order cannot matter.
#[derive(Clone, Copy, Debug, Default)]
struct ErrorAcc {
    trials: u64,
    bit_errors: u64,
    frame_errors: u64,
}

impl Accumulate for ErrorAcc {
    fn merge(&mut self, o: Self) {
        self.trials += o.trials;
        self.bit_errors += o.bit_errors;
        self.frame_errors += o.frame_errors;
    }
}

/// The fixed-`L` BER measurement behind both theorem harnesses.
struct TheoremScenario<M: Mapper, C: CostModel<M::Symbol>, CM: ChannelModel<M::Symbol>> {
    params: CodeParams,
    hash: HashFamily,
    mapper: M,
    cost: C,
    beam: BeamConfig,
    channel: CM,
    passes: u32,
    /// `derive_seed(master, stream_base + s, trial)` for s = code,
    /// noise, message — matching the pre-engine harness streams.
    stream_base: (u64, u64, u64),
    master_seed: u64,
}

impl<M, C, CM> Scenario for TheoremScenario<M, C, CM>
where
    M: Mapper,
    C: CostModel<M::Symbol>,
    CM: ChannelModel<M::Symbol>,
    M::Symbol: Send,
{
    type Worker = FixedPassWorker<M>;
    type Acc = ErrorAcc;

    fn make_worker(&self) -> FixedPassWorker<M> {
        FixedPassWorker::new(self.params.n_segments())
    }

    fn empty_acc(&self) -> ErrorAcc {
        ErrorAcc::default()
    }

    fn run_trial(&self, trial: Trial, w: &mut FixedPassWorker<M>, acc: &mut ErrorAcc) {
        let seeds = (
            derive_seed(self.master_seed, self.stream_base.0, trial.index),
            derive_seed(self.master_seed, self.stream_base.1, trial.index),
            derive_seed(self.master_seed, self.stream_base.2, trial.index),
        );
        fixed_pass_trial(
            &self.params,
            self.hash,
            &self.mapper,
            &self.cost,
            self.beam,
            &self.channel,
            self.passes,
            seeds,
            w,
        );
        let errors = w.result.message.hamming_distance(&w.message);
        acc.trials += 1;
        acc.bit_errors += errors as u64;
        acc.frame_errors += u64::from(errors > 0);
    }
}

fn curve_point(acc: ErrorAcc, k: u32, l: u32, message_bits: u32) -> TheoremPoint {
    TheoremPoint {
        passes: l,
        rate: f64::from(k) / f64::from(l),
        ber: acc.bit_errors as f64 / (acc.trials as f64 * f64::from(message_bits)),
        frame_error_rate: acc.frame_errors as f64 / acc.trials as f64,
    }
}

/// Measures the Theorem-1 BER-vs-L curve on AWGN at `snr_db`.
///
/// Uses `cfg`'s code geometry, mapper, beam and ADC settings; the
/// schedule and termination fields are ignored (transmission is exactly
/// `L` full passes). Serial engine; see [`thm1_curve_with`].
///
/// # Errors
///
/// Returns a typed [`SpinalError`] for invalid code parameters or beam
/// configuration, before running any trial.
pub fn thm1_curve(
    cfg: &RatelessConfig,
    snr_db: f64,
    l_values: &[u32],
    trials: u32,
    seed: u64,
) -> Result<Vec<TheoremPoint>, SpinalError> {
    thm1_curve_with(cfg, snr_db, l_values, trials, seed, &SimEngine::serial())
}

/// [`thm1_curve`] on an explicit [`SimEngine`].
///
/// # Errors
///
/// See [`thm1_curve`].
pub fn thm1_curve_with(
    cfg: &RatelessConfig,
    snr_db: f64,
    l_values: &[u32],
    trials: u32,
    seed: u64,
    engine: &SimEngine,
) -> Result<Vec<TheoremPoint>, SpinalError> {
    cfg.beam.validate()?;
    l_values
        .iter()
        .map(|&l| {
            assert!(l >= 1, "pass counts start at 1");
            let scenario = TheoremScenario {
                params: CodeParams::builder()
                    .message_bits(cfg.message_bits)
                    .k(cfg.k)
                    .tail_segments(cfg.tail_segments)
                    .seed(derive_seed(seed, 30 + u64::from(l), 0))
                    .build()?,
                hash: cfg.hash,
                mapper: cfg.mapper.clone(),
                cost: AwgnCost,
                beam: cfg.beam,
                channel: AwgnModel {
                    snr_db,
                    adc_bits: cfg.adc_bits,
                    peak: cfg.mapper.peak(),
                },
                passes: l,
                stream_base: (30 + u64::from(l), 130 + u64::from(l), 230 + u64::from(l)),
                master_seed: seed,
            };
            let acc = engine.run(&scenario, u64::from(trials), seed);
            Ok(curve_point(acc, cfg.k, l, cfg.message_bits))
        })
        .collect()
}

/// Measures the Theorem-2 BER-vs-L curve on a BSC(p). Serial engine; see
/// [`thm2_curve_with`].
///
/// # Errors
///
/// Returns a typed [`SpinalError`] for invalid code parameters, beam
/// configuration, or crossover probability, before running any trial.
pub fn thm2_curve(
    cfg: &BscRatelessConfig,
    p: f64,
    l_values: &[u32],
    trials: u32,
    seed: u64,
) -> Result<Vec<TheoremPoint>, SpinalError> {
    thm2_curve_with(cfg, p, l_values, trials, seed, &SimEngine::serial())
}

/// [`thm2_curve`] on an explicit [`SimEngine`].
///
/// # Errors
///
/// See [`thm2_curve`].
pub fn thm2_curve_with(
    cfg: &BscRatelessConfig,
    p: f64,
    l_values: &[u32],
    trials: u32,
    seed: u64,
    engine: &SimEngine,
) -> Result<Vec<TheoremPoint>, SpinalError> {
    cfg.beam.validate()?;
    if !(0.0..=1.0).contains(&p) {
        return Err(SpinalError::Probability {
            name: "crossover",
            value: p,
        });
    }
    l_values
        .iter()
        .map(|&l| {
            assert!(l >= 1, "pass counts start at 1");
            let scenario = TheoremScenario {
                params: CodeParams::builder()
                    .message_bits(cfg.message_bits)
                    .k(cfg.k)
                    .tail_segments(cfg.tail_segments)
                    .seed(derive_seed(seed, 330 + u64::from(l), 0))
                    .build()?,
                hash: cfg.hash,
                mapper: BinaryMapper::new(),
                cost: BscCost,
                beam: cfg.beam,
                channel: BscModel { p },
                passes: l,
                stream_base: (330 + u64::from(l), 430 + u64::from(l), 530 + u64::from(l)),
                master_seed: seed,
            };
            let acc = engine.run(&scenario, u64::from(trials), seed);
            Ok(curve_point(acc, cfg.k, l, cfg.message_bits))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinal_core::map::AnyIqMapper;
    use spinal_core::puncture::AnySchedule;

    fn cfg() -> RatelessConfig {
        RatelessConfig {
            message_bits: 16,
            k: 4,
            tail_segments: 0,
            hash: HashFamily::Lookup3,
            mapper: AnyIqMapper::linear(6),
            schedule: AnySchedule::none(),
            beam: BeamConfig::with_beam(8),
            adc_bits: None,
            max_passes: 100,
            attempt_growth: 1.0,
            termination: crate::rateless::Termination::Genie,
        }
    }

    #[test]
    fn thm1_ber_decreases_with_passes() {
        // At 5 dB (C ≈ 2.06), k = 4 needs L ≥ 3 by Theorem 1;
        // L = 1 must be lossy, L = 6 essentially clean.
        let pts = thm1_curve(&cfg(), 5.0, &[1, 6], 12, 1).unwrap();
        assert_eq!(pts.len(), 2);
        assert!(
            pts[0].ber > pts[1].ber,
            "BER must fall with L: {} -> {}",
            pts[0].ber,
            pts[1].ber
        );
        assert!(pts[1].ber < 0.02, "L=6 BER {}", pts[1].ber);
        assert_eq!(pts[0].passes, 1);
        assert!((pts[0].rate - 4.0).abs() < 1e-12);
        assert!((pts[1].rate - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn thm2_ber_decreases_with_passes() {
        let bsc_cfg = BscRatelessConfig::default_k4(16);
        // p = 0.05 (C ≈ 0.71): k = 4 needs L ≥ 6; L = 2 lossy, L = 12 clean.
        let pts = thm2_curve(&bsc_cfg, 0.05, &[2, 12], 12, 2).unwrap();
        assert!(pts[0].ber > pts[1].ber);
        assert!(pts[1].ber < 0.03, "L=12 BER {}", pts[1].ber);
    }

    #[test]
    fn clean_channels_are_perfect_at_threshold() {
        // Noiseless AWGN: one pass decodes exactly.
        let pts = thm1_curve(&cfg(), 60.0, &[1], 8, 3).unwrap();
        assert_eq!(pts[0].ber, 0.0);
        assert_eq!(pts[0].frame_error_rate, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = thm1_curve(&cfg(), 5.0, &[2], 6, 9).unwrap();
        let b = thm1_curve(&cfg(), 5.0, &[2], 6, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_does_not_change_curves() {
        // Integer accumulators: identical for any workers AND chunking.
        let serial = thm1_curve(&cfg(), 5.0, &[1, 4], 16, 11).unwrap();
        let sharded = thm1_curve_with(
            &cfg(),
            5.0,
            &[1, 4],
            16,
            11,
            &SimEngine::with_workers(8).chunk_trials(3),
        )
        .unwrap();
        assert_eq!(serial, sharded);
        let s2 = thm2_curve(&BscRatelessConfig::default_k4(16), 0.05, &[3], 12, 4).unwrap();
        let p2 = thm2_curve_with(
            &BscRatelessConfig::default_k4(16),
            0.05,
            &[3],
            12,
            4,
            &SimEngine::with_workers(2).chunk_trials(5),
        )
        .unwrap();
        assert_eq!(s2, p2);
    }
}
