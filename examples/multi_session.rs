//! Multi-session decoding: one scheduler core serving 32 concurrent
//! receivers over mixed links.
//!
//! The deployment story of §1 — a base station decoding many
//! spinal-coded flows at once. Two [`MultiDecoder`] pools (one per
//! symbol type) serve 16 AWGN flows at staggered SNRs and 16 BSC flows
//! at staggered crossover probabilities. Every drive runs the due
//! attempts of each same-shape cohort fused through one shared scratch,
//! retries resume from per-session checkpoints, and the AWGN pool runs
//! under a deliberately tight checkpoint-memory budget to demonstrate
//! eviction (which changes work, never results).
//!
//! Run with: `cargo run --release --example multi_session`

use spinal_codes::channel::{AwgnChannel, BscChannel, Channel};
use spinal_codes::{
    AnyTerminator, BeamConfig, BitVec, MultiConfig, MultiDecoder, Poll, RxConfig, SessionEvent,
    SpinalCode,
};
use spinal_core::decode::{AwgnCost, BscCost};
use spinal_core::hash::Lookup3;
use spinal_core::map::{BinaryMapper, LinearMapper};
use spinal_core::puncture::{NoPuncture, StridedPuncture};
use spinal_core::session::{RxSession, TxSession};

const FLOWS_PER_LINK: usize = 16;
const MESSAGE_BITS: u32 = 96;

/// One flow's sender side plus its channel.
struct AwgnFlow {
    tx: TxSession<Lookup3, LinearMapper, StridedPuncture>,
    channel: AwgnChannel,
    snr_db: f64,
}

struct BscFlow {
    tx: TxSession<Lookup3, BinaryMapper, NoPuncture>,
    channel: BscChannel,
    p: f64,
}

fn message(i: u64) -> BitVec {
    let mut m = BitVec::new();
    for b in 0..u64::from(MESSAGE_BITS) {
        m.push(
            (i + 1)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left((b % 61) as u32)
                & 1
                == 1,
        );
    }
    m
}

fn main() {
    // --- AWGN pool: 16 flows from 6 to 21 dB, tight checkpoint budget.
    let mut awgn_pool: MultiDecoder<Lookup3, LinearMapper, AwgnCost, StridedPuncture> =
        MultiDecoder::new(MultiConfig {
            checkpoint_budget: 128 * 1024,
            ..MultiConfig::default()
        });
    let mut awgn_flows = Vec::new();
    let mut awgn_ids = Vec::new();
    for i in 0..FLOWS_PER_LINK as u64 {
        let snr_db = 6.0 + i as f64;
        let msg = message(i);
        let code = SpinalCode::fig2(MESSAGE_BITS, 100 + i).unwrap();
        awgn_flows.push(AwgnFlow {
            tx: code.tx_session(&msg).unwrap(),
            channel: AwgnChannel::from_snr_db(snr_db, 900 + i),
            snr_db,
        });
        let rx = code
            .awgn_rx_session(
                AnyTerminator::genie(msg),
                RxConfig {
                    max_symbols: 4000,
                    ..RxConfig::default()
                },
            )
            .unwrap();
        awgn_ids.push(awgn_pool.insert(rx).unwrap());
    }

    // --- BSC pool: 16 flows from p = 0.01 to 0.08, deep-first order.
    let mut bsc_pool: MultiDecoder<Lookup3, BinaryMapper, BscCost, NoPuncture> =
        MultiDecoder::new(MultiConfig::default());
    let mut bsc_flows = Vec::new();
    let mut bsc_ids = Vec::new();
    for i in 0..FLOWS_PER_LINK as u64 {
        let p = 0.01 + 0.0045 * i as f64;
        let msg = message(100 + i);
        let code = SpinalCode::bsc(MESSAGE_BITS, 4, 200 + i).unwrap();
        bsc_flows.push(BscFlow {
            tx: TxSession::new(code.encoder(&msg).unwrap(), NoPuncture::new()),
            channel: BscChannel::new(p, 700 + i),
            p,
        });
        let rx = RxSession::new(
            code.bsc_beam_decoder(BeamConfig::paper_default()).unwrap(),
            NoPuncture::new(),
            AnyTerminator::genie(msg),
            RxConfig {
                max_symbols: 6000,
                ..RxConfig::default()
            },
        )
        .unwrap();
        bsc_ids.push(bsc_pool.insert(rx).unwrap());
    }

    // --- Drive both pools round-robin: one symbol per live flow per
    // round (per-symbol feedback), one drive per pool per round.
    let mut events: Vec<SessionEvent> = Vec::new();
    let mut bsc_events: Vec<SessionEvent> = Vec::new();
    let mut sub = Vec::new();
    let mut live = 2 * FLOWS_PER_LINK;
    let mut round = 0u64;
    while live > 0 {
        round += 1;
        for (flow, &id) in awgn_flows.iter_mut().zip(&awgn_ids) {
            if awgn_pool.get(id).unwrap().is_finished() {
                continue;
            }
            // Sub-pass granularity for the strided AWGN flows.
            flow.tx.next_subpass_into(&mut sub);
            if sub.is_empty() {
                continue;
            }
            let noisy: Vec<_> = sub.iter().map(|&(_, x)| flow.channel.transmit(x)).collect();
            awgn_pool.ingest(id, &noisy).unwrap();
        }
        awgn_pool.drive_into(&mut events);
        for ev in &events {
            if let Some(Poll::Decoded {
                symbols_used,
                attempts,
            }) = ev.poll()
            {
                let lane = awgn_ids.iter().position(|&i| i == ev.id).unwrap();
                println!(
                    "awgn {:>5.1} dB  decoded: {:>4} symbols, {:>3} attempts, rate {:.2} b/s",
                    awgn_flows[lane].snr_db,
                    symbols_used,
                    attempts,
                    f64::from(MESSAGE_BITS) / symbols_used as f64,
                );
                live -= 1;
            }
        }

        for (flow, &id) in bsc_flows.iter_mut().zip(&bsc_ids) {
            if bsc_pool.get(id).unwrap().is_finished() {
                continue;
            }
            let (_slot, x) = flow.tx.next_symbol();
            bsc_pool.ingest(id, &[flow.channel.transmit(x)]).unwrap();
        }
        bsc_pool.drive_into(&mut bsc_events);
        for ev in &bsc_events {
            if let Some(Poll::Decoded {
                symbols_used,
                attempts,
            }) = ev.poll()
            {
                let lane = bsc_ids.iter().position(|&i| i == ev.id).unwrap();
                println!(
                    "bsc  p={:.3}  decoded: {:>4} symbols, {:>3} attempts, rate {:.2} b/s",
                    bsc_flows[lane].p,
                    symbols_used,
                    attempts,
                    f64::from(MESSAGE_BITS) / symbols_used as f64,
                );
                live -= 1;
            }
        }
        assert!(round < 20_000, "mixed fleet must drain");
    }

    // Pool-level accounting: the budget kept AWGN checkpoint memory
    // bounded by evicting cold stores (results were never affected).
    println!(
        "\nawgn pool: {} rounds, {} evictions, {} KiB checkpoint memory (budget 128 KiB)",
        awgn_pool.rounds(),
        awgn_pool.evictions(),
        awgn_pool.checkpoint_bytes() / 1024,
    );
    println!(
        "bsc pool:  {} rounds, {} KiB checkpoint memory (unbounded)",
        bsc_pool.rounds(),
        bsc_pool.checkpoint_bytes() / 1024,
    );
    let resumed: u64 = bsc_ids
        .iter()
        .map(|&id| bsc_pool.get(id).unwrap().checkpoints().levels_resumed())
        .sum();
    let run: u64 = bsc_ids
        .iter()
        .map(|&id| bsc_pool.get(id).unwrap().checkpoints().levels_run())
        .sum();
    println!(
        "bsc pool:  {:.1}% of tree levels resumed from checkpoints",
        100.0 * resumed as f64 / (resumed + run) as f64
    );
}
