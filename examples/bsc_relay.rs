//! Spinal codes over a binary channel, with practical CRC termination.
//!
//! §1: when PHY modifications are infeasible, "one can still use spinal
//! codes over commodity PHY hardware" by transmitting coded *bits* over
//! whatever modulation exists — a binary symmetric channel end to end.
//! This example relays a text message over a BSC with the receiver using
//! a real CRC-16 (not a genie) to decide when it has decoded.
//!
//! ```text
//! cargo run --release --example bsc_relay [-- <flip_probability>]
//! ```

use spinal_codes::channel::{BscChannel, Channel};
use spinal_codes::info::bsc_capacity;
use spinal_codes::{
    frame_encode, BeamConfig, BitVec, Checksum, CrcTerminator, SpinalCode, Terminator,
};

fn main() {
    let p: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("flip probability must be a number"))
        .unwrap_or(0.05);

    let text = b"spinal!!";
    let payload = BitVec::from_bytes(text);
    let framed = frame_encode(&payload, Checksum::Crc16); // 64 + 16 bits
    println!(
        "payload   : {:?} ({} bits + CRC-16)",
        String::from_utf8_lossy(text),
        payload.len()
    );
    println!(
        "channel   : BSC(p = {p}), capacity {:.3} bits/use",
        bsc_capacity(p)
    );

    let code = SpinalCode::bsc(framed.len() as u32, 4, 77).expect("80 bits, k=4");
    let encoder = code.encoder(&framed).expect("length matches");
    let decoder = code
        .bsc_beam_decoder(BeamConfig::with_beam(16))
        .expect("valid decoder config");
    let terminator = CrcTerminator::new(Checksum::Crc16);
    let mut channel = BscChannel::new(p, 3);
    let mut obs = code.observations();

    let mut sent = 0u32;
    for (slot, bit) in encoder.stream(code.schedule()).take(40_000) {
        obs.push(slot, channel.transmit(bit));
        sent += 1;
        // Attempt a decode at pass boundaries (every n/k coded bits).
        if !sent.is_multiple_of(code.params().n_segments()) {
            continue;
        }
        let result = decoder.decode(&obs);
        if let Some(decoded_payload) = terminator.accept(&result) {
            let bytes = decoded_payload.to_bytes();
            println!(
                "decoded after {sent} coded bits ({} flipped by the channel)",
                channel.flips()
            );
            println!(
                "rate      : {:.3} payload bits per channel use",
                payload.len() as f64 / f64::from(sent)
            );
            println!("recovered : {:?}", String::from_utf8_lossy(&bytes));
            assert_eq!(decoded_payload, payload, "CRC accepted a wrong payload?!");
            return;
        }
    }
    println!("gave up after {sent} coded bits");
}
