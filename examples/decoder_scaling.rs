//! Graceful scale-down, hands on: the same received symbols decoded with
//! beam widths from 1 to 256.
//!
//! §3.2's claim is that the practical decoder "can operate with any
//! amount of computation resource and attempts to achieve the best
//! performance using the given resources." Here a message is received at
//! a marginal SNR and handed to decoders of growing B: small beams fail
//! or limp, larger beams recover the message, and the work grows
//! linearly with B.
//!
//! ```text
//! cargo run --release --example decoder_scaling
//! ```

use spinal_codes::channel::{AwgnChannel, Channel};
use spinal_codes::{AwgnCost, LinearMapper, NoPuncture, SpinalCode};
use spinal_codes::{BeamConfig, BeamDecoder, BitVec, CodeParams, Lookup3};

fn main() {
    let noise_seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(11);
    let snr_db = 4.0;
    let passes = 2u32;
    // A k = 4 code over 32 bits: 8 tree levels, 16 children each — deep
    // enough that a greedy (B = 1) decoder loses the true path while a
    // modest beam keeps it.
    let params = CodeParams::builder()
        .message_bits(32)
        .k(4)
        .seed(42)
        .build()
        .expect("valid");
    let code = SpinalCode::new(
        params,
        Lookup3::new(42),
        LinearMapper::new(6),
        NoPuncture::new(),
    );
    let message = BitVec::from_bytes(&[0x1b, 0xad, 0xb0, 0x57]);
    let encoder = code.encoder(&message).expect("length matches");

    // Receive `passes` full passes once; every decoder sees the same data.
    let mut channel = AwgnChannel::from_snr_db(snr_db, noise_seed);
    let mut obs = code.observations();
    for pass in 0..passes {
        for t in 0..code.params().n_segments() {
            let slot = spinal_codes::Slot::new(t, pass);
            obs.push(slot, channel.transmit(encoder.symbol(slot)));
        }
    }
    println!(
        "m=32, k=4, c=6; {passes} passes received at {snr_db} dB ({} symbols)",
        obs.len()
    );
    println!(
        "{:>5} {:>10} {:>14} {:>9}",
        "B", "decoded?", "tree edges", "cost"
    );

    for b in [1usize, 2, 4, 8, 16, 64, 256] {
        let decoder = BeamDecoder::new(
            code.params(),
            Lookup3::new(42),
            LinearMapper::new(6),
            AwgnCost,
            BeamConfig::with_beam(b),
        )
        .unwrap();
        let result = decoder.decode(&obs);
        println!(
            "{b:>5} {:>10} {:>14} {:>9.3}",
            if result.message == message {
                "yes"
            } else {
                "NO"
            },
            result.stats.nodes_expanded,
            result.cost
        );
    }
    println!("\nWork grows ~linearly with B; success arrives at small B (here B = 4) and saturates — the paper's graceful scale-down.");
}
