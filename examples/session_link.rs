//! A full streaming session over a noisy channel: the rateless protocol
//! loop as a real receiver would run it.
//!
//! The sender opens a [`TxSession`] for a CRC-framed payload and streams
//! symbols; the receiver pushes each received symbol into an
//! [`RxSession`] and polls. No genie anywhere: termination is the CRC
//! check on the beam's candidates, exactly the paper's §3.2 receiver.
//! Every decode retry is incremental — levels below the newest symbol's
//! spine position are resumed from checkpoints instead of re-searched —
//! and the checkpoint counters printed at the end show how much of the
//! tree work the session skipped.
//!
//! ```text
//! cargo run --release --example session_link [-- <snr_db>]
//! ```

use spinal_codes::channel::{AwgnChannel, Channel};
use spinal_codes::info::awgn_capacity_db;
use spinal_codes::{frame_encode, AnyTerminator, BitVec, Checksum, Poll, RxConfig, SpinalCode};

fn main() {
    let snr_db: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("SNR must be a number"))
        .unwrap_or(12.0);

    // 24 payload bits + CRC-16 = 40 framed bits, the spinal message.
    let payload = BitVec::from_bytes(&[0xca, 0xfe, 0x42]);
    let framed = frame_encode(&payload, Checksum::Crc16);
    let code = SpinalCode::fig2(framed.len() as u32, 2026).expect("valid fig2 configuration");

    println!("payload   : {payload:?}");
    println!(
        "framing   : CRC-16 -> {} framed bits, k=8, c=10, stride-8 puncturing",
        framed.len()
    );
    println!(
        "channel   : AWGN at {snr_db} dB (capacity {:.2} bits/symbol)",
        awgn_capacity_db(snr_db)
    );

    // Sender and receiver halves of the session.
    let mut tx = code.tx_session(&framed).expect("message matches code");
    let mut rx = code
        .awgn_rx_session(
            AnyTerminator::crc(Checksum::Crc16),
            RxConfig {
                max_symbols: 5000,
                ..RxConfig::default()
            },
        )
        .expect("valid session configuration");
    let mut channel = AwgnChannel::from_snr_db(snr_db, 7);

    // The protocol loop: one symbol per feedback round.
    loop {
        let (_slot, x) = tx.next_symbol();
        match rx.ingest(&[channel.transmit(x)]).expect("session open") {
            Poll::NeedMore { .. } => continue,
            Poll::Decoded {
                symbols_used,
                attempts,
            } => {
                let decoded = rx.payload().expect("decoded session has a payload");
                println!(
                    "decoded after {symbols_used} symbols / {attempts} attempts -> rate {:.2} payload bits/symbol",
                    payload.len() as f64 / symbols_used as f64
                );
                println!(
                    "payload ok : {} (CRC-verified, no genie)",
                    *decoded == payload
                );
                let ckpt = rx.checkpoints();
                let total = ckpt.levels_resumed() + ckpt.levels_run();
                println!(
                    "retry work : {} of {} tree levels resumed from checkpoints ({:.0}%)",
                    ckpt.levels_resumed(),
                    total,
                    100.0 * ckpt.levels_resumed() as f64 / total.max(1) as f64
                );
                break;
            }
            Poll::Exhausted { symbols_used } => {
                println!("gave up after {symbols_used} symbols (SNR too low for this budget)");
                break;
            }
        }
    }

    // Bonus: the sender can replay any suffix after a NACK — position
    // marks are O(1), replay costs the same hashes as first transmission.
    let mark = tx.position();
    let a: Vec<_> = (0..4).map(|_| tx.next_symbol()).collect();
    tx.seek(mark);
    let b: Vec<_> = (0..4).map(|_| tx.next_symbol()).collect();
    assert_eq!(a, b, "replay after NACK is bit-identical");
    println!("replay     : 4 symbols after a simulated NACK matched exactly");
}
