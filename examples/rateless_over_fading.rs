//! Rateless operation over a fading channel — the paper's motivating
//! scenario (§1: conditions "vary with time, even at time-scales shorter
//! than a single packet transmission time").
//!
//! Frames are sent back-to-back over Rayleigh block fading: each frame
//! experiences its own channel gain `|h|²`, so its effective SNR swings
//! by tens of dB. The sender never learns the gain and never adapts —
//! yet each frame lands at a rate tracking its own instantaneous
//! capacity, which is exactly the implicit adaptation a rateless code
//! promises.
//!
//! ```text
//! cargo run --release --example rateless_over_fading
//! ```

use spinal_codes::channel::{apply, equalize, AwgnChannel, Channel, RayleighBlockFading, Rng};
use spinal_codes::info::awgn_capacity_db;
use spinal_codes::{BeamConfig, BitVec, SpinalCode};

fn main() {
    let mean_snr_db = 20.0;
    let frames = 12;
    println!("Rayleigh block fading, mean SNR {mean_snr_db} dB, {frames} frames");
    println!(
        "{:>5} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "frame", "|h|^2(dB)", "eff.SNR", "symbols", "rate", "capacity"
    );

    let mut fading = RayleighBlockFading::new(1, 11); // one gain per frame
    let mut rng = Rng::seed_from(5);

    for frame in 0..frames {
        // Fresh code seed per frame (sender and receiver share it).
        let code = SpinalCode::fig2(24, 0x1000 + frame).expect("valid");
        let message: BitVec = (0..24).map(|_| rng.bit()).collect();
        let encoder = code.encoder(&message).expect("length matches");
        let decoder = code
            .awgn_beam_decoder(BeamConfig::paper_default())
            .expect("valid decoder config");

        // The whole frame sees one gain (slow / block fading).
        let h = fading.next_gain();
        let eff_snr_db = mean_snr_db + 10.0 * h.power().log10();
        let mut channel = AwgnChannel::from_snr_db(mean_snr_db, 900 + frame);
        let mut obs = code.observations();

        let mut sent = 0u32;
        let mut decoded = false;
        for (slot, x) in encoder.stream(code.schedule()).take(4000) {
            // y = h·x + w; the coherent receiver equalizes by h.
            let y = channel.transmit(apply(h, x));
            obs.push(slot, equalize(h, y));
            sent += 1;
            if decoder.decode(&obs).message == message {
                decoded = true;
                break;
            }
        }
        let rate = if decoded { 24.0 / f64::from(sent) } else { 0.0 };
        println!(
            "{frame:>5} {:>9.1} {:>9.1} {:>8} {:>8.2} {:>9.2}",
            10.0 * h.power().log10(),
            eff_snr_db,
            sent,
            rate,
            awgn_capacity_db(eff_snr_db),
        );
    }
    println!("\nNo sender-side adaptation happened: deep fades simply took more symbols.");
}
