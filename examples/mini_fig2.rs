//! A miniature Figure 2 that runs in seconds: the spinal code's achieved
//! rate against the Shannon bound and one LDPC baseline, over five SNR
//! points.
//!
//! For the full figure (50 dB span, all eight LDPC configurations, PPV
//! bound and crossover check) run the bench binary instead:
//! `cargo run -p spinal-bench --release --bin fig2`.
//!
//! ```text
//! cargo run --release --example mini_fig2
//! ```

use spinal_codes::info::awgn_capacity_db;
use spinal_codes::ldpc::LdpcRate;
use spinal_codes::modem::Modulation;
use spinal_codes::sim::rateless::{run_awgn, RatelessConfig};
use spinal_codes::sim::{derive_seed, run_ldpc_awgn, LdpcConfig};

fn main() {
    let snrs = [-5.0, 5.0, 15.0, 25.0, 35.0];
    let trials = 25;
    let mut spinal_cfg = RatelessConfig::fig2();
    spinal_cfg.max_passes = 250;
    let ldpc_cfg = LdpcConfig::paper(LdpcRate::R34, Modulation::Qam16); // nominal 3.0 b/s

    println!("mini Figure 2 — {trials} trials/point (see bench bin `fig2` for the real one)");
    println!(
        "{:>6} {:>9} {:>9} {:>16}",
        "SNR", "Shannon", "Spinal", "LDPC 3/4 QAM-16"
    );
    for (i, &snr) in snrs.iter().enumerate() {
        let spinal = run_awgn(&spinal_cfg, snr, trials, derive_seed(1, 0, i as u64))
            .expect("valid experiment config")
            .rate_mean();
        let ldpc = run_ldpc_awgn(&ldpc_cfg, snr, trials, derive_seed(1, 1, i as u64)).goodput();
        println!(
            "{snr:>6.1} {:>9.2} {:>9.2} {:>16.2}",
            awgn_capacity_db(snr),
            spinal,
            ldpc
        );
    }
    println!("\nShapes to notice: spinal tracks capacity everywhere; the fixed-rate LDPC");
    println!("curve is zero below its waterfall and flat at 3.0 above it.");
}
