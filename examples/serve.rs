//! The codec service end to end: a sharded [`Server`] and a
//! [`ServeClient`] talking the versioned wire protocol over the
//! deterministic in-process loopback, with link faults in the way —
//! then the same dialogue again with the server killed and
//! warm-restarted mid-stream, proving the restart invisible.
//!
//! The client CRC-frames a payload, negotiates the session with HELLO
//! (shape, symbol budget, NACK feedback), then streams DATA frames
//! whose symbols pass through a composable [`FaultPlan`] — drops and
//! duplicates here — before hitting the wire. The server detects the
//! sequence gaps the drops create, NACKs, and the client seeks its
//! transmitter back and replays; the dialogue ends with the server
//! shipping the decoded (CRC-verified, CRC-stripped) payload back.
//!
//! The second run kills the whole server mid-stream: the state is
//! imaged with [`Server::snapshot_into`], the server dropped (severing
//! the transport exactly like a process death severs its sockets),
//! rebuilt with [`Server::restore`], and the client re-attached through
//! the ordinary RESUME path with the token from its HELLO-ACK. The
//! killed run must conclude with the *same* verdict — same
//! `symbols_used`, same `attempts` — as the uninterrupted one.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use spinal_codes::link::{FaultPlan, FeedbackMode, LinkFault};
use spinal_codes::serve::{
    loopback_pair, loopback_pair_chunked, ClientConfig, ClientOutcome, LoopbackTransport,
    ServeClient, ServeConfig, Server,
};
use spinal_codes::BitVec;

fn payload() -> BitVec {
    BitVec::from_bytes(&[0xca, 0xfe, 0x42, 0x07])
}

fn serve_cfg() -> ServeConfig {
    // A 4-shard event loop; connections spread across shards by stable
    // hash, each shard owning its own decoder pool. The resume secret
    // is pinned: snapshots demand it (tokens minted under a
    // process-random secret would verify for nobody after a restart).
    ServeConfig {
        shards: 4,
        resume_secret: Some(0x5EED_2011),
        ..ServeConfig::default()
    }
}

/// Runs the NACK dialogue; with `kill_at`, the server dies at that
/// tick and warm-restarts from its own snapshot. `faulty` wraps the
/// client in the drop/duplicate plan — the showcase run; the
/// kill-identity pair runs clean, because a replayed delivery draws
/// fresh fault events (the counter-seeded plan advances per delivery),
/// so under faults killed and uninterrupted runs see different links.
fn run(kill_at: Option<u64>, faulty: bool) -> (ClientOutcome, bool, u64) {
    let mut server = Server::new(serve_cfg()).expect("valid serve config");

    // The showcase run uses the counter-seeded *chunked* loopback so
    // wire reassembly is exercised: frames arrive split at arbitrary
    // byte boundaries, bit-reproducibly. The kill-identity pair uses
    // the plain loopback: a pipe opened after the restart cannot share
    // the old pipe's chunk phase, and arrival batching moves attempt
    // boundaries (never results) — the identity under test is the
    // snapshot's, not the chunker's.
    let pipe = |seed: u64| -> (LoopbackTransport, LoopbackTransport) {
        if faulty {
            loopback_pair_chunked(1 << 16, seed)
        } else {
            loopback_pair(1 << 16)
        }
    };
    let (local, remote) = pipe(2026);
    server.add_connection(remote);

    // NACK-mode client pushing through a faulty link: 20% of symbol
    // deliveries dropped, 10% duplicated, all counter-seeded.
    let cfg = ClientConfig {
        mode: FeedbackMode::Nack,
        ..ClientConfig::default()
    };
    let mut client = ServeClient::new(local, &cfg, &payload()).expect("valid client shape");
    if faulty {
        let plan = FaultPlan::new(7)
            .with(LinkFault::Drop { p: 0.2 })
            .with(LinkFault::Duplicate { p: 0.1 });
        client = client.with_fault(&plan);
    }

    let mut image = Vec::new();
    let mut killed = false;
    let mut ticks = 0u64;
    while !client.is_done() {
        ticks += 1;
        server.tick_sharded();
        // Kill at the first tick past the mark where the client holds
        // its token (the chunked loopback can stretch the HELLO-ACK).
        if !killed && kill_at.is_some_and(|at| ticks >= at) {
            if let Some(token) = client.resume_token() {
                killed = true;
                // Process death: image the pool, drop the server (the
                // transport dies with it), rebuild, re-attach by token.
                server.snapshot_into(&mut image).expect("secret is pinned");
                server = Server::restore(serve_cfg(), &image).expect("own snapshot restores");
                let (local, remote) = pipe(2027);
                server.add_resume_connection(remote, token);
                drop(client.reconnect(local));
            }
        }
        client.tick();
        assert!(ticks < 10_000, "dialogue should settle quickly");
    }

    let outcome = client.outcome().expect("done clients have a verdict");
    let ok = client.decoded_payload() == Some(&payload());
    let stats = server.stats();
    assert_eq!(stats.admitted, 1);
    if kill_at.is_some() {
        assert_eq!(stats.snapshots, 1, "one kill, one snapshot");
        assert_eq!(stats.restored, 1, "the in-flight session restored");
        assert_eq!(stats.restore_dropped, 0, "nothing may drop in restore");
        assert_eq!(stats.resumed, 1, "the client re-attached by token");
    }
    (outcome, ok, ticks)
}

fn main() {
    println!("payload  : {:?}", payload());
    println!("session  : k=4 c=8 B=16, CRC-16 framing, NACK feedback");
    println!("link     : 20% drop + 10% duplicate, chunked loopback");

    let (faulted, faulted_ok, faulted_ticks) = run(None, true);
    let ClientOutcome::Decoded {
        symbols_used,
        attempts,
    } = faulted
    else {
        panic!("flow should decode, got {faulted:?}");
    };
    println!(
        "decoded  : {symbols_used} symbols consumed over {attempts} attempts, \
         {faulted_ticks} ticks (faulty link, uninterrupted)"
    );
    println!("payload ok: {faulted_ok} (server CRC-verified and stripped the framing)");

    // Snapshot roundtrip on a clean link: the same dialogue with the
    // server killed mid-stream and rebuilt from its own snapshot must
    // be invisible to the decode verdict — identical symbols_used,
    // identical attempts.
    let (base, base_ok, _) = run(None, false);
    let (killed, killed_ok, killed_ticks) = run(Some(3), false);
    assert_eq!(killed, base, "warm restart must be bit-identical");
    assert!(base_ok && killed_ok, "both clean flows must deliver");
    println!(
        "restarted: killed mid-stream, snapshot → restore → RESUME; \
         same verdict as never crashing, settled in {killed_ticks} ticks"
    );
    println!("roundtrip: snapshot restore is bit-identical to an uninterrupted run");
}
