//! The codec service end to end: a sharded [`Server`] and a
//! [`ServeClient`] talking the versioned wire protocol over the
//! deterministic in-process loopback, with link faults in the way.
//!
//! The client CRC-frames a payload, negotiates the session with HELLO
//! (shape, symbol budget, NACK feedback), then streams DATA frames
//! whose symbols pass through a composable [`FaultPlan`] — drops and
//! duplicates here — before hitting the wire. The server detects the
//! sequence gaps the drops create, NACKs, and the client seeks its
//! transmitter back and replays; the dialogue ends with the server
//! shipping the decoded (CRC-verified, CRC-stripped) payload back.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use spinal_codes::link::{FaultPlan, FeedbackMode, LinkFault};
use spinal_codes::serve::{
    loopback_pair_chunked, ClientConfig, ClientOutcome, ServeClient, ServeConfig, Server,
};
use spinal_codes::BitVec;

fn main() {
    // A 4-shard event loop; connections spread across shards by stable
    // hash, each shard owning its own decoder pool. (With one
    // connection this is pure ceremony — but the serial and sharded
    // paths are bit-identical, so nothing else changes at 10k.)
    let mut server = Server::new(ServeConfig {
        shards: 4,
        ..ServeConfig::default()
    })
    .expect("valid serve config");

    // The deterministic loopback, with counter-seeded chunking so wire
    // reassembly is exercised: frames arrive split at arbitrary byte
    // boundaries, bit-reproducibly.
    let (local, remote) = loopback_pair_chunked(1 << 16, 2026);
    server.add_connection(remote);

    // NACK-mode client pushing through a faulty link: 20% of symbol
    // deliveries dropped, 10% duplicated, all counter-seeded.
    let payload = BitVec::from_bytes(&[0xca, 0xfe, 0x42, 0x07]);
    let cfg = ClientConfig {
        mode: FeedbackMode::Nack,
        ..ClientConfig::default()
    };
    let plan = FaultPlan::new(7)
        .with(LinkFault::Drop { p: 0.2 })
        .with(LinkFault::Duplicate { p: 0.1 });
    let mut client = ServeClient::new(local, &cfg, &payload)
        .expect("valid client shape")
        .with_fault(&plan);

    println!("payload  : {payload:?}");
    println!("session  : k=4 c=8 B=16, CRC-16 framing, NACK feedback");
    println!("link     : 20% drop + 10% duplicate, chunked loopback");

    let mut ticks = 0u64;
    while !client.is_done() {
        server.tick_sharded();
        client.tick();
        ticks += 1;
        assert!(ticks < 10_000, "dialogue should settle quickly");
    }

    match client.outcome().expect("done clients have a verdict") {
        ClientOutcome::Decoded {
            symbols_used,
            attempts,
        } => {
            println!(
                "decoded  : {symbols_used} symbols consumed over {attempts} attempts, {ticks} ticks"
            );
            println!(
                "payload ok: {} (server CRC-verified and stripped the framing)",
                client.decoded_payload() == Some(&payload)
            );
        }
        other => panic!("flow should decode, got {other:?}"),
    }

    let stats = server.stats();
    println!(
        "server   : {} admitted, {} decoded, {} frames in, {} symbols in",
        stats.admitted, stats.decoded, stats.frames_in, stats.symbols_in
    );
    println!(
        "latency  : {:?} ticks from first symbol to decode",
        server.latencies()
    );
}
