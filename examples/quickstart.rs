//! Quickstart: one message, one AWGN channel, rateless operation —
//! through the streaming session API.
//!
//! Encodes a 24-bit message with the paper's Figure 2 code, opens a
//! sender session ([`spinal_codes::TxSession`]) and a receiver session
//! ([`spinal_codes::RxSession`]), streams symbols through an AWGN
//! channel one at a time, and polls the receiver until its genie says
//! stop (use `examples/session_link.rs` for the genie-free CRC
//! receiver). Shows the defining property of a rateless code: the
//! *same* sender code lands at whatever rate the channel supports —
//! and, through the session, each retry reuses the previous attempt's
//! tree work instead of re-searching from scratch.
//!
//! ```text
//! cargo run --release --example quickstart [-- <snr_db>]
//! ```

use spinal_codes::channel::{AwgnChannel, Channel};
use spinal_codes::info::awgn_capacity_db;
use spinal_codes::{AnyTerminator, BitVec, Poll, RxConfig, SpinalCode};

fn main() {
    let snr_db: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("SNR must be a number"))
        .unwrap_or(15.0);

    let code = SpinalCode::fig2(24, 2024).expect("24 bits, k=8 is valid");
    let message = BitVec::from_bytes(&[0xca, 0xfe, 0x42]);
    println!("message   : {message:?}");
    println!("code      : m=24, k=8, c=10, stride-8 puncturing, B=16 beam");
    println!(
        "channel   : AWGN at {snr_db} dB (capacity {:.2} bits/symbol)",
        awgn_capacity_db(snr_db)
    );

    let mut tx = code.tx_session(&message).expect("length matches");
    let mut rx = code
        .awgn_rx_session(
            AnyTerminator::genie(message.clone()),
            RxConfig {
                max_symbols: 5000,
                ..RxConfig::default()
            },
        )
        .expect("valid session configuration");
    let mut channel = AwgnChannel::from_snr_db(snr_db, 7);

    loop {
        let (_slot, x) = tx.next_symbol();
        match rx.ingest(&[channel.transmit(x)]).expect("session open") {
            Poll::NeedMore { .. } => continue,
            Poll::Decoded { symbols_used, .. } => {
                println!(
                    "decoded after {symbols_used} symbols -> rate {:.2} bits/symbol",
                    24.0 / symbols_used as f64
                );
                println!(
                    "decoder cost: {} tree edges",
                    rx.last_result().stats.nodes_expanded
                );
                return;
            }
            Poll::Exhausted { symbols_used } => {
                println!("gave up after {symbols_used} symbols (SNR too low for this budget)");
                return;
            }
        }
    }
}
