//! Quickstart: one message, one AWGN channel, rateless operation.
//!
//! Encodes a 24-bit message with the paper's Figure 2 code, streams
//! symbols through an AWGN channel at a chosen SNR, and decodes after
//! every received symbol until the CRC-checked genie says stop. Shows
//! the defining property of a rateless code: the *same* sender code
//! lands at whatever rate the channel supports.
//!
//! ```text
//! cargo run --release --example quickstart [-- <snr_db>]
//! ```

use spinal_codes::channel::{AwgnChannel, Channel};
use spinal_codes::info::awgn_capacity_db;
use spinal_codes::{BeamConfig, BitVec, SpinalCode};

fn main() {
    let snr_db: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("SNR must be a number"))
        .unwrap_or(15.0);

    let code = SpinalCode::fig2(24, 2024).expect("24 bits, k=8 is valid");
    let message = BitVec::from_bytes(&[0xca, 0xfe, 0x42]);
    println!("message   : {message:?}");
    println!("code      : m=24, k=8, c=10, stride-8 puncturing, B=16 beam");
    println!(
        "channel   : AWGN at {snr_db} dB (capacity {:.2} bits/symbol)",
        awgn_capacity_db(snr_db)
    );

    let encoder = code.encoder(&message).expect("length matches");
    let decoder = code.awgn_beam_decoder(BeamConfig::paper_default());
    let mut channel = AwgnChannel::from_snr_db(snr_db, 7);
    let mut obs = code.observations();

    let mut sent = 0u32;
    for (slot, x) in encoder.stream(code.schedule()).take(5000) {
        obs.push(slot, channel.transmit(x));
        sent += 1;
        let result = decoder.decode(&obs);
        if result.message == message {
            println!(
                "decoded after {sent} symbols -> rate {:.2} bits/symbol",
                24.0 / f64::from(sent)
            );
            println!("decoder cost: {} tree edges", result.stats.nodes_expanded);
            return;
        }
    }
    println!("gave up after {sent} symbols (SNR too low for this budget)");
}
