//! # spinal-codes — Rateless Spinal Codes (HotNets 2011), reproduced in Rust
//!
//! This is the umbrella crate of a from-scratch reproduction of
//! *Rateless Spinal Codes* (Perry, Balakrishnan, Shah — HotNets 2011):
//! a rateless channel code that hashes the message's `k`-bit segments
//! into a spine of pseudo-random states and maps their expansion bits
//! directly onto a dense I-Q constellation. The receiver replays the
//! encoder over a pruned hypothesis tree (the practical "B-beam"
//! decoder) and asks for more symbols until it succeeds — no channel
//! estimation, no rate adaptation.
//!
//! The workspace layers, re-exported here as modules:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | crate root | `spinal-core` | encoder, beam + ML decoders, hashes, mappers, puncturing, CRC framing |
//! | [`channel`] | `spinal-channel` | AWGN, BSC, BEC, Rayleigh block fading, ADC quantizer, seeded PRNG |
//! | [`modem`] | `spinal-modem` | BPSK/QPSK/QAM-16/QAM-64 + soft LLR demappers |
//! | [`ldpc`] | `spinal-ldpc` | 802.11n-style QC-LDPC baseline with 40-iter BP |
//! | [`info`] | `spinal-info` | Shannon capacities, PPV finite-blocklength bound, theorem thresholds |
//! | [`sim`] | `spinal-sim` | the §5 experiment harness (genie/CRC rateless runs, LDPC goodput, sweeps) |
//! | [`link`] | `spinal-link` | feedback link-layer protocol simulator (§6 future work) |
//! | [`serve`] | `spinal-serve` | network-facing codec service: wire format, sharded event loops, backpressure |
//!
//! ## Quickstart
//!
//! The streaming session API is the front door: a [`TxSession`] pulls
//! symbols from the encoder (with seek/replay for NACKs), an
//! [`RxSession`] ingests them and polls `NeedMore` / `Decoded` /
//! `Exhausted`, with CRC framing deciding termination — no genie. Every
//! retry is incremental: tree levels unaffected by the newest symbols
//! are resumed from checkpoints, bit-identical to a batch decode.
//!
//! ```
//! use spinal_codes::{frame_encode, AnyTerminator, BitVec, Checksum, Poll, RxConfig, SpinalCode};
//! use spinal_codes::channel::{AwgnChannel, Channel};
//!
//! // The paper's Figure 2 code carrying a CRC-16-framed payload.
//! let payload = BitVec::from_bytes(&[0xca]);
//! let framed = frame_encode(&payload, Checksum::Crc16);
//! let code = SpinalCode::fig2(framed.len() as u32, 7).unwrap();
//!
//! let mut tx = code.tx_session(&framed).unwrap();
//! let mut rx = code
//!     .awgn_rx_session(AnyTerminator::crc(Checksum::Crc16), RxConfig::default())
//!     .unwrap();
//!
//! // Stream symbols through a 15 dB AWGN channel until the CRC verifies.
//! let mut channel = AwgnChannel::from_snr_db(15.0, 99);
//! loop {
//!     let (_slot, x) = tx.next_symbol();
//!     match rx.ingest(&[channel.transmit(x)]).unwrap() {
//!         Poll::NeedMore { .. } => continue,
//!         Poll::Decoded { symbols_used, .. } => {
//!             // The achieved rate adapts to the channel.
//!             assert!(symbols_used >= 4, "capacity at 15 dB is ~5.03 bits/symbol");
//!             break;
//!         }
//!         Poll::Exhausted { .. } => unreachable!("15 dB decodes"),
//!     }
//! }
//! assert_eq!(rx.payload(), Some(&payload));
//! ```
//!
//! See `examples/` for fading, BSC, decoder-scaling and mini-Figure-2
//! demonstrations, and `crates/bench/src/bin/` for the binaries that
//! regenerate every figure and claim in the paper (indexed in DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spinal_core::*;

/// Channel models (AWGN, BSC, BEC, fading, ADC) and the seeded PRNG.
pub mod channel {
    pub use spinal_channel::*;
}

/// Fixed constellations and soft demappers for the LDPC baseline.
pub mod modem {
    pub use spinal_modem::*;
}

/// The 802.11n-style QC-LDPC baseline.
pub mod ldpc {
    pub use spinal_ldpc::*;
}

/// Information-theoretic bounds (Shannon, PPV, theorem thresholds).
pub mod info {
    pub use spinal_info::*;
}

/// The experiment harness reproducing §5.
pub mod sim {
    pub use spinal_sim::*;
}

/// The feedback link-layer protocol simulator (§6 future work).
pub mod link {
    pub use spinal_link::*;
}

/// The network-facing codec service: wire format, transports, sharded
/// serving event loop with backpressure, and the client driver.
pub mod serve {
    pub use spinal_serve::*;
}
