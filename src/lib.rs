//! # spinal-codes — Rateless Spinal Codes (HotNets 2011), reproduced in Rust
//!
//! This is the umbrella crate of a from-scratch reproduction of
//! *Rateless Spinal Codes* (Perry, Balakrishnan, Shah — HotNets 2011):
//! a rateless channel code that hashes the message's `k`-bit segments
//! into a spine of pseudo-random states and maps their expansion bits
//! directly onto a dense I-Q constellation. The receiver replays the
//! encoder over a pruned hypothesis tree (the practical "B-beam"
//! decoder) and asks for more symbols until it succeeds — no channel
//! estimation, no rate adaptation.
//!
//! The workspace layers, re-exported here as modules:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | crate root | `spinal-core` | encoder, beam + ML decoders, hashes, mappers, puncturing, CRC framing |
//! | [`channel`] | `spinal-channel` | AWGN, BSC, BEC, Rayleigh block fading, ADC quantizer, seeded PRNG |
//! | [`modem`] | `spinal-modem` | BPSK/QPSK/QAM-16/QAM-64 + soft LLR demappers |
//! | [`ldpc`] | `spinal-ldpc` | 802.11n-style QC-LDPC baseline with 40-iter BP |
//! | [`info`] | `spinal-info` | Shannon capacities, PPV finite-blocklength bound, theorem thresholds |
//! | [`sim`] | `spinal-sim` | the §5 experiment harness (genie/CRC rateless runs, LDPC goodput, sweeps) |
//! | [`link`] | `spinal-link` | feedback link-layer protocol simulator (§6 future work) |
//!
//! ## Quickstart
//!
//! ```
//! use spinal_codes::{BeamConfig, BitVec, SpinalCode};
//! use spinal_codes::channel::{AwgnChannel, Channel};
//!
//! // The paper's Figure 2 code: 24-bit messages, k = 8, c = 10.
//! let code = SpinalCode::fig2(24, 7).unwrap();
//! let message = BitVec::from_bytes(&[0xca, 0xfe, 0x42]);
//! let encoder = code.encoder(&message).unwrap();
//! let decoder = code.awgn_beam_decoder(BeamConfig::paper_default());
//!
//! // Stream symbols through a 15 dB AWGN channel until decoding succeeds.
//! let mut channel = AwgnChannel::from_snr_db(15.0, 99);
//! let mut obs = code.observations();
//! let mut stream = encoder.stream(code.schedule());
//! let mut sent = 0;
//! let decoded = loop {
//!     let (slot, x) = stream.next().unwrap();
//!     obs.push(slot, channel.transmit(x));
//!     sent += 1;
//!     let result = decoder.decode(&obs);
//!     if result.message == message {
//!         break result.message; // a real receiver checks a CRC here
//!     }
//! };
//! assert_eq!(decoded, message);
//! // 24 bits over `sent` symbols: the achieved rate adapts to the channel.
//! assert!(sent >= 4, "capacity at 15 dB is ~5.03 bits/symbol");
//! ```
//!
//! See `examples/` for fading, BSC, decoder-scaling and mini-Figure-2
//! demonstrations, and `crates/bench/src/bin/` for the binaries that
//! regenerate every figure and claim in the paper (indexed in DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spinal_core::*;

/// Channel models (AWGN, BSC, BEC, fading, ADC) and the seeded PRNG.
pub mod channel {
    pub use spinal_channel::*;
}

/// Fixed constellations and soft demappers for the LDPC baseline.
pub mod modem {
    pub use spinal_modem::*;
}

/// The 802.11n-style QC-LDPC baseline.
pub mod ldpc {
    pub use spinal_ldpc::*;
}

/// Information-theoretic bounds (Shannon, PPV, theorem thresholds).
pub mod info {
    pub use spinal_info::*;
}

/// The experiment harness reproducing §5.
pub mod sim {
    pub use spinal_sim::*;
}

/// The feedback link-layer protocol simulator (§6 future work).
pub mod link {
    pub use spinal_link::*;
}
